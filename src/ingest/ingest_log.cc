#include "ingest/ingest_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "fault/failpoint.h"

namespace freeway {

namespace fs = std::filesystem;

namespace {

constexpr uint32_t kSegmentMagic = 0x47495746;  // 'FWIG'
constexpr uint32_t kSegmentFormatVersion = 1;
constexpr size_t kSegmentHeaderBytes = 16;
constexpr size_t kRecordHeaderBytes = 8;
/// A record payload above this is corruption, not data — the same bound as
/// the wire protocol's kMaxFramePayload, since every batch record is a
/// logged SUBMIT.
constexpr uint32_t kMaxRecordPayload = 64u << 20;

/// Record payload section tags.
constexpr uint32_t kTagBatchRecord = 0x54414249;   // 'IBAT'
constexpr uint32_t kTagRevertRecord = 0x54565249;  // 'IRVT'
constexpr uint32_t kTagWatermarks = 0x4B4D5749;    // 'IWMK'

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

/// RAII fd so every error path below can early-return without leaking.
class ScopedFd {
 public:
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() {
    if (fd_ >= 0) ::close(fd_);
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("ingest: write failed for", path));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    return Status::IoError(ErrnoMessage("ingest: fsync failed for", path));
  }
  return Status::OK();
}

Status FsyncPath(const std::string& path) {
  ScopedFd fd(::open(path.c_str(), O_RDONLY));
  if (fd.get() < 0) {
    return Status::IoError(ErrnoMessage("ingest: open for fsync", path));
  }
  return FsyncFd(fd.get(), path);
}

/// Parses "ingest-<base_lsn>.seg" into the base LSN.
bool ParseSegmentFilename(const std::string& filename, uint64_t* base_lsn) {
  const std::string prefix = "ingest-";
  const std::string suffix = ".seg";
  if (filename.size() <= prefix.size() + suffix.size()) return false;
  if (filename.compare(0, prefix.size(), prefix) != 0) return false;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix.size(); i < filename.size() - suffix.size(); ++i) {
    const char c = filename[i];
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - (c - '0')) / 10) return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *base_lsn = value;
  return true;
}

/// One parsed record payload. Revert records reuse `record.client_id` /
/// `record.sequence` and name the batch record they cancel by LSN;
/// watermark records carry the raw snapshot bytes for
/// DedupIndex::LoadState.
struct LogRecord {
  uint32_t tag = 0;
  uint64_t lsn = 0;
  uint64_t cancelled_lsn = 0;
  IngestRecord record;
  std::vector<char> watermarks;
};

std::vector<char> EncodeBatchRecord(const IngestRecord& record, uint64_t lsn) {
  SnapshotWriter writer;
  writer.WriteSection(kTagBatchRecord);
  writer.WriteU64(lsn);
  writer.WriteU64(record.client_id);
  writer.WriteU64(record.sequence);
  writer.WriteU64(record.stream_id);
  writer.WriteU32(record.tenant_id);
  writer.WriteU32(record.priority);
  writer.WriteBatch(record.batch);
  return writer.Take();
}

std::vector<char> EncodeRevertRecord(uint64_t lsn, uint64_t cancelled_lsn,
                                     uint64_t client_id, uint64_t sequence) {
  SnapshotWriter writer;
  writer.WriteSection(kTagRevertRecord);
  writer.WriteU64(lsn);
  writer.WriteU64(cancelled_lsn);
  writer.WriteU64(client_id);
  writer.WriteU64(sequence);
  return writer.Take();
}

std::vector<char> EncodeWatermarkRecord(uint64_t covered_lsn,
                                        const DedupIndex& dedup) {
  SnapshotWriter writer;
  writer.WriteSection(kTagWatermarks);
  writer.WriteU64(covered_lsn);
  dedup.SaveState(&writer);
  return writer.Take();
}

/// Parses one CRC-verified record payload. Failure here is *not* a torn
/// tail — the CRC already passed — so callers treat it as hard corruption.
Status ParseRecordPayload(const std::vector<char>& payload, LogRecord* out) {
  SnapshotReader reader(payload);
  uint32_t tag = 0;
  RETURN_IF_ERROR(reader.ReadU32(&tag));
  uint32_t version = 0;
  RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != 1) {
    return Status::InvalidArgument("ingest: unsupported record version " +
                                   std::to_string(version));
  }
  out->tag = tag;
  RETURN_IF_ERROR(reader.ReadU64(&out->lsn));
  switch (tag) {
    case kTagBatchRecord: {
      RETURN_IF_ERROR(reader.ReadU64(&out->record.client_id));
      RETURN_IF_ERROR(reader.ReadU64(&out->record.sequence));
      RETURN_IF_ERROR(reader.ReadU64(&out->record.stream_id));
      RETURN_IF_ERROR(reader.ReadU32(&out->record.tenant_id));
      uint32_t priority = 0;
      RETURN_IF_ERROR(reader.ReadU32(&priority));
      if (priority > 255) {
        return Status::InvalidArgument("ingest: priority out of range");
      }
      out->record.priority = static_cast<uint8_t>(priority);
      RETURN_IF_ERROR(reader.ReadBatch(&out->record.batch));
      RETURN_IF_ERROR(reader.ExpectEnd());
      out->record.lsn = out->lsn;
      return Status::OK();
    }
    case kTagRevertRecord: {
      RETURN_IF_ERROR(reader.ReadU64(&out->cancelled_lsn));
      RETURN_IF_ERROR(reader.ReadU64(&out->record.client_id));
      RETURN_IF_ERROR(reader.ReadU64(&out->record.sequence));
      RETURN_IF_ERROR(reader.ExpectEnd());
      return Status::OK();
    }
    case kTagWatermarks: {
      // The rest of the payload is the DedupIndex snapshot, handed back
      // verbatim for LoadState.
      out->watermarks.assign(payload.end() - reader.remaining(),
                             payload.end());
      return Status::OK();
    }
    default:
      return Status::InvalidArgument("ingest: unknown record tag " +
                                     std::to_string(tag));
  }
}

/// Everything one pass over a segment file learns.
struct SegmentScan {
  uint64_t base_lsn = 0;
  std::vector<LogRecord> records;
  /// Byte offset just past the last intact record. Below file_size only
  /// when the scan stopped early (see tail_error).
  size_t valid_end = 0;
  size_t file_size = 0;
  /// Why the scan stopped before the end of the file: a truncated or
  /// CRC-failing record. OK when the whole file parsed. Only the *last*
  /// segment of a log may carry this (a torn tail); anywhere else it is
  /// corruption.
  Status tail_error = Status::OK();
};

Result<SegmentScan> ScanSegmentFile(const std::string& path) {
  ScopedFd fd(::open(path.c_str(), O_RDONLY));
  if (fd.get() < 0) {
    return Status::IoError(ErrnoMessage("ingest: cannot open", path));
  }
  std::error_code ec;
  const uintmax_t file_size = fs::file_size(path, ec);
  if (ec) {
    return Status::IoError("ingest: cannot stat " + path + ": " +
                           ec.message());
  }
  std::vector<char> bytes(static_cast<size_t>(file_size));
  size_t got = 0;
  while (got < bytes.size()) {
    const ssize_t n = ::read(fd.get(), bytes.data() + got, bytes.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("ingest: read failed for", path));
    }
    if (n == 0) break;  // Shrunk under us; the scan below sees the prefix.
    got += static_cast<size_t>(n);
  }
  bytes.resize(got);

  SegmentScan scan;
  scan.file_size = bytes.size();
  if (bytes.size() < kSegmentHeaderBytes) {
    return Status::InvalidArgument("ingest: segment " + path +
                                   " is shorter than its header");
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  std::memcpy(&magic, bytes.data(), 4);
  std::memcpy(&version, bytes.data() + 4, 4);
  std::memcpy(&scan.base_lsn, bytes.data() + 8, 8);
  if (magic != kSegmentMagic) {
    return Status::InvalidArgument("ingest: bad magic in " + path);
  }
  if (version != kSegmentFormatVersion) {
    return Status::InvalidArgument("ingest: unsupported segment version " +
                                   std::to_string(version) + " in " + path);
  }

  size_t pos = kSegmentHeaderBytes;
  scan.valid_end = pos;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kRecordHeaderBytes) {
      scan.tail_error =
          Status::InvalidArgument("ingest: truncated record header in " + path);
      break;
    }
    uint32_t payload_size = 0;
    uint32_t payload_crc = 0;
    std::memcpy(&payload_size, bytes.data() + pos, 4);
    std::memcpy(&payload_crc, bytes.data() + pos + 4, 4);
    if (payload_size > kMaxRecordPayload) {
      scan.tail_error = Status::InvalidArgument(
          "ingest: record of " + std::to_string(payload_size) +
          " bytes exceeds the format maximum in " + path);
      break;
    }
    if (bytes.size() - pos - kRecordHeaderBytes < payload_size) {
      scan.tail_error =
          Status::InvalidArgument("ingest: truncated record payload in " + path);
      break;
    }
    const char* payload_bytes = bytes.data() + pos + kRecordHeaderBytes;
    if (Crc32(payload_bytes, payload_size) != payload_crc) {
      scan.tail_error =
          Status::InvalidArgument("ingest: record CRC mismatch in " + path);
      break;
    }
    std::vector<char> payload(payload_bytes, payload_bytes + payload_size);
    LogRecord record;
    // CRC-valid bytes that fail to parse are hard corruption everywhere
    // (a tear cannot survive the CRC), so this is not a tail_error.
    RETURN_IF_ERROR(ParseRecordPayload(payload, &record));
    scan.records.push_back(std::move(record));
    pos += kRecordHeaderBytes + payload_size;
    scan.valid_end = pos;
  }
  return scan;
}

}  // namespace

IngestLog::IngestLog(IngestLogOptions options) : options_(std::move(options)) {
  if (options_.segment_max_bytes < kSegmentHeaderBytes + kRecordHeaderBytes) {
    options_.segment_max_bytes = kSegmentHeaderBytes + kRecordHeaderBytes;
  }
  if (options_.metrics != nullptr) {
    MetricsRegistry* registry = options_.metrics;
    metric_appends_ = registry->GetCounter("freeway_ingest_appends_total");
    metric_reverts_ = registry->GetCounter("freeway_ingest_reverts_total");
    metric_rotations_ = registry->GetCounter("freeway_ingest_rotations_total");
    metric_pruned_ =
        registry->GetCounter("freeway_ingest_segments_pruned_total");
    metric_append_bytes_ = registry->GetHistogram(
        "freeway_ingest_append_bytes", Histogram::DefaultSizeBounds());
    metric_append_seconds_ =
        registry->GetHistogram("freeway_ingest_append_seconds");
  }
}

IngestLog::~IngestLog() {
  if (active_fd_ >= 0) ::close(active_fd_);
}

Status IngestLog::Open(DedupIndex* dedup) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (opened_) return Status::FailedPrecondition("ingest: log already open");
  RETURN_IF_ERROR(OpenLocked(dedup));
  opened_ = true;
  return Status::OK();
}

Status IngestLog::OpenLocked(DedupIndex* dedup) {
  dedup_ = dedup;
  if (options_.directory.empty()) {
    return Status::InvalidArgument("ingest: log directory is empty");
  }
  std::error_code ec;
  if (!options_.read_only) {
    fs::create_directories(options_.directory, ec);
    if (ec) {
      return Status::IoError("ingest: cannot create directory " +
                             options_.directory + ": " + ec.message());
    }
  }

  std::vector<Segment> segments;
  fs::directory_iterator it(options_.directory, ec);
  if (ec) {
    if (options_.read_only && !fs::exists(options_.directory)) {
      // Nothing captured yet: an empty log, not an error.
      return Status::OK();
    }
    return Status::IoError("ingest: cannot list directory " +
                           options_.directory + ": " + ec.message());
  }
  for (const auto& entry : it) {
    const std::string filename = entry.path().filename().string();
    uint64_t base_lsn = 0;
    if (ParseSegmentFilename(filename, &base_lsn)) {
      segments.push_back({base_lsn, entry.path().string()});
      continue;
    }
    // A leftover .tmp is a rotation the process died inside; the renamed
    // segment never existed, so the bytes are garbage.
    if (!options_.read_only && filename.size() > 4 &&
        filename.compare(filename.size() - 4, 4, ".tmp") == 0) {
      fs::remove(entry.path(), ec);
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const Segment& a, const Segment& b) {
              return a.base_lsn < b.base_lsn;
            });

  next_lsn_ = 1;
  for (size_t i = 0; i < segments.size(); ++i) {
    ASSIGN_OR_RETURN(SegmentScan scan, ScanSegmentFile(segments[i].path));
    if (scan.base_lsn != segments[i].base_lsn) {
      return Status::InvalidArgument(
          "ingest: segment " + segments[i].path + " header claims base LSN " +
          std::to_string(scan.base_lsn));
    }
    if (!scan.tail_error.ok()) {
      if (i + 1 != segments.size()) {
        // Sealed segments are never written again, so a tear cannot
        // explain a bad record here.
        return Status(scan.tail_error.code(),
                      "ingest: corrupt sealed segment: " +
                          scan.tail_error.message());
      }
      stats_.torn_bytes_truncated += scan.file_size - scan.valid_end;
      FREEWAY_LOG(kWarning) << "ingest: truncating torn tail of "
                            << segments[i].path << " ("
                            << (scan.file_size - scan.valid_end)
                            << " bytes): " << scan.tail_error.message();
      if (!options_.read_only &&
          ::truncate(segments[i].path.c_str(),
                     static_cast<off_t>(scan.valid_end)) != 0) {
        return Status::IoError(
            ErrnoMessage("ingest: cannot truncate", segments[i].path));
      }
    }
    for (const LogRecord& record : scan.records) {
      ++stats_.recovered_records;
      switch (record.tag) {
        case kTagBatchRecord:
          if (dedup_ != nullptr) {
            dedup_->Advance(record.record.client_id, record.record.sequence);
          }
          next_lsn_ = std::max(next_lsn_, record.lsn + 1);
          break;
        case kTagRevertRecord:
          if (dedup_ != nullptr) {
            dedup_->Revert(record.record.client_id, record.record.sequence);
          }
          next_lsn_ = std::max(next_lsn_, record.lsn + 1);
          break;
        case kTagWatermarks:
          // Every segment head snapshots the full table, superseding
          // whatever the records before it rebuilt.
          if (dedup_ != nullptr) {
            SnapshotReader reader(record.watermarks);
            RETURN_IF_ERROR(dedup_->LoadState(&reader));
          }
          break;
      }
    }
    // A snapshot-only segment (fresh after an anchored truncation) carries
    // the next LSN in its header.
    next_lsn_ = std::max(next_lsn_, segments[i].base_lsn);
    if (i + 1 == segments.size() && !options_.read_only) {
      const size_t size = scan.tail_error.ok() ? scan.file_size
                                               : scan.valid_end;
      ScopedFd fd(::open(segments[i].path.c_str(), O_WRONLY | O_APPEND));
      if (fd.get() < 0) {
        return Status::IoError(
            ErrnoMessage("ingest: cannot reopen", segments[i].path));
      }
      active_fd_ = fd.Release();
      active_size_ = size;
    }
  }
  segments_ = std::move(segments);

  if (!options_.read_only && segments_.empty()) {
    RETURN_IF_ERROR(StartSegmentLocked(next_lsn_));
  }
  stats_.segments = segments_.size();
  return Status::OK();
}

Status IngestLog::StartSegmentLocked(uint64_t base_lsn) {
  if (active_fd_ >= 0) {
    ::close(active_fd_);
    active_fd_ = -1;
  }
  const fs::path final_path =
      fs::path(options_.directory) /
      ("ingest-" + std::to_string(base_lsn) + ".seg");
  const fs::path tmp_path = final_path.string() + ".tmp";

  std::vector<char> head(kSegmentHeaderBytes);
  std::memcpy(head.data(), &kSegmentMagic, 4);
  std::memcpy(head.data() + 4, &kSegmentFormatVersion, 4);
  std::memcpy(head.data() + 8, &base_lsn, 8);
  if (dedup_ != nullptr) {
    // Head snapshot: everything the table learned from records below
    // base_lsn, so recovery never needs the pruned segments.
    const std::vector<char> payload =
        EncodeWatermarkRecord(base_lsn == 0 ? 0 : base_lsn - 1, *dedup_);
    const uint32_t size = static_cast<uint32_t>(payload.size());
    const uint32_t crc = Crc32(payload.data(), payload.size());
    head.resize(kSegmentHeaderBytes + kRecordHeaderBytes + payload.size());
    std::memcpy(head.data() + kSegmentHeaderBytes, &size, 4);
    std::memcpy(head.data() + kSegmentHeaderBytes + 4, &crc, 4);
    std::memcpy(head.data() + kSegmentHeaderBytes + kRecordHeaderBytes,
                payload.data(), payload.size());
  }

  {
    ScopedFd fd(::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644));
    if (fd.get() < 0) {
      return Status::IoError(
          ErrnoMessage("ingest: cannot create", tmp_path.string()));
    }
    RETURN_IF_ERROR(
        WriteAll(fd.get(), head.data(), head.size(), tmp_path.string()));
    if (options_.fsync) {
      RETURN_IF_ERROR(FsyncFd(fd.get(), tmp_path.string()));
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return Status::IoError("ingest: rename to " + final_path.string() +
                           " failed: " + ec.message());
  }
  if (options_.fsync) {
    RETURN_IF_ERROR(FsyncPath(options_.directory));
  }
  ScopedFd fd(::open(final_path.c_str(), O_WRONLY | O_APPEND));
  if (fd.get() < 0) {
    return Status::IoError(
        ErrnoMessage("ingest: cannot reopen", final_path.string()));
  }
  active_fd_ = fd.Release();
  active_size_ = head.size();
  segments_.push_back({base_lsn, final_path.string()});
  stats_.segments = segments_.size();
  return Status::OK();
}

Status IngestLog::AppendPayloadLocked(const std::vector<char>& payload) {
  if (active_size_ >= options_.segment_max_bytes) {
    RETURN_IF_ERROR(RotateLocked());
  }
  std::vector<char> buffer(kRecordHeaderBytes + payload.size());
  const uint32_t size = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32(payload.data(), payload.size());
  std::memcpy(buffer.data(), &size, 4);
  std::memcpy(buffer.data() + 4, &crc, 4);
  std::memcpy(buffer.data() + kRecordHeaderBytes, payload.data(),
              payload.size());
  const std::string& path = segments_.back().path;
  Status written = WriteAll(active_fd_, buffer.data(), buffer.size(), path);
  if (written.ok() && options_.fsync) {
    written = FsyncFd(active_fd_, path);
  }
  if (!written.ok()) {
    // Roll the partial record back so the segment stays parseable; a
    // failed rollback leaves a torn tail that the next Open() truncates,
    // but this process must stop appending past it.
    if (::ftruncate(active_fd_, static_cast<off_t>(active_size_)) != 0) {
      opened_ = false;
      FREEWAY_LOG(kError) << "ingest: append and rollback both failed for "
                          << path << "; log closed: " << written;
    }
    return written;
  }
  active_size_ += buffer.size();
  if (metric_append_bytes_ != nullptr) {
    metric_append_bytes_->Observe(static_cast<double>(buffer.size()));
  }
  return Status::OK();
}

Result<uint64_t> IngestLog::Append(const IngestRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!opened_) return Status::FailedPrecondition("ingest: log is not open");
  if (options_.read_only) {
    return Status::FailedPrecondition("ingest: log is read-only");
  }
  FREEWAY_FAILPOINT("ingest.append");
  const auto start = std::chrono::steady_clock::now();
  const uint64_t lsn = next_lsn_;
  RETURN_IF_ERROR(AppendPayloadLocked(EncodeBatchRecord(record, lsn)));
  next_lsn_ = lsn + 1;
  ++stats_.appends;
  if (metric_appends_ != nullptr) metric_appends_->Inc();
  if (metric_append_seconds_ != nullptr) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    metric_append_seconds_->Observe(elapsed.count());
  }
  return lsn;
}

Result<uint64_t> IngestLog::AppendRevert(uint64_t cancelled_lsn,
                                         uint64_t client_id,
                                         uint64_t sequence) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!opened_) return Status::FailedPrecondition("ingest: log is not open");
  if (options_.read_only) {
    return Status::FailedPrecondition("ingest: log is read-only");
  }
  const uint64_t lsn = next_lsn_;
  RETURN_IF_ERROR(AppendPayloadLocked(
      EncodeRevertRecord(lsn, cancelled_lsn, client_id, sequence)));
  next_lsn_ = lsn + 1;
  ++stats_.reverts;
  if (metric_reverts_ != nullptr) metric_reverts_->Inc();
  return lsn;
}

Status IngestLog::RotateLocked() {
  RETURN_IF_ERROR(StartSegmentLocked(next_lsn_));
  ++stats_.rotations;
  if (metric_rotations_ != nullptr) metric_rotations_->Inc();
  return Status::OK();
}

Status IngestLog::Rotate() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!opened_) return Status::FailedPrecondition("ingest: log is not open");
  if (options_.read_only) {
    return Status::FailedPrecondition("ingest: log is read-only");
  }
  return RotateLocked();
}

Status IngestLog::TruncateBefore(uint64_t lsn, size_t keep_sealed_segments) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!opened_) return Status::FailedPrecondition("ingest: log is not open");
  if (options_.read_only) {
    return Status::FailedPrecondition("ingest: log is read-only");
  }
  // A sealed segment's records all sit below its successor's base LSN, so
  // it is prunable exactly when that base covers everything up to `lsn`.
  // The active segment always stays, plus `keep_sealed_segments` of the
  // newest sealed ones (the retention window).
  std::error_code ec;
  while (segments_.size() > 1 + keep_sealed_segments &&
         segments_[1].base_lsn <= lsn + 1) {
    fs::remove(segments_.front().path, ec);
    if (ec) {
      return Status::IoError("ingest: cannot remove " +
                             segments_.front().path + ": " + ec.message());
    }
    segments_.erase(segments_.begin());
    ++stats_.segments_pruned;
    if (metric_pruned_ != nullptr) metric_pruned_->Inc();
  }
  stats_.segments = segments_.size();
  return Status::OK();
}

Status IngestLog::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_fd_ < 0) return Status::OK();
  return FsyncFd(active_fd_, segments_.back().path);
}

Status IngestLog::Replay(
    const std::function<Status(const IngestRecord& record)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!opened_) return Status::FailedPrecondition("ingest: log is not open");
  // Pass 1: collect the LSNs cancelled by revert records (each revert
  // names its batch record exactly, so re-appended sequences and untracked
  // submits need no pairing heuristics).
  std::unordered_set<uint64_t> reverted;
  for (size_t i = 0; i < segments_.size(); ++i) {
    ASSIGN_OR_RETURN(SegmentScan scan, ScanSegmentFile(segments_[i].path));
    if (!scan.tail_error.ok() && i + 1 != segments_.size()) {
      return Status(scan.tail_error.code(),
                    "ingest: corrupt sealed segment: " +
                        scan.tail_error.message());
    }
    for (const LogRecord& record : scan.records) {
      if (record.tag == kTagRevertRecord) reverted.insert(record.cancelled_lsn);
    }
  }
  // Pass 2: yield the survivors in LSN order (segments are already sorted
  // and records within a segment are append-ordered).
  for (size_t i = 0; i < segments_.size(); ++i) {
    ASSIGN_OR_RETURN(SegmentScan scan, ScanSegmentFile(segments_[i].path));
    for (const LogRecord& record : scan.records) {
      if (record.tag != kTagBatchRecord) continue;
      if (reverted.count(record.lsn) != 0) continue;
      RETURN_IF_ERROR(fn(record.record));
    }
  }
  return Status::OK();
}

uint64_t IngestLog::last_lsn() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_lsn_ - 1;
}

IngestLogStats IngestLog::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace freeway
