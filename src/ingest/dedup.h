#ifndef FREEWAYML_INGEST_DEDUP_H_
#define FREEWAYML_INGEST_DEDUP_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/status.h"
#include "stream/batch_codec.h"

namespace freeway {

/// Per-client high-watermark table for exactly-once ingest (the idempotent-
/// producer idiom): each client stamps its SUBMITs with a `(client_id,
/// sequence)` pair where sequences start at 1 and increase by exactly one
/// per *batch* (a resend of the same batch reuses its sequence). The server
/// admits a submit only when `sequence == watermark(client) + 1`; anything
/// at or below the watermark is a resend whose first copy was already
/// admitted, and is re-ACKed without re-enqueueing.
///
/// `client_id == 0` or `sequence == 0` marks an untracked submit (a legacy
/// or hand-crafted frame); those bypass the table entirely and keep the
/// historical at-least-once behaviour.
///
/// Thread-safe: the table is sharded by client_id the same way the server's
/// route table is sharded by stream_id, so concurrent submits from
/// different clients (different reactor workers) rarely contend. Calls for
/// one client are naturally serial — a client is single-threaded by
/// contract and its connection is pinned to one worker.
class DedupIndex {
 public:
  /// True when `sequence` is at or below the client's watermark — i.e. a
  /// resend of an already-admitted batch.
  bool IsDuplicate(uint64_t client_id, uint64_t sequence) const;

  /// Raises the client's watermark to `sequence` (watermarks never move
  /// backwards through this call, so replaying an old log record after a
  /// newer snapshot is harmless).
  void Advance(uint64_t client_id, uint64_t sequence);

  /// Undoes the Advance of a submit that was logged but then rejected at
  /// admission (overload / error): the client will resend the same
  /// sequence and it must not be treated as a duplicate. Only retreats
  /// when the watermark still equals `sequence` — each client's sequences
  /// arrive serially, so anything else means the revert is stale.
  /// Returns whether the watermark moved.
  bool Revert(uint64_t client_id, uint64_t sequence);

  /// The client's current watermark; 0 when the client was never seen.
  uint64_t Watermark(uint64_t client_id) const;

  /// Tracked clients.
  size_t size() const;

  void Clear();

  /// Snapshot the whole table. Entries are written in sorted client order,
  /// so two tables with equal contents serialize to identical bytes.
  void SaveState(SnapshotWriter* writer) const;

  /// Replaces the table with a snapshot written by SaveState.
  Status LoadState(SnapshotReader* reader);

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<uint64_t, uint64_t> watermark;
  };

  Shard& ShardOf(uint64_t client_id) const {
    return shards_[client_id % kShards];
  }

  mutable std::array<Shard, kShards> shards_;
};

}  // namespace freeway

#endif  // FREEWAYML_INGEST_DEDUP_H_
