#include "core/cec.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace freeway {

CoherentExperienceClustering::CoherentExperienceClustering(
    const CecOptions& options)
    : options_(options) {}

Result<CecPrediction> CoherentExperienceClustering::Predict(
    const Matrix& query, const Batch& experience, size_t num_classes) const {
  if (query.rows() == 0) {
    return Status::InvalidArgument("CEC: empty query batch");
  }
  if (!experience.labeled() || experience.size() == 0) {
    return Status::FailedPrecondition("CEC: no labeled experience");
  }
  if (experience.dim() != query.cols()) {
    return Status::InvalidArgument("CEC: dimension mismatch");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("CEC: need at least 2 classes");
  }

  const size_t m = experience.size();
  const size_t n = query.rows();
  if (m + n < num_classes) {
    return Status::InvalidArgument("CEC: fewer points than clusters");
  }

  // Cluster experience and query jointly (experience rows first), in the
  // extractor's feature space when one is configured.
  Matrix joint(m + n, query.cols());
  for (size_t i = 0; i < m; ++i) joint.SetRow(i, experience.features.Row(i));
  for (size_t i = 0; i < n; ++i) joint.SetRow(m + i, query.Row(i));
  if (options_.extractor != nullptr) {
    ASSIGN_OR_RETURN(joint, options_.extractor->Extract(joint));
  }

  size_t k = num_classes * std::max<size_t>(options_.clusters_per_class, 1);
  if (k > (m + n) / 2) k = num_classes;  // Tiny batches: paper's c groups.
  ASSIGN_OR_RETURN(KMeansResult clusters,
                           KMeans(joint, k, options_.kmeans));

  // Label histogram of each cluster over the labeled (experience) members.
  std::vector<std::vector<double>> histogram(
      k, std::vector<double>(num_classes, 0.0));
  std::vector<size_t> labeled_members(k, 0);
  for (size_t i = 0; i < m; ++i) {
    const auto c = static_cast<size_t>(clusters.assignments[i]);
    histogram[c][static_cast<size_t>(experience.labels[i])] += 1.0;
    ++labeled_members[c];
  }

  // Clusters without labeled members inherit from the nearest labeled
  // cluster (by centroid distance).
  CecPrediction out;
  for (size_t c = 0; c < k; ++c) {
    if (labeled_members[c] > 0) continue;
    ++out.unlabeled_clusters;
    double best = std::numeric_limits<double>::infinity();
    size_t donor = k;
    for (size_t other = 0; other < k; ++other) {
      if (labeled_members[other] == 0) continue;
      const double d = vec::SquaredDistance(clusters.centroids.Row(c),
                                            clusters.centroids.Row(other));
      if (d < best) {
        best = d;
        donor = other;
      }
    }
    // At least one cluster holds a labeled member because m >= 1.
    FREEWAY_DCHECK(donor < k);
    histogram[c] = histogram[donor];
  }

  // Normalize histograms into per-cluster class distributions.
  std::vector<std::vector<double>> cluster_proba(
      k, std::vector<double>(num_classes, 0.0));
  std::vector<int> cluster_label(k, 0);
  for (size_t c = 0; c < k; ++c) {
    double total = 0.0;
    for (size_t y = 0; y < num_classes; ++y) {
      cluster_proba[c][y] = histogram[c][y] + options_.label_smoothing;
      total += cluster_proba[c][y];
    }
    size_t best_y = 0;
    for (size_t y = 0; y < num_classes; ++y) {
      cluster_proba[c][y] /= total;
      if (cluster_proba[c][y] > cluster_proba[c][best_y]) best_y = y;
    }
    cluster_label[c] = static_cast<int>(best_y);
  }

  out.labels.resize(n);
  out.proba = Matrix(n, num_classes);
  size_t covered = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto c = static_cast<size_t>(clusters.assignments[m + i]);
    out.labels[i] = cluster_label[c];
    out.proba.SetRow(i, cluster_proba[c]);
    if (labeled_members[c] > 0) ++covered;
  }
  out.query_coverage = static_cast<double>(covered) / static_cast<double>(n);

  size_t pure = 0;
  for (size_t i = 0; i < m; ++i) {
    const auto c = static_cast<size_t>(clusters.assignments[i]);
    if (cluster_label[c] == experience.labels[i]) ++pure;
  }
  out.experience_purity = static_cast<double>(pure) / static_cast<double>(m);
  return out;
}

}  // namespace freeway
