#ifndef FREEWAYML_CORE_EXP_BUFFER_H_
#define FREEWAYML_CORE_EXP_BUFFER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "obs/metrics.h"
#include "stream/batch.h"

namespace freeway {

class SnapshotReader;
class SnapshotWriter;

/// Bounded store of the most recent labeled samples — the "coherent
/// experience" that seeds CEC (Section V-A2: the ExpBuffer interface).
/// Entries expire either by displacement (capacity) or by age in batches
/// (expiration time). Storage is batch-granular so the per-batch hot path
/// costs one matrix copy, not per-row allocations; when the newest batches
/// alone exceed the capacity, the oldest retained batch is trimmed from the
/// front so at most `capacity` samples survive.
class ExpBuffer {
 public:
  /// `capacity`: maximum retained samples m. `max_age_batches`: samples
  /// older than this many batches are expired on the next Add (0 = never).
  explicit ExpBuffer(size_t capacity = 1024, int64_t max_age_batches = 0);

  /// Appends the labeled samples of `batch` (keeping the newest `capacity`
  /// overall) and expires outdated experience.
  Status Add(const Batch& batch);

  size_t size() const { return total_samples_; }
  bool empty() const { return total_samples_ == 0; }
  size_t capacity() const { return capacity_; }

  /// Materializes the current experience as a batch (features + labels),
  /// oldest samples first. Fails with FailedPrecondition when empty.
  Result<Batch> Snapshot() const;

  /// Counter bumped when a capacity trim fails (the error is also
  /// propagated out of Add). Null disables the accounting.
  void set_trim_errors_counter(Counter* counter) { trim_errors_ = counter; }

  /// Serializes the retained batches. LoadState re-enforces this buffer's
  /// own capacity, so a snapshot from a larger buffer restores into a
  /// smaller one by trimming the oldest experience.
  void SaveState(SnapshotWriter* writer) const;
  Status LoadState(SnapshotReader* reader);

 private:
  void ExpireOld(int64_t current_batch_index);
  /// Drops/trims oldest batches until total_samples_ <= capacity_. A
  /// failed trim leaves the buffer over capacity and must be surfaced: the
  /// returned Status reports it (and `trim_errors_` counts it).
  Status EnforceCapacity();

  size_t capacity_;
  int64_t max_age_batches_;
  std::deque<Batch> batches_;
  size_t total_samples_ = 0;
  Counter* trim_errors_ = nullptr;
};

}  // namespace freeway

#endif  // FREEWAYML_CORE_EXP_BUFFER_H_
