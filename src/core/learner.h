#ifndef FREEWAYML_CORE_LEARNER_H_
#define FREEWAYML_CORE_LEARNER_H_

#include <memory>
#include <vector>

#include "core/cec.h"
#include "core/exp_buffer.h"
#include "core/granularity.h"
#include "core/knowledge.h"
#include "core/shift_detector.h"
#include "ml/model.h"
#include "stream/batch.h"

namespace freeway {

class SnapshotReader;
class SnapshotWriter;

/// Inference strategy chosen by the selector for one batch. Exactly one
/// strategy executes per inference batch (Section V-A).
enum class Strategy {
  kMultiGranularity,  ///< Pattern A: distance-weighted model ensemble.
  kCec,               ///< Pattern B: coherent experience clustering.
  kKnowledgeReuse,    ///< Pattern C: historical model retrieval.
};

const char* StrategyName(Strategy strategy);

/// Top-level configuration — mirrors the paper's user template:
///   Learner(Model=model, ModelNum=2, MiniBatch=1024, KdgBuffer=20,
///           ExpBuffer=10, alpha=1.96)
struct LearnerOptions {
  /// Total models in the multi-granularity ensemble (1 short + N-1 long).
  size_t model_num = 2;
  /// Expected mini-batch size (informational; batches of any size work).
  size_t mini_batch = 1024;
  /// Maximum in-memory historical-knowledge entries.
  size_t kdg_buffer = 20;
  /// Experience age limit in batches for CEC.
  int64_t exp_buffer_age = 10;
  /// Maximum experience samples retained for CEC.
  size_t exp_buffer_capacity = 2048;
  /// Shift-severity threshold (Pattern B boundary).
  double alpha = 1.96;
  /// Disorder threshold beta gating which model's knowledge is preserved.
  double disorder_threshold = 0.5;
  /// CEC answers a sudden-shift batch only when its cluster/label alignment
  /// on the labeled experience (CecPrediction::experience_purity) reaches
  /// this floor; below it the clusters don't carry class structure and the
  /// ensemble answers instead (guards the failure mode of Section VI-F).
  double cec_min_purity = 0.78;
  /// CEC additionally requires this fraction of query rows to land in
  /// clusters containing labeled experience (CecPrediction::query_coverage);
  /// below it the new distribution has no labeled foothold yet and the
  /// ensemble answers.
  double cec_min_coverage = 0.5;
  /// Historical knowledge is reused only when the matched entry is closer
  /// than `knowledge_match_factor * d_t` (the paper's gate is factor 1.0;
  /// 0.5 demands a decisively better match — weak matches route to CEC,
  /// which needs no model at all).
  double knowledge_match_factor = 0.5;
  /// Knowledge entries whose distribution key lies within
  /// `knowledge_dedup_factor * mu_d` of a new entry are refreshed in place
  /// rather than duplicated, keeping recurring concepts mapped to fresh
  /// parameters. 0 disables refresh.
  double knowledge_dedup_factor = 1.0;
  /// On a confident knowledge match (distance below mu_d), also load the
  /// matched parameters into the short-granularity model so subsequent
  /// batches of the reoccurring concept start from the historical model
  /// instead of relearning — the anti-forgetting payoff of Section IV-D.
  bool warm_start_on_reuse = true;
  /// ASW size (batches) of the *first* long model; each additional long
  /// model doubles it.
  size_t base_window_batches = 8;

  ShiftDetectorOptions detector;
  MultiGranularityOptions granularity;
  CecOptions cec;
  KnowledgeStoreOptions knowledge;
};

/// Outcome of one inference batch.
struct InferenceReport {
  Strategy strategy = Strategy::kMultiGranularity;
  ShiftAssessment assessment;
  std::vector<int> predictions;
  Matrix proba;
  /// Set when strategy == kKnowledgeReuse: distance of the matched entry.
  double knowledge_distance = 0.0;
};

/// Cumulative counters, exposed for experiments and monitoring.
struct LearnerStats {
  size_t batches_inferred = 0;
  size_t batches_trained = 0;
  size_t ensemble_inferences = 0;
  size_t cec_inferences = 0;
  size_t knowledge_inferences = 0;
  size_t slight_patterns = 0;
  size_t sudden_patterns = 0;
  size_t reoccurring_patterns = 0;
  size_t knowledge_preserved = 0;
  size_t long_model_updates = 0;
};

/// FreewayML's user-facing framework object (Section V). Wires together the
/// shift detector, strategy selector, multi-granularity ensemble, CEC, and
/// the knowledge store:
///
///   Learner learner(*MakeMlp(dim, classes), options);
///   // per labeled batch, prequential:
///   auto report = learner.InferThenTrain(batch);
///
/// The training path always updates the multi-granularity models; the
/// inference path runs exactly one strategy chosen from the batch's shift
/// pattern.
class Learner {
 public:
  /// `prototype` supplies the model architecture; all ensemble members and
  /// the knowledge-reuse scratch model are clones of it.
  Learner(const Model& prototype, const LearnerOptions& options = {});

  /// Prequential step: assess the batch's shift, predict with the selected
  /// strategy, then incrementally train on it (test-then-train).
  Result<InferenceReport> InferThenTrain(const Batch& batch);

  /// Inference-only path for unlabeled traffic. Advances the shift
  /// detector.
  Result<InferenceReport> Infer(const Matrix& features);

  /// Training-only path for labeled traffic that needs no predictions.
  /// Advances the shift detector.
  Status Train(const Batch& batch);

  const LearnerStats& stats() const { return stats_; }
  const ShiftDetector& detector() const { return detector_; }
  MultiGranularityEnsemble* ensemble() { return ensemble_.get(); }
  const MultiGranularityEnsemble* ensemble() const { return ensemble_.get(); }
  const KnowledgeStore& knowledge() const { return knowledge_; }
  const ExpBuffer& experience() const { return exp_buffer_; }
  const LearnerOptions& options() const { return options_; }

  /// Applies a rate-aware decay boost to every long window (Section V-B).
  void SetWindowDecayBoost(double boost);

  /// Serializes the learner's full mutable state — shift detector,
  /// ensemble member parameters (through ml/serialize), adaptive windows,
  /// experience buffer, knowledge store, and counters — into `out`
  /// (cleared first). Restore into a learner constructed with the same
  /// prototype and options; a restored learner's Infer is bit-identical
  /// to the original's on the same traffic.
  Status Snapshot(std::vector<char>* out);
  Status Restore(const std::vector<char>& snapshot);

  /// Composable forms used by StreamPipeline::Snapshot: state only, no
  /// end-of-buffer check.
  Status SaveState(SnapshotWriter* writer);
  Status LoadState(SnapshotReader* reader);

  /// Attaches observability: per-stage latency histograms
  /// (`freeway_learner_stage_seconds{stage="detect"|"infer"|"train"}`) and
  /// the experience buffer's trim-error counter. Near-zero cost while
  /// detached (each stage is one null check). Call before traffic, from
  /// the thread driving the learner; `registry` must outlive the learner.
  void AttachMetrics(MetricsRegistry* registry);

 private:
  /// Stage handles, null until AttachMetrics.
  struct StageMetrics {
    Histogram* detect_seconds = nullptr;
    Histogram* infer_seconds = nullptr;
    Histogram* train_seconds = nullptr;
  };

  /// Timed wrappers: identical to calling the wrapped stage directly while
  /// detached.
  Result<ShiftAssessment> AssessTimed(const Matrix& features);
  Result<InferenceReport> RunStrategiesTimed(const Matrix& features,
                                             ShiftAssessment assessment);
  Status TrainInternalTimed(const Batch& batch,
                            const std::vector<double>& representation);
  /// Runs the strategy selector + chosen strategy on already-assessed
  /// features.
  Result<InferenceReport> RunStrategies(const Matrix& features,
                                        ShiftAssessment assessment);
  /// Model-update path shared by Train and InferThenTrain; handles
  /// disorder-gated knowledge preservation. `representation` is the batch's
  /// PCA representation (may be empty during warm-up).
  Status TrainInternal(const Batch& batch,
                       const std::vector<double>& representation);
  /// Argmax of each probability row into `report->predictions`.
  static void FillPredictions(InferenceReport* report);
  /// Projects a raw-space mean with the detector's PCA when available.
  std::vector<double> Represent(const std::vector<double>& mean) const;

  LearnerOptions options_;
  ShiftDetector detector_;
  std::unique_ptr<MultiGranularityEnsemble> ensemble_;
  CoherentExperienceClustering cec_;
  ExpBuffer exp_buffer_;
  KnowledgeStore knowledge_;
  /// Parameters are loaded into this clone for knowledge-reuse inference.
  std::unique_ptr<Model> scratch_model_;
  size_t num_classes_;
  LearnerStats stats_;
  /// mu_d of the most recent non-warm-up assessment; scales the knowledge
  /// dedup radius.
  double last_mu_d_ = 0.0;
  /// EMA of the short model's accuracy on rollover batches — the reference
  /// level preserved-knowledge quality is gated against.
  double accuracy_ema_ = -1.0;
  StageMetrics metrics_;
};

}  // namespace freeway

#endif  // FREEWAYML_CORE_LEARNER_H_
