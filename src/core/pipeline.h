#ifndef FREEWAYML_CORE_PIPELINE_H_
#define FREEWAYML_CORE_PIPELINE_H_

#include <memory>
#include <optional>

#include "common/stopwatch.h"
#include "core/learner.h"
#include "core/rate_adjuster.h"

namespace freeway {

/// Pipeline configuration.
struct PipelineOptions {
  LearnerOptions learner;
  RateAdjusterOptions rate;
  /// Whether the rate-aware adjuster drives window decay / throttling.
  bool enable_rate_adjuster = true;
};

/// Section V-A's deployment pipeline: a single incoming stream is split by
/// label presence — labeled batches feed the training path (multi-
/// granularity updates, experience, knowledge preservation), unlabeled
/// batches feed the inference path (strategy selector). A rate-aware
/// adjuster observes the flow rate and window pressure and tunes the ASW
/// decay / update throttling accordingly.
class StreamPipeline {
 public:
  StreamPipeline(const Model& prototype, const PipelineOptions& options = {});

  /// Routes one batch. Labeled batches train (and return nullopt);
  /// unlabeled batches return the inference report.
  Result<std::optional<InferenceReport>> Push(const Batch& batch);

  /// Prequential push for labeled traffic: infer first, then train.
  Result<InferenceReport> PushPrequential(const Batch& batch);

  Learner* mutable_learner() { return &learner_; }
  const Learner& learner() const { return learner_; }

  /// Smoothed observed flow rate (batches/sec).
  double observed_rate() const { return adjuster_.smoothed_rate(); }
  /// Last adjustment decided by the rate-aware controller.
  const RateAdjustment& last_adjustment() const { return last_adjustment_; }

  size_t batches_processed() const { return batches_processed_; }

 private:
  /// Measures flow + pressure and applies the adjuster's decision.
  void Tick();
  /// Max fill fraction over the ensemble's long windows.
  double WindowPressure() const;

  PipelineOptions options_;
  Learner learner_;
  RateAwareAdjuster adjuster_;
  RateAdjustment last_adjustment_;
  Stopwatch since_last_batch_;
  size_t batches_processed_ = 0;
};

}  // namespace freeway

#endif  // FREEWAYML_CORE_PIPELINE_H_
