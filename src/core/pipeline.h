#ifndef FREEWAYML_CORE_PIPELINE_H_
#define FREEWAYML_CORE_PIPELINE_H_

#include <memory>
#include <optional>

#include "common/stopwatch.h"
#include "core/learner.h"
#include "core/rate_adjuster.h"

namespace freeway {

/// Pipeline configuration.
struct PipelineOptions {
  LearnerOptions learner;
  RateAdjusterOptions rate;
  /// Whether the rate-aware adjuster drives window decay / throttling.
  bool enable_rate_adjuster = true;
};

/// Section V-A's deployment pipeline: a single incoming stream is split by
/// label presence — labeled batches feed the training path (multi-
/// granularity updates, experience, knowledge preservation), unlabeled
/// batches feed the inference path (strategy selector). A rate-aware
/// adjuster observes the flow rate and window pressure and tunes the ASW
/// decay / update throttling accordingly.
///
/// Threading contract: a StreamPipeline is externally synchronized — Push /
/// PushPrequential / SetExternalRate mutate the learner, the adjuster, and
/// the flow stopwatch with no internal locking, and none of them re-enter
/// the pipeline. At most one thread may drive an instance at a time
/// (StreamRuntime guarantees this by running one drain task per shard);
/// const accessors are safe only while no push is in flight.
class StreamPipeline {
 public:
  StreamPipeline(const Model& prototype, const PipelineOptions& options = {});

  /// Routes one batch. Labeled batches train (and return nullopt);
  /// unlabeled batches return the inference report.
  Result<std::optional<InferenceReport>> Push(const Batch& batch);

  /// Prequential push for labeled traffic: infer first, then train.
  Result<InferenceReport> PushPrequential(const Batch& batch);

  /// Supplies an externally measured flow rate (batches/sec) consumed by
  /// the next push in place of the internal inter-push stopwatch. A queued
  /// runtime must use this: once batches wait in a queue, the stopwatch
  /// measures the *service* rate (how fast this pipeline drains), while the
  /// adjuster's contract wants the *arrival* rate the producers impose.
  void SetExternalRate(double batches_per_sec);

  Learner* mutable_learner() { return &learner_; }
  const Learner& learner() const { return learner_; }

  /// Smoothed observed flow rate (batches/sec).
  double observed_rate() const { return adjuster_.smoothed_rate(); }
  /// Last adjustment decided by the rate-aware controller.
  const RateAdjustment& last_adjustment() const { return last_adjustment_; }

  /// Batches that completed their Push / PushPrequential successfully. A
  /// batch the learner rejects (bad shape, NaNs, unlabeled prequential
  /// traffic) is *not* processed — it counts under batches_failed().
  size_t batches_processed() const { return batches_ok_; }
  size_t batches_failed() const { return batches_failed_; }

  /// Serializes the pipeline's full state (learner + rate-adjuster EMA +
  /// push counters) into `out` (cleared first). Restore into a pipeline
  /// built with the same prototype and options. The flow stopwatch is not
  /// saved: the first post-restore inter-batch gap is not observed, which
  /// only matters when the internal stopwatch (not SetExternalRate) drives
  /// the adjuster.
  Status Snapshot(std::vector<char>* out);
  Status Restore(const std::vector<char>& snapshot);

  /// Attaches observability: push outcome counters
  /// (`freeway_pipeline_batches_total{result="ok"|"error"}`), an
  /// end-to-end push latency histogram (`freeway_pipeline_push_seconds`),
  /// and the learner's stage histograms. Same threading contract as Push:
  /// call before traffic from the driving thread; `registry` (or nullptr to
  /// detach) must outlive the pipeline.
  void AttachMetrics(MetricsRegistry* registry);

 private:
  /// Push handles, null until AttachMetrics.
  struct PushMetrics {
    Counter* batches_ok = nullptr;
    Counter* batches_error = nullptr;
    Histogram* push_seconds = nullptr;
  };

  /// Measures flow + pressure and applies the adjuster's decision.
  void Tick();
  /// Max fill fraction over the ensemble's long windows.
  double WindowPressure() const;
  /// Books one completed push: outcome counters + latency observation.
  void RecordPush(bool ok, const Stopwatch& watch);

  PipelineOptions options_;
  Learner learner_;
  RateAwareAdjuster adjuster_;
  RateAdjustment last_adjustment_;
  Stopwatch since_last_batch_;
  /// Arrival rate supplied via SetExternalRate, consumed by the next Tick.
  std::optional<double> external_rate_;
  /// True until the first push: the stopwatch then spans construction →
  /// first batch, which is not an inter-batch gap, so no rate is observed.
  bool first_tick_ = true;
  size_t batches_ok_ = 0;
  size_t batches_failed_ = 0;
  PushMetrics metrics_;
};

}  // namespace freeway

#endif  // FREEWAYML_CORE_PIPELINE_H_
