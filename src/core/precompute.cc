#include "core/precompute.h"

#include "common/logging.h"

namespace freeway {

PrecomputingWindow::PrecomputingWindow(Model* model) : model_(model) {
  FREEWAY_DCHECK(model_ != nullptr);
}

Result<double> PrecomputingWindow::AccumulateSubset(const Batch& subset) {
  if (!subset.labeled()) {
    return Status::InvalidArgument("PrecomputingWindow: unlabeled subset");
  }
  FREEWAY_ASSIGN_OR_RETURN(
      double loss,
      model_->ComputeGradient(subset.features, subset.labels, &scratch_));
  if (accumulated_.empty()) {
    accumulated_ = scratch_;
  } else {
    if (accumulated_.size() != scratch_.size()) {
      return Status::Internal("PrecomputingWindow: gradient size changed");
    }
    for (size_t i = 0; i < accumulated_.size(); ++i) {
      accumulated_[i] += scratch_[i];
    }
  }
  ++subsets_;
  return loss;
}

Status PrecomputingWindow::ApplyUpdate(double learning_rate) {
  if (subsets_ == 0) {
    return Status::FailedPrecondition("PrecomputingWindow: nothing pending");
  }
  const double scale = -learning_rate / static_cast<double>(subsets_);
  for (auto& g : accumulated_) g *= scale;
  FREEWAY_RETURN_NOT_OK(model_->ApplyStep(accumulated_));
  Reset();
  return Status::OK();
}

void PrecomputingWindow::Reset() {
  accumulated_.clear();
  subsets_ = 0;
}

}  // namespace freeway
