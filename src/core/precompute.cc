#include "core/precompute.h"

#include "common/logging.h"
#include "fault/snapshot.h"

namespace freeway {

PrecomputingWindow::PrecomputingWindow(Model* model) : model_(model) {
  FREEWAY_DCHECK(model_ != nullptr);
}

Result<double> PrecomputingWindow::AccumulateSubset(const Batch& subset) {
  if (!subset.labeled()) {
    return Status::InvalidArgument("PrecomputingWindow: unlabeled subset");
  }
  ASSIGN_OR_RETURN(
      double loss,
      model_->ComputeGradient(subset.features, subset.labels, &scratch_));
  if (accumulated_.empty()) {
    accumulated_ = scratch_;
  } else {
    if (accumulated_.size() != scratch_.size()) {
      return Status::Internal("PrecomputingWindow: gradient size changed");
    }
    for (size_t i = 0; i < accumulated_.size(); ++i) {
      accumulated_[i] += scratch_[i];
    }
  }
  ++subsets_;
  return loss;
}

Status PrecomputingWindow::ApplyUpdate(double learning_rate) {
  if (subsets_ == 0) {
    return Status::FailedPrecondition("PrecomputingWindow: nothing pending");
  }
  const double scale = -learning_rate / static_cast<double>(subsets_);
  for (auto& g : accumulated_) g *= scale;
  RETURN_IF_ERROR(model_->ApplyStep(accumulated_));
  Reset();
  return Status::OK();
}

void PrecomputingWindow::Reset() {
  accumulated_.clear();
  subsets_ = 0;
}


namespace {
constexpr uint32_t kPrecomputeTag = 0x50524543;  // 'PREC'
}  // namespace

void PrecomputingWindow::SaveState(SnapshotWriter* writer) const {
  writer->WriteSection(kPrecomputeTag);
  writer->WriteDoubleVec(accumulated_);
  writer->WriteU64(subsets_);
}

Status PrecomputingWindow::LoadState(SnapshotReader* reader) {
  RETURN_IF_ERROR(reader->ExpectSection(kPrecomputeTag));
  std::vector<double> accumulated;
  uint64_t subsets = 0;
  RETURN_IF_ERROR(reader->ReadDoubleVec(&accumulated));
  RETURN_IF_ERROR(reader->ReadU64(&subsets));
  if (!accumulated.empty() &&
      accumulated.size() != model_->ParameterCount()) {
    return Status::InvalidArgument(
        "PrecomputingWindow: accumulator length does not match the model");
  }
  if (subsets > 0 && accumulated.empty()) {
    return Status::InvalidArgument(
        "PrecomputingWindow: pending subsets with an empty accumulator");
  }
  accumulated_ = std::move(accumulated);
  scratch_.clear();
  subsets_ = subsets;
  return Status::OK();
}

}  // namespace freeway
