#include "core/knowledge.h"

#include <cstdio>
#include <limits>

#include "common/logging.h"
#include "fault/snapshot.h"
#include "linalg/matrix.h"

namespace freeway {

KnowledgeStore::KnowledgeStore(const KnowledgeStoreOptions& options)
    : options_(options) {
  FREEWAY_DCHECK(options_.capacity >= 2);
}

Status KnowledgeStore::SpillOldestHalf() {
  const size_t spill = hot_.size() / 2;
  std::FILE* file = nullptr;
  if (!options_.spill_path.empty()) {
    file = std::fopen(options_.spill_path.c_str(), "ab");
    if (file == nullptr) {
      return Status::IoError("cannot open spill file: " + options_.spill_path);
    }
  }
  for (size_t i = 0; i < spill; ++i) {
    const KnowledgeEntry& e = hot_.front();
    spilled_bytes_ += e.SpaceBytes();
    ++spilled_count_;
    if (file != nullptr) {
      const uint64_t rep_size = e.representation.size();
      const uint64_t param_size = e.parameters.size();
      std::fwrite(&rep_size, sizeof(rep_size), 1, file);
      std::fwrite(&param_size, sizeof(param_size), 1, file);
      std::fwrite(e.representation.data(), sizeof(double),
                  e.representation.size(), file);
      std::fwrite(e.parameters.data(), sizeof(double), e.parameters.size(),
                  file);
    }
    hot_.pop_front();
  }
  if (file != nullptr) std::fclose(file);
  return Status::OK();
}

Status KnowledgeStore::Preserve(KnowledgeEntry entry) {
  if (entry.representation.empty() || entry.parameters.empty()) {
    return Status::InvalidArgument(
        "KnowledgeStore::Preserve: empty representation or parameters");
  }
  if (hot_.size() >= options_.capacity) {
    RETURN_IF_ERROR(SpillOldestHalf());
  }
  hot_.push_back(std::move(entry));
  return Status::OK();
}

Status KnowledgeStore::PreserveOrRefresh(KnowledgeEntry entry,
                                         double dedup_radius) {
  if (dedup_radius > 0.0) {
    auto match = NearestMatch(entry.representation);
    if (match.ok() && match->distance <= dedup_radius) {
      hot_[match->entry_index] = std::move(entry);
      ++refresh_count_;
      return Status::OK();
    }
  }
  return Preserve(std::move(entry));
}

Result<KnowledgeMatch> KnowledgeStore::NearestMatch(
    const std::vector<double>& representation) const {
  KnowledgeMatch best;
  double best_distance = std::numeric_limits<double>::infinity();
  bool found = false;
  for (size_t i = 0; i < hot_.size(); ++i) {
    if (hot_[i].representation.size() != representation.size()) continue;
    const double d =
        vec::EuclideanDistance(hot_[i].representation, representation);
    if (d < best_distance) {
      best_distance = d;
      best.entry_index = i;
      found = true;
    }
  }
  if (!found) {
    return Status::NotFound("KnowledgeStore: no matching knowledge");
  }
  best.distance = best_distance;
  return best;
}

size_t KnowledgeStore::HotSpaceBytes() const {
  size_t total = 0;
  for (const KnowledgeEntry& e : hot_) total += e.SpaceBytes();
  return total;
}

Result<std::vector<KnowledgeEntry>> KnowledgeStore::ReadSpillFile(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open spill file: " + path);
  }
  std::vector<KnowledgeEntry> entries;
  for (;;) {
    uint64_t rep_size = 0, param_size = 0;
    const size_t got = std::fread(&rep_size, sizeof(rep_size), 1, file);
    if (got != 1) break;  // Clean EOF.
    if (std::fread(&param_size, sizeof(param_size), 1, file) != 1) {
      std::fclose(file);
      return Status::IoError("spill file truncated (header): " + path);
    }
    KnowledgeEntry entry;
    entry.representation.resize(rep_size);
    entry.parameters.resize(param_size);
    if (std::fread(entry.representation.data(), sizeof(double), rep_size,
                   file) != rep_size ||
        std::fread(entry.parameters.data(), sizeof(double), param_size,
                   file) != param_size) {
      std::fclose(file);
      return Status::IoError("spill file truncated (payload): " + path);
    }
    entries.push_back(std::move(entry));
  }
  std::fclose(file);
  return entries;
}


namespace {
constexpr uint32_t kKnowledgeTag = 0x4b4e4f57;  // 'KNOW'
}  // namespace

void KnowledgeStore::SaveState(SnapshotWriter* writer) const {
  writer->WriteSection(kKnowledgeTag);
  writer->WriteU64(hot_.size());
  for (const KnowledgeEntry& entry : hot_) {
    writer->WriteDoubleVec(entry.representation);
    writer->WriteDoubleVec(entry.parameters);
    writer->WriteU32(static_cast<uint32_t>(entry.source));
    writer->WriteI64(entry.batch_index);
    writer->WriteDouble(entry.quality);
  }
  writer->WriteU64(spilled_count_);
  writer->WriteU64(spilled_bytes_);
  writer->WriteU64(refresh_count_);
}

Status KnowledgeStore::LoadState(SnapshotReader* reader) {
  RETURN_IF_ERROR(reader->ExpectSection(kKnowledgeTag));
  uint64_t count = 0;
  RETURN_IF_ERROR(reader->ReadU64(&count));
  std::deque<KnowledgeEntry> hot;
  for (uint64_t i = 0; i < count; ++i) {
    KnowledgeEntry entry;
    uint32_t source = 0;
    RETURN_IF_ERROR(reader->ReadDoubleVec(&entry.representation));
    RETURN_IF_ERROR(reader->ReadDoubleVec(&entry.parameters));
    RETURN_IF_ERROR(reader->ReadU32(&source));
    RETURN_IF_ERROR(reader->ReadI64(&entry.batch_index));
    RETURN_IF_ERROR(reader->ReadDouble(&entry.quality));
    if (source > static_cast<uint32_t>(KnowledgeSource::kLongModel)) {
      return Status::InvalidArgument(
          "KnowledgeStore: snapshot has an unknown source tag");
    }
    entry.source = static_cast<KnowledgeSource>(source);
    hot.push_back(std::move(entry));
  }
  uint64_t spilled_count = 0;
  uint64_t spilled_bytes = 0;
  uint64_t refresh_count = 0;
  RETURN_IF_ERROR(reader->ReadU64(&spilled_count));
  RETURN_IF_ERROR(reader->ReadU64(&spilled_bytes));
  RETURN_IF_ERROR(reader->ReadU64(&refresh_count));
  hot_ = std::move(hot);
  spilled_count_ = spilled_count;
  spilled_bytes_ = spilled_bytes;
  refresh_count_ = refresh_count;
  return Status::OK();
}

}  // namespace freeway
