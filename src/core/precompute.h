#ifndef FREEWAYML_CORE_PRECOMPUTE_H_
#define FREEWAYML_CORE_PRECOMPUTE_H_

#include <vector>

#include "common/status.h"
#include "ml/model.h"
#include "stream/batch.h"

namespace freeway {

class SnapshotReader;
class SnapshotWriter;

/// Section V-B's pre-computing window mechanism: instead of computing the
/// gradient of a full window at update time, gradients of the window's data
/// subsets are computed incrementally as the subsets arrive and accumulated;
/// at update time only the final subset's gradient remains to be computed
/// before a single aggregated step is applied. The aggregated step is a
/// first-order approximation of the full-window gradient (all subset
/// gradients are taken at the pre-update parameters), trading a small
/// accuracy delta for much lower update-time latency.
class PrecomputingWindow {
 public:
  /// `model` must outlive this object; the window never owns it.
  explicit PrecomputingWindow(Model* model);

  /// Computes the gradient of one subset at the model's current parameters
  /// and folds it into the accumulator. Returns the subset's loss.
  Result<double> AccumulateSubset(const Batch& subset);

  /// Applies one aggregated step: theta -= lr * mean(subset gradients);
  /// then clears the accumulator. Fails if nothing was accumulated.
  Status ApplyUpdate(double learning_rate);

  size_t pending_subsets() const { return subsets_; }
  void Reset();

  /// Serializes the gradient accumulator (the model itself is restored by
  /// its owner). LoadState rejects an accumulator whose length does not
  /// match the attached model's parameter count.
  void SaveState(SnapshotWriter* writer) const;
  Status LoadState(SnapshotReader* reader);

 private:
  Model* model_;
  std::vector<double> accumulated_;
  std::vector<double> scratch_;
  size_t subsets_ = 0;
};

}  // namespace freeway

#endif  // FREEWAYML_CORE_PRECOMPUTE_H_
