#ifndef FREEWAYML_CORE_KNOWLEDGE_H_
#define FREEWAYML_CORE_KNOWLEDGE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"

namespace freeway {

class SnapshotReader;
class SnapshotWriter;

/// Which granularity produced a preserved model.
enum class KnowledgeSource { kShortModel, kLongModel };

/// One preserved (d_i, k_i) pair: a data-distribution representation and the
/// reusable model parameters that served it (Section IV-D).
struct KnowledgeEntry {
  /// d_i: the distribution representation (PCA space), the match key.
  std::vector<double> representation;
  /// k_i: flattened model parameters.
  std::vector<double> parameters;
  KnowledgeSource source = KnowledgeSource::kLongModel;
  /// Stream position at preservation time.
  int64_t batch_index = 0;
  /// Accuracy of the preserved model on its preservation batch; negative
  /// when unknown. Reuse and warm-start gates compare this against the
  /// learner's recent accuracy so stale or under-trained snapshots are not
  /// deployed.
  double quality = -1.0;

  /// In-memory footprint used for the paper's space accounting (Table IV):
  /// parameters + representation as 8-byte doubles plus a small header.
  size_t SpaceBytes() const {
    return 16 + 8 * (parameters.size() + representation.size());
  }
};

/// Options for the knowledge store.
struct KnowledgeStoreOptions {
  /// KdgBuffer: maximum in-memory entries. On overflow the older half is
  /// spilled out of memory (Section V-A3).
  size_t capacity = 20;
  /// Optional file the spilled half is appended to (binary); empty keeps an
  /// in-memory byte-count-only cold tier, which is sufficient for
  /// experiments.
  std::string spill_path;
};

/// Nearest-match result against the in-memory knowledge.
struct KnowledgeMatch {
  size_t entry_index = 0;
  double distance = 0.0;
};

/// The paper's historical-knowledge store: bounded hot tier matched by
/// distribution distance, cold tier spilled on overflow. Matching is O(k)
/// over hot entries; retrieval is O(1).
class KnowledgeStore {
 public:
  explicit KnowledgeStore(const KnowledgeStoreOptions& options = {});

  /// Stores one entry, spilling the older half if the buffer is full.
  Status Preserve(KnowledgeEntry entry);

  /// Stores `entry`, but if an existing hot entry's representation lies
  /// within `dedup_radius` of the new one, that entry is overwritten in
  /// place instead. This keeps the (distribution -> parameters) map fresh:
  /// a distribution that keeps recurring always maps to the most recently
  /// trained model for it, and near-duplicate keys don't crowd out distinct
  /// concepts in the bounded buffer.
  Status PreserveOrRefresh(KnowledgeEntry entry, double dedup_radius);

  /// Entries refreshed in place so far.
  size_t refresh_count() const { return refresh_count_; }

  /// Finds the hot entry whose representation is nearest to `representation`
  /// (Euclidean). Fails with NotFound when the store is empty or dimensions
  /// never match.
  Result<KnowledgeMatch> NearestMatch(
      const std::vector<double>& representation) const;

  const KnowledgeEntry& entry(size_t index) const { return hot_[index]; }
  size_t hot_count() const { return hot_.size(); }
  size_t spilled_count() const { return spilled_count_; }

  /// Bytes held by the in-memory (hot) tier — the Table IV metric.
  size_t HotSpaceBytes() const;
  /// Bytes written to the cold tier so far.
  size_t spilled_bytes() const { return spilled_bytes_; }

  /// Reads every entry from a spill file written by this store (oldest
  /// first). Sources and batch indices are not spilled, so reloaded entries
  /// carry defaults for those fields.
  static Result<std::vector<KnowledgeEntry>> ReadSpillFile(
      const std::string& path);

  /// Serializes the hot tier and the spill accounting. Spilled entries
  /// stay in their spill file; only the counters are carried over.
  void SaveState(SnapshotWriter* writer) const;
  Status LoadState(SnapshotReader* reader);

 private:
  Status SpillOldestHalf();

  KnowledgeStoreOptions options_;
  std::deque<KnowledgeEntry> hot_;
  size_t spilled_count_ = 0;
  size_t spilled_bytes_ = 0;
  size_t refresh_count_ = 0;
};

}  // namespace freeway

#endif  // FREEWAYML_CORE_KNOWLEDGE_H_
