#ifndef FREEWAYML_CORE_ADAPTIVE_WINDOW_H_
#define FREEWAYML_CORE_ADAPTIVE_WINDOW_H_

#include <deque>
#include <vector>

#include "common/status.h"
#include "stream/batch.h"

namespace freeway {

class SnapshotReader;
class SnapshotWriter;

/// Configuration of the adaptive streaming window.
struct AdaptiveWindowOptions {
  /// Window caps (Alg. 1 line 1): an update triggers when either is reached.
  size_t max_batches = 8;
  size_t max_items = 1 << 20;
  /// Baseline per-arrival decay applied to every resident batch.
  double base_decay = 0.03;
  /// Extra decay applied proportionally to the batch's distance rank
  /// (rank 0 = nearest to the newcomer = least decay).
  double rank_decay = 0.20;
  /// Extra global decay applied proportionally to the normalized disorder
  /// (high disorder = localized regime = faster forgetting).
  double disorder_decay = 0.20;
  /// Resident batches whose weight falls below this are evicted.
  double min_weight = 0.10;
};

/// The paper's Adaptive Streaming Window (Section IV-B, Alg. 1): the training
/// buffer of the long-time-granularity model. Each resident batch carries a
/// weight in (0, 1] that decays on every arrival; the decay rate of a batch
/// depends on (a) its rank by shift distance to the newcomer — nearer
/// batches decay less, keeping the window aligned with the current
/// distribution — and (b) the window's disorder (Eq. 11) — high disorder
/// means localized data, so everything decays faster and updates are less
/// urgent.
class AdaptiveStreamingWindow {
 public:
  explicit AdaptiveStreamingWindow(const AdaptiveWindowOptions& options = {});

  /// One resident batch with its decayed weight.
  struct Entry {
    Batch batch;
    std::vector<double> mean;  ///< Cached raw-space batch mean.
    double weight = 1.0;
  };

  /// Inserts `batch` (must be labeled), decaying the residents per Alg. 1.
  /// Returns true if the window is now full (caller should TakeTrainingData
  /// and the long model should update).
  Result<bool> Add(const Batch& batch);

  /// Whether the window has hit either cap.
  bool Full() const;

  /// Normalized disorder of the current distance-vs-time ranking in [0, 1],
  /// recomputed on the last Add. Low = directional (A1); high = localized
  /// (A2). This value also gates knowledge preservation (Section IV-D).
  double disorder() const { return disorder_; }

  /// Weighted training view: each resident batch contributes its first
  /// ceil(weight * rows) rows. Clears the window except for the most recent
  /// batch (which seeds the next window with the current distribution).
  Result<Batch> TakeTrainingData();

  /// Weighted centroid of resident batch means — y_bar_ASW for the
  /// long-model distance D_long (Eq. 13). Returns the empty vector when the
  /// window is empty.
  std::vector<double> Centroid() const;

  size_t num_batches() const { return entries_.size(); }
  /// Total resident samples. O(1): maintained incrementally by Add /
  /// eviction / TakeTrainingData (and reconciled against the entries in
  /// debug builds), so the per-push Full() check never walks the window.
  size_t num_items() const { return num_items_; }
  const std::deque<Entry>& entries() const { return entries_; }

  /// Scales all decay rates up by `boost` >= 1 — the rate-aware adjuster's
  /// lever under high load (Section V-B).
  void SetDecayBoost(double boost);
  double decay_boost() const { return decay_boost_; }

  /// Serializes resident entries, disorder, and the decay boost; the item
  /// count is recomputed on load. Options are not serialized.
  void SaveState(SnapshotWriter* writer) const;
  Status LoadState(SnapshotReader* reader);

 private:
  /// Debug-build check that num_items_ matches the resident batches.
  void CheckItemCount() const;

  AdaptiveWindowOptions options_;
  std::deque<Entry> entries_;
  /// Running sum of entries_[i].batch.size().
  size_t num_items_ = 0;
  double disorder_ = 0.0;
  double decay_boost_ = 1.0;
};

}  // namespace freeway

#endif  // FREEWAYML_CORE_ADAPTIVE_WINDOW_H_
