#include "core/learner.h"

#include "common/logging.h"
#include "common/stopwatch.h"
#include "fault/failpoint.h"
#include "fault/snapshot.h"

namespace freeway {

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kMultiGranularity:
      return "multi-granularity";
    case Strategy::kCec:
      return "cec";
    case Strategy::kKnowledgeReuse:
      return "knowledge-reuse";
  }
  return "?";
}

namespace {

/// Expands the template-level knobs (ModelNum, KdgBuffer, alpha, ...) into
/// the per-component option structs.
LearnerOptions Materialize(LearnerOptions options) {
  options.detector.alpha = options.alpha;
  options.knowledge.capacity = options.kdg_buffer;

  FREEWAY_DCHECK(options.model_num >= 2);
  options.granularity.long_window_batches.clear();
  size_t window = options.base_window_batches;
  for (size_t i = 1; i < options.model_num; ++i) {
    options.granularity.long_window_batches.push_back(window);
    window *= 2;  // Each additional model covers a longer horizon.
  }
  return options;
}

}  // namespace

Learner::Learner(const Model& prototype, const LearnerOptions& options)
    : options_(Materialize(options)),
      detector_(options_.detector),
      cec_(options_.cec),
      exp_buffer_(options_.exp_buffer_capacity, options_.exp_buffer_age),
      knowledge_(options_.knowledge),
      scratch_model_(prototype.Clone()),
      num_classes_(prototype.num_classes()) {
  ensemble_ = std::make_unique<MultiGranularityEnsemble>(
      prototype, options_.granularity, &detector_.pca());
}

std::vector<double> Learner::Represent(const std::vector<double>& mean) const {
  if (detector_.pca().fitted() && detector_.pca().input_dim() == mean.size()) {
    auto projected = detector_.pca().Transform(mean);
    if (projected.ok()) return std::move(projected).value();
  }
  return mean;
}

void Learner::SetWindowDecayBoost(double boost) {
  for (size_t i = 0; i < ensemble_->num_long_models(); ++i) {
    ensemble_->mutable_window(i)->SetDecayBoost(boost);
  }
}

void Learner::AttachMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = StageMetrics();
    exp_buffer_.set_trim_errors_counter(nullptr);
    return;
  }
  metrics_.detect_seconds = registry->GetHistogram(
      "freeway_learner_stage_seconds{stage=\"detect\"}");
  metrics_.infer_seconds =
      registry->GetHistogram("freeway_learner_stage_seconds{stage=\"infer\"}");
  metrics_.train_seconds =
      registry->GetHistogram("freeway_learner_stage_seconds{stage=\"train\"}");
  exp_buffer_.set_trim_errors_counter(
      registry->GetCounter("freeway_expbuffer_trim_errors_total"));
}

Result<ShiftAssessment> Learner::AssessTimed(const Matrix& features) {
  if (metrics_.detect_seconds == nullptr) return detector_.Assess(features);
  Stopwatch watch;
  Result<ShiftAssessment> out = detector_.Assess(features);
  metrics_.detect_seconds->Observe(watch.ElapsedSeconds());
  return out;
}

Result<InferenceReport> Learner::RunStrategiesTimed(
    const Matrix& features, ShiftAssessment assessment) {
  if (metrics_.infer_seconds == nullptr) {
    return RunStrategies(features, std::move(assessment));
  }
  Stopwatch watch;
  Result<InferenceReport> out =
      RunStrategies(features, std::move(assessment));
  metrics_.infer_seconds->Observe(watch.ElapsedSeconds());
  return out;
}

Status Learner::TrainInternalTimed(const Batch& batch,
                                   const std::vector<double>& representation) {
  if (metrics_.train_seconds == nullptr) {
    return TrainInternal(batch, representation);
  }
  Stopwatch watch;
  Status out = TrainInternal(batch, representation);
  metrics_.train_seconds->Observe(watch.ElapsedSeconds());
  return out;
}

Result<InferenceReport> Learner::RunStrategies(const Matrix& features,
                                               ShiftAssessment assessment) {
  FREEWAY_FAILPOINT("learner.infer");
  InferenceReport report;
  report.assessment = std::move(assessment);
  const ShiftAssessment& shift = report.assessment;

  // Pattern accounting.
  if (!shift.warmup) {
    switch (shift.pattern) {
      case ShiftPattern::kSlight:
        ++stats_.slight_patterns;
        break;
      case ShiftPattern::kSudden:
        ++stats_.sudden_patterns;
        break;
      case ShiftPattern::kReoccurring:
        ++stats_.reoccurring_patterns;
        break;
    }
  }

  // Strategy selector (Section V-A): exactly one strategy per batch.
  Strategy strategy = Strategy::kMultiGranularity;
  if (!shift.warmup && shift.pattern == ShiftPattern::kReoccurring) {
    strategy = Strategy::kKnowledgeReuse;
  } else if (!shift.warmup && shift.pattern == ShiftPattern::kSudden) {
    strategy = Strategy::kCec;
  }

  // Pattern C: reuse a historical model when one is closer to the current
  // distribution than the last batch is (Section IV-D knowledge match).
  if (strategy == Strategy::kKnowledgeReuse) {
    bool reused = false;
    if (!shift.representation.empty()) {
      auto match = knowledge_.NearestMatch(shift.representation);
      // Quality gate: a snapshot materially below the stream's recent
      // accuracy level would deploy an under-trained model.
      const bool quality_ok =
          !match.ok() ||
          knowledge_.entry(match->entry_index).quality < 0.0 ||
          accuracy_ema_ < 0.0 ||
          knowledge_.entry(match->entry_index).quality >=
              0.85 * accuracy_ema_;
      if (match.ok() && quality_ok &&
          match->distance <
              options_.knowledge_match_factor * shift.distance) {
        const KnowledgeEntry& entry = knowledge_.entry(match->entry_index);
        Status set = scratch_model_->SetParameters(entry.parameters);
        if (set.ok()) {
          ASSIGN_OR_RETURN(report.proba,
                                   scratch_model_->PredictProba(features));
          report.knowledge_distance = match->distance;
          reused = true;
          // Confident match: the historical distribution essentially *is*
          // the current one. Warm-start the short model from it so the
          // reoccurring concept is served by remembered parameters instead
          // of being relearned from scratch.
          const bool warm_quality_ok =
              entry.quality < 0.0 || accuracy_ema_ < 0.0 ||
              entry.quality >= 0.93 * accuracy_ema_;
          if (options_.warm_start_on_reuse && warm_quality_ok &&
              shift.mu_d > 0.0 && match->distance < shift.mu_d) {
            ensemble_->short_model()
                ->SetParameters(entry.parameters)
                .CheckOk();
          }
        }
      }
    }
    // No usable knowledge: the shift is still severe, so fall back to CEC.
    strategy = reused ? Strategy::kKnowledgeReuse : Strategy::kCec;
  }

  if (strategy == Strategy::kCec) {
    bool clustered = false;
    if (!exp_buffer_.empty()) {
      auto experience = exp_buffer_.Snapshot();
      if (experience.ok()) {
        auto cec = cec_.Predict(features, *experience, num_classes_);
        if (cec.ok() && cec->experience_purity >= options_.cec_min_purity &&
            cec->query_coverage >= options_.cec_min_coverage) {
          report.proba = std::move(cec->proba);
          clustered = true;
        }
      }
    }
    // Cold start (no experience) or clusters misaligned with classes:
    // the ensemble answers instead.
    if (!clustered) strategy = Strategy::kMultiGranularity;
  }

  if (strategy == Strategy::kMultiGranularity) {
    ASSIGN_OR_RETURN(report.proba, ensemble_->PredictProba(features));
  }

  report.strategy = strategy;
  switch (strategy) {
    case Strategy::kMultiGranularity:
      ++stats_.ensemble_inferences;
      break;
    case Strategy::kCec:
      ++stats_.cec_inferences;
      break;
    case Strategy::kKnowledgeReuse:
      ++stats_.knowledge_inferences;
      break;
  }

  FillPredictions(&report);
  if (!shift.warmup) last_mu_d_ = shift.mu_d;
  ++stats_.batches_inferred;
  return report;
}

void Learner::FillPredictions(InferenceReport* report) {
  report->predictions.resize(report->proba.rows());
  for (size_t i = 0; i < report->proba.rows(); ++i) {
    auto row = report->proba.Row(i);
    size_t best = 0;
    for (size_t j = 1; j < row.size(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    report->predictions[i] = static_cast<int>(best);
  }
}

Status Learner::TrainInternal(const Batch& batch,
                              const std::vector<double>& representation) {
  FREEWAY_FAILPOINT("learner.train");
  ASSIGN_OR_RETURN(MultiGranularityEnsemble::TrainReport train_report,
                           ensemble_->Train(batch));
  RETURN_IF_ERROR(exp_buffer_.Add(batch));
  ++stats_.batches_trained;
  stats_.long_model_updates += train_report.rollovers.size();

  // Disorder-gated knowledge preservation (Section IV-D): at each ASW
  // rollover preserve the freshly-updated long model keyed by the window's
  // distribution; when the window was ordered (directional, disorder below
  // beta) the short model carries complementary information about the
  // post-shift distribution, so preserve it too.
  const double dedup_radius = options_.knowledge_dedup_factor * last_mu_d_;
  for (const auto& rollover : train_report.rollovers) {
    if (rollover.short_accuracy >= 0.0) {
      accuracy_ema_ = accuracy_ema_ < 0.0
                          ? rollover.short_accuracy
                          : 0.7 * accuracy_ema_ + 0.3 * rollover.short_accuracy;
    }
    KnowledgeEntry long_entry;
    long_entry.representation = Represent(rollover.window_centroid);
    long_entry.parameters =
        ensemble_->LongModelParameters(rollover.model_index);
    long_entry.source = KnowledgeSource::kLongModel;
    long_entry.batch_index = batch.index;
    long_entry.quality = rollover.long_accuracy;
    RETURN_IF_ERROR(
        knowledge_.PreserveOrRefresh(std::move(long_entry), dedup_radius));
    ++stats_.knowledge_preserved;

    if (rollover.disorder < options_.disorder_threshold) {
      KnowledgeEntry short_entry;
      short_entry.representation = representation.empty()
                                       ? Represent(batch.Mean())
                                       : representation;
      short_entry.parameters = ensemble_->short_model()->GetParameters();
      short_entry.source = KnowledgeSource::kShortModel;
      short_entry.batch_index = batch.index;
      short_entry.quality = rollover.short_accuracy;
      RETURN_IF_ERROR(
          knowledge_.PreserveOrRefresh(std::move(short_entry), dedup_radius));
      ++stats_.knowledge_preserved;
    }
  }
  return Status::OK();
}

Result<InferenceReport> Learner::InferThenTrain(const Batch& batch) {
  if (!batch.labeled()) {
    return Status::InvalidArgument("InferThenTrain requires a labeled batch");
  }
  ASSIGN_OR_RETURN(ShiftAssessment assessment,
                           AssessTimed(batch.features));
  ASSIGN_OR_RETURN(
      InferenceReport report,
      RunStrategiesTimed(batch.features, std::move(assessment)));
  RETURN_IF_ERROR(
      TrainInternalTimed(batch, report.assessment.representation));
  return report;
}

Result<InferenceReport> Learner::Infer(const Matrix& features) {
  ASSIGN_OR_RETURN(ShiftAssessment assessment, AssessTimed(features));
  return RunStrategiesTimed(features, std::move(assessment));
}

Status Learner::Train(const Batch& batch) {
  if (!batch.labeled()) {
    return Status::InvalidArgument("Train requires a labeled batch");
  }
  ASSIGN_OR_RETURN(ShiftAssessment assessment,
                           AssessTimed(batch.features));
  if (!assessment.warmup) last_mu_d_ = assessment.mu_d;
  return TrainInternalTimed(batch, assessment.representation);
}


namespace {
constexpr uint32_t kLearnerTag = 0x4c524e52;  // 'LRNR'
}  // namespace

Status Learner::SaveState(SnapshotWriter* writer) {
  writer->WriteSection(kLearnerTag);
  detector_.SaveState(writer);
  RETURN_IF_ERROR(ensemble_->SaveState(writer));
  exp_buffer_.SaveState(writer);
  knowledge_.SaveState(writer);
  writer->WriteU64(stats_.batches_inferred);
  writer->WriteU64(stats_.batches_trained);
  writer->WriteU64(stats_.ensemble_inferences);
  writer->WriteU64(stats_.cec_inferences);
  writer->WriteU64(stats_.knowledge_inferences);
  writer->WriteU64(stats_.slight_patterns);
  writer->WriteU64(stats_.sudden_patterns);
  writer->WriteU64(stats_.reoccurring_patterns);
  writer->WriteU64(stats_.knowledge_preserved);
  writer->WriteU64(stats_.long_model_updates);
  writer->WriteDouble(last_mu_d_);
  writer->WriteDouble(accuracy_ema_);
  return Status::OK();
}

Status Learner::LoadState(SnapshotReader* reader) {
  RETURN_IF_ERROR(reader->ExpectSection(kLearnerTag));
  RETURN_IF_ERROR(detector_.LoadState(reader));
  RETURN_IF_ERROR(ensemble_->LoadState(reader));
  RETURN_IF_ERROR(exp_buffer_.LoadState(reader));
  RETURN_IF_ERROR(knowledge_.LoadState(reader));
  uint64_t counters[10] = {};
  for (auto& c : counters) RETURN_IF_ERROR(reader->ReadU64(&c));
  stats_.batches_inferred = counters[0];
  stats_.batches_trained = counters[1];
  stats_.ensemble_inferences = counters[2];
  stats_.cec_inferences = counters[3];
  stats_.knowledge_inferences = counters[4];
  stats_.slight_patterns = counters[5];
  stats_.sudden_patterns = counters[6];
  stats_.reoccurring_patterns = counters[7];
  stats_.knowledge_preserved = counters[8];
  stats_.long_model_updates = counters[9];
  RETURN_IF_ERROR(reader->ReadDouble(&last_mu_d_));
  RETURN_IF_ERROR(reader->ReadDouble(&accuracy_ema_));
  return Status::OK();
}

Status Learner::Snapshot(std::vector<char>* out) {
  SnapshotWriter writer;
  RETURN_IF_ERROR(SaveState(&writer));
  *out = writer.Take();
  return Status::OK();
}

Status Learner::Restore(const std::vector<char>& snapshot) {
  SnapshotReader reader(snapshot);
  RETURN_IF_ERROR(LoadState(&reader));
  return reader.ExpectEnd();
}

}  // namespace freeway
