#ifndef FREEWAYML_CORE_DISORDER_H_
#define FREEWAYML_CORE_DISORDER_H_

#include <cstddef>
#include <vector>

namespace freeway {

/// Inversion count of a ranking (Eq. 11): the number of pairs (i, j) with
/// i < j and tau_i > tau_j. O(n log n) via merge sort. The ASW uses this as
/// its "disorder": when the time-order of batches disagrees with their
/// distance-order to the newest batch, the stream is localized (Pattern A2);
/// when they agree, the stream is drifting directionally (Pattern A1).
size_t InversionCount(std::vector<double> values);

/// Inversions normalized by the maximum possible count n*(n-1)/2, in [0, 1].
/// Returns 0 for fewer than 2 elements.
double NormalizedDisorder(const std::vector<double>& values);

}  // namespace freeway

#endif  // FREEWAYML_CORE_DISORDER_H_
