#ifndef FREEWAYML_CORE_SHIFT_DETECTOR_H_
#define FREEWAYML_CORE_SHIFT_DETECTOR_H_

#include <deque>
#include <optional>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/pca.h"
#include "stream/batch.h"

namespace freeway {

class SnapshotReader;
class SnapshotWriter;

/// The three shift patterns of Section III. Slight shifts are further split
/// by the ASW's disorder into directional (A1) and localized (A2), but the
/// detector itself distinguishes only the three inference-strategy classes.
enum class ShiftPattern {
  kSlight,       ///< Pattern A: M < alpha.
  kSudden,       ///< Pattern B: M > alpha.
  kReoccurring,  ///< Pattern C: M > alpha and d_h < d_t.
};

const char* ShiftPatternName(ShiftPattern pattern);

/// Full assessment of one incoming batch against the stream history.
struct ShiftAssessment {
  ShiftPattern pattern = ShiftPattern::kSlight;
  /// PCA-space representation of the batch, y_bar_t (Eq. 6).
  std::vector<double> representation;
  /// Shift distance d_t = ||y_bar_t - y_bar_{t-1}|| (Eq. 7).
  double distance = 0.0;
  /// Severity score M = (d_t - mu_d) / sigma_d (Eq. 10); 0 during warm-up.
  double m_score = 0.0;
  /// Weighted mean / SD of the last k shift distances (Eqs. 8–9).
  double mu_d = 0.0;
  double sigma_d = 0.0;
  /// Nearest distance from y_bar_t to non-adjacent historical batch
  /// representations; +inf when no history qualifies.
  double d_h = 0.0;
  /// True while the detector is still warming up its PCA / statistics.
  bool warmup = false;
};

/// Configuration of the shift detector.
struct ShiftDetectorOptions {
  /// PCA target dimensionality d. The paper's shift *graphs* (Fig. 2) use 2
  /// for visualization; the detector defaults to a higher d so that jumps in
  /// high-dimensional streams keep enough of their energy after projection
  /// to stand out from batch-to-batch noise. Clamped to the input dim.
  size_t pca_components = 8;
  /// Batches used to warm up the PCA model before assessments begin.
  size_t warmup_batches = 5;
  /// k: number of past shift distances in the severity statistics.
  size_t history_k = 20;
  /// Geometric recency weight for mu_d: w_i = recency_decay^(i-1), i = 1 for
  /// the most recent batch.
  double recency_decay = 0.9;
  /// Severity threshold alpha (the paper defaults to 1.96).
  double alpha = 1.96;
  /// Pattern C requires d_h < reoccur_margin * d_t. The paper's strict
  /// d_h < d_t is a near coin-flip when a *new* region is entered from a
  /// localized phase (both distances then measure the same jump); the
  /// margin keeps near-ties classified as sudden (Pattern B) while true
  /// restores (d_h << d_t) remain Pattern C.
  double reoccur_margin = 0.75;
  /// Representations kept for the d_h search and the shift graph.
  size_t max_history = 512;
  /// Batches at the tail of the history excluded from the d_h search —
  /// adjacent batches are trivially near the current one.
  size_t exclude_recent = 3;
};

/// Detects and classifies data-distribution shifts on a stream (Eqs. 2–10):
/// warm-up PCA -> per-batch representation y_bar_t -> shift distance d_t ->
/// severity M against recency-weighted statistics of past distances ->
/// pattern {A, B, C}. Also records the trajectory of representations, which
/// *is* the paper's shift graph (Fig. 2).
class ShiftDetector {
 public:
  explicit ShiftDetector(const ShiftDetectorOptions& options = {});

  /// Feeds one batch. During warm-up the batch only accumulates toward the
  /// PCA fit and the returned assessment has `warmup = true`; afterwards the
  /// batch is assessed against history and then appended to it.
  Result<ShiftAssessment> Assess(const Matrix& features);

  bool warmed_up() const { return pca_.fitted(); }
  const Pca& pca() const { return pca_; }
  const ShiftDetectorOptions& options() const { return options_; }

  /// Chronological batch representations observed so far (the shift graph
  /// nodes); edges are consecutive pairs.
  const std::deque<std::vector<double>>& history() const { return history_; }

  /// Recent shift distances, most recent last.
  const std::deque<double>& recent_distances() const { return distances_; }

  /// Serializes the mutable state (PCA fit, warm-up sample, history,
  /// distance statistics). Options are not serialized: restore into a
  /// detector constructed with the same options.
  void SaveState(SnapshotWriter* writer) const;
  Status LoadState(SnapshotReader* reader);

 private:
  /// Computes Eqs. 8-10 from `distances_`.
  void SeverityStats(double* mu_d, double* sigma_d) const;

  ShiftDetectorOptions options_;
  Pca pca_;
  /// Warm-up sample rows pending the PCA fit.
  std::vector<std::vector<double>> warmup_rows_;
  size_t warmup_batches_seen_ = 0;

  std::deque<std::vector<double>> history_;
  std::deque<double> distances_;
  std::optional<std::vector<double>> previous_representation_;
};

}  // namespace freeway

#endif  // FREEWAYML_CORE_SHIFT_DETECTOR_H_
