#include "core/exp_buffer.h"

#include "common/logging.h"
#include "fault/snapshot.h"

namespace freeway {

ExpBuffer::ExpBuffer(size_t capacity, int64_t max_age_batches)
    : capacity_(capacity), max_age_batches_(max_age_batches) {
  FREEWAY_DCHECK(capacity_ >= 1);
}

void ExpBuffer::ExpireOld(int64_t current_batch_index) {
  if (max_age_batches_ <= 0) return;
  while (!batches_.empty() &&
         current_batch_index - batches_.front().index > max_age_batches_) {
    total_samples_ -= batches_.front().size();
    batches_.pop_front();
  }
}

Status ExpBuffer::EnforceCapacity() {
  // Drop whole oldest batches first, then trim the (new) front batch so the
  // retained samples are exactly the newest `capacity_`.
  while (total_samples_ > capacity_ && !batches_.empty() &&
         total_samples_ - batches_.front().size() >= capacity_) {
    total_samples_ -= batches_.front().size();
    batches_.pop_front();
  }
  if (total_samples_ > capacity_ && !batches_.empty()) {
    const size_t excess = total_samples_ - capacity_;
    Batch& front = batches_.front();
    auto trimmed = SliceBatch(front, excess, front.size());
    if (!trimmed.ok()) {
      if (trim_errors_ != nullptr) trim_errors_->Inc();
      return trimmed.status();
    }
    total_samples_ -= excess;
    front = std::move(trimmed).value();
  }
  return Status::OK();
}

Status ExpBuffer::Add(const Batch& batch) {
  if (!batch.labeled()) {
    return Status::InvalidArgument("ExpBuffer::Add: batch is unlabeled");
  }
  if (!batches_.empty() && batches_.front().dim() != batch.dim()) {
    return Status::InvalidArgument("ExpBuffer::Add: dimension mismatch");
  }
  if (batch.size() >= capacity_) {
    // The new batch alone fills the buffer: keep only its newest samples.
    ASSIGN_OR_RETURN(
        Batch tail, SliceBatch(batch, batch.size() - capacity_, batch.size()));
    batches_.clear();
    batches_.push_back(std::move(tail));
    total_samples_ = capacity_;
  } else {
    batches_.push_back(batch);
    total_samples_ += batch.size();
    RETURN_IF_ERROR(EnforceCapacity());
  }
  ExpireOld(batch.index);
  return Status::OK();
}

Result<Batch> ExpBuffer::Snapshot() const {
  if (batches_.empty()) {
    return Status::FailedPrecondition("ExpBuffer is empty");
  }
  std::vector<const Batch*> parts;
  parts.reserve(batches_.size());
  for (const Batch& b : batches_) parts.push_back(&b);
  return ConcatBatches(parts);
}


namespace {
constexpr uint32_t kExpBufferTag = 0x45585042;  // 'EXPB'
}  // namespace

void ExpBuffer::SaveState(SnapshotWriter* writer) const {
  writer->WriteSection(kExpBufferTag);
  writer->WriteU64(batches_.size());
  for (const Batch& batch : batches_) writer->WriteBatch(batch);
}

Status ExpBuffer::LoadState(SnapshotReader* reader) {
  RETURN_IF_ERROR(reader->ExpectSection(kExpBufferTag));
  uint64_t count = 0;
  RETURN_IF_ERROR(reader->ReadU64(&count));
  std::deque<Batch> batches;
  size_t total = 0;
  for (uint64_t i = 0; i < count; ++i) {
    Batch batch;
    RETURN_IF_ERROR(reader->ReadBatch(&batch));
    if (!batch.labeled()) {
      return Status::InvalidArgument(
          "ExpBuffer: snapshot holds an unlabeled batch");
    }
    total += batch.size();
    batches.push_back(std::move(batch));
  }
  batches_ = std::move(batches);
  total_samples_ = total;
  // The snapshot may come from a buffer with a larger capacity; trim down
  // to this buffer's own limit before anyone reads the experience.
  return EnforceCapacity();
}

}  // namespace freeway
