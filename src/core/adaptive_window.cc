#include "core/adaptive_window.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "core/disorder.h"
#include "fault/snapshot.h"

namespace freeway {

AdaptiveStreamingWindow::AdaptiveStreamingWindow(
    const AdaptiveWindowOptions& options)
    : options_(options) {
  FREEWAY_DCHECK(options_.max_batches >= 2);
  FREEWAY_DCHECK(options_.min_weight > 0.0 && options_.min_weight < 1.0);
}

void AdaptiveStreamingWindow::CheckItemCount() const {
#ifndef NDEBUG
  size_t total = 0;
  for (const Entry& e : entries_) total += e.batch.size();
  FREEWAY_DCHECK(total == num_items_);
#endif
}

bool AdaptiveStreamingWindow::Full() const {
  return entries_.size() >= options_.max_batches ||
         num_items_ >= options_.max_items;
}

void AdaptiveStreamingWindow::SetDecayBoost(double boost) {
  decay_boost_ = boost < 1.0 ? 1.0 : boost;
}

Result<bool> AdaptiveStreamingWindow::Add(const Batch& batch) {
  if (!batch.labeled()) {
    return Status::InvalidArgument("ASW only holds labeled training batches");
  }
  if (batch.size() == 0) {
    return Status::InvalidArgument("ASW: empty batch");
  }

  const std::vector<double> new_mean = batch.Mean();

  if (!entries_.empty()) {
    // Alg. 1 lines 6-12: shift of every resident batch to the newcomer,
    // then the disorder of the distance sequence ordered most-recent-first.
    // Under a directional drift the most recent batch is nearest and the
    // oldest farthest, so this ordering is sorted (disorder ~ 0); localized
    // jitter scrambles it (disorder ~ 1/2 or higher) — matching the paper's
    // reading of Eq. 11.
    std::vector<double> shifts;
    shifts.reserve(entries_.size());
    for (const Entry& e : entries_) {
      shifts.push_back(vec::EuclideanDistance(e.mean, new_mean));
    }
    std::vector<double> recency_ordered(shifts.rbegin(), shifts.rend());
    disorder_ = NormalizedDisorder(recency_ordered);

    // Distance ranks: rank 0 = nearest to the newcomer.
    std::vector<size_t> order(shifts.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&shifts](size_t a, size_t b) {
      return shifts[a] < shifts[b];
    });
    std::vector<size_t> rank(shifts.size());
    for (size_t pos = 0; pos < order.size(); ++pos) rank[order[pos]] = pos;

    // Alg. 1 lines 13-16: decay each resident by f(rank, disorder).
    const double denom = shifts.size() > 1
                             ? static_cast<double>(shifts.size() - 1)
                             : 1.0;
    for (size_t i = 0; i < entries_.size(); ++i) {
      const double rank_frac = static_cast<double>(rank[i]) / denom;
      double decay = options_.base_decay + options_.rank_decay * rank_frac +
                     options_.disorder_decay * disorder_;
      decay *= decay_boost_;
      if (decay > 0.95) decay = 0.95;
      entries_[i].weight *= (1.0 - decay);
    }
    // Evict fully-decayed batches, keeping the running item count in step.
    std::erase_if(entries_, [this](const Entry& e) {
      if (e.weight < options_.min_weight) {
        num_items_ -= e.batch.size();
        return true;
      }
      return false;
    });
  } else {
    disorder_ = 0.0;
  }

  Entry entry;
  entry.batch = batch;
  entry.mean = new_mean;
  entry.weight = 1.0;
  num_items_ += entry.batch.size();
  entries_.push_back(std::move(entry));
  CheckItemCount();

  return Full();
}

Result<Batch> AdaptiveStreamingWindow::TakeTrainingData() {
  if (entries_.empty()) {
    return Status::FailedPrecondition("ASW: window is empty");
  }

  // Weighted view: each batch contributes ceil(weight * rows) rows.
  std::vector<Batch> slices;
  slices.reserve(entries_.size());
  for (const Entry& e : entries_) {
    const size_t rows = static_cast<size_t>(
        std::ceil(e.weight * static_cast<double>(e.batch.size())));
    const size_t take = rows > e.batch.size() ? e.batch.size() : rows;
    if (take == 0) continue;
    ASSIGN_OR_RETURN(Batch slice, SliceBatch(e.batch, 0, take));
    slices.push_back(std::move(slice));
  }
  std::vector<const Batch*> ptrs;
  ptrs.reserve(slices.size());
  for (const Batch& s : slices) ptrs.push_back(&s);
  ASSIGN_OR_RETURN(Batch merged, ConcatBatches(ptrs));

  // Keep the newest batch to seed the next window with the live
  // distribution; drop everything older.
  Entry last = std::move(entries_.back());
  entries_.clear();
  last.weight = 1.0;
  num_items_ = last.batch.size();
  entries_.push_back(std::move(last));
  disorder_ = 0.0;
  CheckItemCount();

  return merged;
}

std::vector<double> AdaptiveStreamingWindow::Centroid() const {
  if (entries_.empty()) return {};
  const size_t dim = entries_.front().mean.size();
  std::vector<double> centroid(dim, 0.0);
  double total_weight = 0.0;
  for (const Entry& e : entries_) {
    vec::Axpy(e.weight, e.mean, centroid);
    total_weight += e.weight;
  }
  if (total_weight > 0.0) {
    for (auto& v : centroid) v /= total_weight;
  }
  return centroid;
}


namespace {
constexpr uint32_t kAdaptiveWindowTag = 0x41535721;  // 'ASW!'
}  // namespace

void AdaptiveStreamingWindow::SaveState(SnapshotWriter* writer) const {
  writer->WriteSection(kAdaptiveWindowTag);
  writer->WriteU64(entries_.size());
  for (const Entry& entry : entries_) {
    writer->WriteBatch(entry.batch);
    writer->WriteDoubleVec(entry.mean);
    writer->WriteDouble(entry.weight);
  }
  writer->WriteDouble(disorder_);
  writer->WriteDouble(decay_boost_);
}

Status AdaptiveStreamingWindow::LoadState(SnapshotReader* reader) {
  RETURN_IF_ERROR(reader->ExpectSection(kAdaptiveWindowTag));
  uint64_t count = 0;
  RETURN_IF_ERROR(reader->ReadU64(&count));
  std::deque<Entry> entries;
  size_t num_items = 0;
  for (uint64_t i = 0; i < count; ++i) {
    Entry entry;
    RETURN_IF_ERROR(reader->ReadBatch(&entry.batch));
    RETURN_IF_ERROR(reader->ReadDoubleVec(&entry.mean));
    RETURN_IF_ERROR(reader->ReadDouble(&entry.weight));
    if (!entry.batch.labeled()) {
      return Status::InvalidArgument(
          "AdaptiveStreamingWindow: snapshot holds an unlabeled batch");
    }
    num_items += entry.batch.size();
    entries.push_back(std::move(entry));
  }
  RETURN_IF_ERROR(reader->ReadDouble(&disorder_));
  RETURN_IF_ERROR(reader->ReadDouble(&decay_boost_));
  entries_ = std::move(entries);
  num_items_ = num_items;
  CheckItemCount();
  return Status::OK();
}

}  // namespace freeway
