#include "core/granularity.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "fault/snapshot.h"
#include "ml/serialize.h"

namespace freeway {

MultiGranularityEnsemble::MultiGranularityEnsemble(
    const Model& prototype, const MultiGranularityOptions& options,
    const Pca* projector)
    : options_(options), projector_(projector) {
  FREEWAY_DCHECK(!options_.long_window_batches.empty());
  short_model_ = prototype.Clone();
  for (size_t max_batches : options_.long_window_batches) {
    AdaptiveWindowOptions wopts = options_.window;
    wopts.max_batches = max_batches;
    long_.emplace_back(prototype.Clone(), wopts);
  }
}

std::vector<double> MultiGranularityEnsemble::Represent(
    const std::vector<double>& mean) const {
  if (projector_ != nullptr && projector_->fitted() &&
      projector_->input_dim() == mean.size()) {
    auto projected = projector_->Transform(mean);
    if (projected.ok()) return std::move(projected).value();
  }
  return mean;
}

double MultiGranularityEnsemble::KernelSigma() const {
  if (options_.kernel_sigma > 0.0) return options_.kernel_sigma;
  // Adaptive bandwidth: the running scale of observed distances, sharpened
  // by kernel_sigma_factor. The floor avoids a degenerate kernel before any
  // distances have been seen.
  if (!distance_ema_init_) return 1.0;
  return std::max(distance_ema_ * options_.kernel_sigma_factor, 1e-6);
}

MultiGranularityEnsemble::~MultiGranularityEnsemble() {
  for (LongSlot& slot : long_) {
    if (slot.worker.joinable()) slot.worker.join();
  }
}

void MultiGranularityEnsemble::JoinWorker(LongSlot* slot) {
  if (slot->worker.joinable()) slot->worker.join();
}

std::vector<double> MultiGranularityEnsemble::LongModelParameters(size_t i) {
  std::lock_guard<std::mutex> lock(long_[i].mutex);
  return long_[i].model->GetParameters();
}

void MultiGranularityEnsemble::WaitForAsyncUpdates() {
  for (LongSlot& slot : long_) JoinWorker(&slot);
}

void MultiGranularityEnsemble::ObserveQuality(LongSlot* slot,
                                              const Batch& batch,
                                              double* short_out,
                                              double* long_out) {
  *short_out = -1.0;
  *long_out = -1.0;
  auto short_acc = Accuracy(short_model_.get(), batch.features, batch.labels);
  if (!short_acc.ok()) return;
  double long_acc_value = 0.0;
  {
    std::lock_guard<std::mutex> lock(slot->mutex);
    auto long_acc = Accuracy(slot->model.get(), batch.features, batch.labels);
    if (!long_acc.ok()) return;
    long_acc_value = long_acc.value();
  }
  *short_out = short_acc.value();
  *long_out = long_acc_value;
  const double delta = long_acc_value - short_acc.value();
  if (!slot->quality_init) {
    slot->quality_ema = delta;
    slot->quality_init = true;
  } else {
    slot->quality_ema = 0.7 * slot->quality_ema + 0.3 * delta;
  }
}

double MultiGranularityEnsemble::QualityFactor(const LongSlot& slot) {
  if (!slot.quality_init) return 1.0;
  // Logistic in the accuracy gap: ~1 when the long model keeps up, decaying
  // quickly once it persistently trails the short model.
  const double f = 2.0 / (1.0 + std::exp(-20.0 * slot.quality_ema));
  return f > 1.0 ? 1.0 : (f < 0.02 ? 0.02 : f);
}

Result<double> MultiGranularityEnsemble::ReplayWindow(
    Model* model, const Batch& window_data) const {
  double loss = 0.0;
  size_t steps = 0;
  for (size_t epoch = 0; epoch < options_.long_epochs; ++epoch) {
    for (size_t begin = 0; begin < window_data.size();
         begin += options_.update_chunk) {
      const size_t end =
          std::min(begin + options_.update_chunk, window_data.size());
      ASSIGN_OR_RETURN(Batch chunk,
                               SliceBatch(window_data, begin, end));
      ASSIGN_OR_RETURN(double chunk_loss,
                               model->TrainBatch(chunk.features,
                                                 chunk.labels));
      loss += chunk_loss;
      ++steps;
    }
  }
  return steps > 0 ? loss / static_cast<double>(steps) : 0.0;
}

Result<MultiGranularityEnsemble::TrainReport> MultiGranularityEnsemble::Train(
    const Batch& batch) {
  if (!batch.labeled()) {
    return Status::InvalidArgument("MultiGranularityEnsemble::Train needs "
                                   "labeled batches");
  }
  TrainReport report;

  // Short granularity: update on every batch (fixed frequency).
  ASSIGN_OR_RETURN(report.short_loss,
                           short_model_->TrainBatch(batch.features,
                                                    batch.labels));

  // Long granularities: feed the ASWs; update on rollover.
  for (size_t i = 0; i < long_.size(); ++i) {
    LongSlot& slot = long_[i];

    // Pre-computing window (Section V-B): fold this batch's gradient into
    // the accumulator as it arrives, so rollover needs only one apply.
    if (options_.use_precompute) {
      if (slot.precompute == nullptr) {
        slot.precompute =
            std::make_unique<PrecomputingWindow>(slot.model.get());
      }
      ASSIGN_OR_RETURN(double subset_loss,
                               slot.precompute->AccumulateSubset(batch));
      (void)subset_loss;
    }

    ASSIGN_OR_RETURN(bool full, slot.window.Add(batch));
    if (!full) continue;
    const double disorder = slot.window.disorder();
    std::vector<double> centroid = slot.window.Centroid();
    ASSIGN_OR_RETURN(Batch window_data,
                             slot.window.TakeTrainingData());

    TrainReport::Rollover rollover;
    rollover.model_index = i;
    rollover.disorder = disorder;
    rollover.window_centroid = std::move(centroid);

    if (options_.use_precompute) {
      // One aggregated step from the pre-accumulated gradients.
      RETURN_IF_ERROR(slot.precompute->ApplyUpdate(
          options_.precompute_learning_rate));
      rollover.long_loss = 0.0;
    } else if (options_.async_long_updates) {
      // Train a clone off-thread; swap it in under the lock when done.
      JoinWorker(&slot);  // At most one pending update per slot.
      rollover.long_loss = slot.last_async_loss;
      std::unique_ptr<Model> trainee;
      {
        std::lock_guard<std::mutex> lock(slot.mutex);
        trainee = slot.model->Clone();
      }
      Model* trainee_raw = trainee.release();
      LongSlot* slot_ptr = &slot;
      const MultiGranularityEnsemble* self = this;
      slot.worker = std::thread([self, slot_ptr, trainee_raw,
                                 data = std::move(window_data)]() {
        std::unique_ptr<Model> owned(trainee_raw);
        Result<double> loss = self->ReplayWindow(owned.get(), data);
        std::lock_guard<std::mutex> lock(slot_ptr->mutex);
        if (loss.ok()) {
          slot_ptr->model = std::move(owned);
          slot_ptr->last_async_loss = loss.value();
        }
      });
    } else {
      ASSIGN_OR_RETURN(rollover.long_loss,
                               ReplayWindow(slot.model.get(), window_data));
    }

    ObserveQuality(&slot, batch, &rollover.short_accuracy,
                   &rollover.long_accuracy);
    report.rollovers.push_back(std::move(rollover));
    ++slot.updates;
  }

  last_train_representation_ = Represent(batch.Mean());
  return report;
}

Result<Matrix> MultiGranularityEnsemble::PredictProba(const Matrix& x) {
  if (x.rows() == 0) {
    return Status::InvalidArgument("PredictProba: empty batch");
  }

  const std::vector<double> rep = Represent(x.ColumnMean());

  last_distances_.clear();
  // D_short (Eq. 12): distance to the previous training batch.
  double d_short = 0.0;
  if (last_train_representation_.has_value() &&
      last_train_representation_->size() == rep.size()) {
    d_short = vec::EuclideanDistance(rep, *last_train_representation_);
  }
  last_distances_.push_back(d_short);

  // D_long per long model (Eq. 13): distance to its ASW centroid.
  for (const LongSlot& slot : long_) {
    std::vector<double> centroid = slot.window.Centroid();
    double d_long = 0.0;
    if (!centroid.empty()) {
      const std::vector<double> centroid_rep = Represent(centroid);
      if (centroid_rep.size() == rep.size()) {
        d_long = vec::EuclideanDistance(rep, centroid_rep);
      }
    }
    last_distances_.push_back(d_long);
  }

  // Update the adaptive bandwidth from the distances just observed.
  double mean_d = 0.0;
  for (double d : last_distances_) mean_d += d;
  mean_d /= static_cast<double>(last_distances_.size());
  if (!distance_ema_init_) {
    distance_ema_ = mean_d > 0.0 ? mean_d : 1.0;
    distance_ema_init_ = true;
  } else {
    distance_ema_ = 0.9 * distance_ema_ + 0.1 * mean_d;
  }

  // Gaussian-kernel weights (Eq. 14). Long models that have never rolled
  // over are still random initialization and get zero weight.
  const double sigma = KernelSigma();
  last_weights_.clear();
  double weight_sum = 0.0;
  for (size_t m = 0; m < last_distances_.size(); ++m) {
    double w = GaussianKernel(last_distances_[m], sigma);
    if (m > 0) {
      if (long_[m - 1].updates == 0) {
        w = 0.0;
      } else {
        w *= QualityFactor(long_[m - 1]);
      }
    }
    last_weights_.push_back(w);
    weight_sum += w;
  }
  if (weight_sum <= 1e-12) {
    // Degenerate weights: fall back to the short model alone.
    for (auto& w : last_weights_) w = 0.0;
    last_weights_[0] = 1.0;
    weight_sum = 1.0;
  }
  for (auto& w : last_weights_) w /= weight_sum;

  // Members contributing < 5% would barely move the blend; zeroing them
  // skips their forward pass entirely (the single-process stand-in for the
  // paper's parallel member inference).
  double kept_sum = 0.0;
  for (auto& w : last_weights_) {
    if (w < 0.05) w = 0.0;
    kept_sum += w;
  }
  for (auto& w : last_weights_) w /= kept_sum;

  // Member forward passes touch disjoint models and only read `x`, so they
  // run in parallel (the paper's parallel member inference). Blending stays
  // serial in member order, so the result is identical at any thread count.
  std::vector<size_t> active;
  active.push_back(0);
  for (size_t i = 0; i < long_.size(); ++i) {
    if (last_weights_[i + 1] != 0.0) active.push_back(i + 1);
  }
  std::vector<Matrix> member_proba(long_.size() + 1);
  std::vector<Status> member_status(long_.size() + 1);
  ParallelFor(0, active.size(), 1, [&](size_t a0, size_t a1) {
    for (size_t a = a0; a < a1; ++a) {
      const size_t m = active[a];
      Result<Matrix> proba = Status::Internal("unreached");
      if (m == 0) {
        proba = short_model_->PredictProba(x);
      } else {
        // The lock pins the member across its forward pass so an async
        // update cannot swap the model out mid-inference (the paper's
        // update atomicity); uncontended in synchronous mode.
        std::lock_guard<std::mutex> lock(long_[m - 1].mutex);
        proba = long_[m - 1].model->PredictProba(x);
      }
      if (proba.ok()) {
        member_proba[m] = std::move(proba).value();
      } else {
        member_status[m] = proba.status();
      }
    }
  });
  for (size_t m : active) RETURN_IF_ERROR(member_status[m]);

  Matrix blended = std::move(member_proba[0]);
  blended.ScaleInPlace(last_weights_[0]);
  for (size_t i = 0; i < long_.size(); ++i) {
    if (last_weights_[i + 1] == 0.0) continue;
    blended.Axpy(last_weights_[i + 1], member_proba[i + 1]);
  }
  return blended;
}


namespace {
constexpr uint32_t kEnsembleTag = 0x454e534d;  // 'ENSM'
}  // namespace

Status MultiGranularityEnsemble::SaveState(SnapshotWriter* writer) {
  // Settle in-flight async updates first so the saved long models are the
  // post-rollover parameters, not a mid-swap clone.
  WaitForAsyncUpdates();
  writer->WriteSection(kEnsembleTag);
  std::vector<char> blob;
  SerializeModel(*short_model_, &blob);
  writer->WriteBlob(blob);
  writer->WriteU64(long_.size());
  for (LongSlot& slot : long_) {
    SerializeModel(*slot.model, &blob);
    writer->WriteBlob(blob);
    slot.window.SaveState(writer);
    writer->WriteBool(slot.precompute != nullptr);
    if (slot.precompute != nullptr) slot.precompute->SaveState(writer);
    writer->WriteU64(slot.updates);
    writer->WriteDouble(slot.last_async_loss);
    writer->WriteDouble(slot.quality_ema);
    writer->WriteBool(slot.quality_init);
  }
  writer->WriteBool(last_train_representation_.has_value());
  if (last_train_representation_.has_value()) {
    writer->WriteDoubleVec(*last_train_representation_);
  }
  writer->WriteDouble(distance_ema_);
  writer->WriteBool(distance_ema_init_);
  return Status::OK();
}

Status MultiGranularityEnsemble::LoadState(SnapshotReader* reader) {
  WaitForAsyncUpdates();
  RETURN_IF_ERROR(reader->ExpectSection(kEnsembleTag));
  std::vector<char> blob;
  RETURN_IF_ERROR(reader->ReadBlob(&blob));
  ASSIGN_OR_RETURN(ModelSnapshot short_snap, DeserializeModel(blob));
  if (short_snap.parameters.size() != short_model_->ParameterCount()) {
    return Status::InvalidArgument(
        "ensemble snapshot: short-model parameter count does not match "
        "this architecture");
  }
  RETURN_IF_ERROR(short_model_->SetParameters(short_snap.parameters));
  uint64_t long_count = 0;
  RETURN_IF_ERROR(reader->ReadU64(&long_count));
  if (long_count != long_.size()) {
    return Status::InvalidArgument(
        "ensemble snapshot: long-model count " + std::to_string(long_count) +
        " does not match the configured " + std::to_string(long_.size()));
  }
  for (LongSlot& slot : long_) {
    RETURN_IF_ERROR(reader->ReadBlob(&blob));
    ASSIGN_OR_RETURN(ModelSnapshot snap, DeserializeModel(blob));
    if (snap.parameters.size() != slot.model->ParameterCount()) {
      return Status::InvalidArgument(
          "ensemble snapshot: long-model parameter count does not match "
          "this architecture");
    }
    RETURN_IF_ERROR(slot.model->SetParameters(snap.parameters));
    RETURN_IF_ERROR(slot.window.LoadState(reader));
    bool has_precompute = false;
    RETURN_IF_ERROR(reader->ReadBool(&has_precompute));
    if (has_precompute) {
      if (slot.precompute == nullptr) {
        slot.precompute =
            std::make_unique<PrecomputingWindow>(slot.model.get());
      }
      RETURN_IF_ERROR(slot.precompute->LoadState(reader));
    } else {
      slot.precompute.reset();
    }
    uint64_t updates = 0;
    RETURN_IF_ERROR(reader->ReadU64(&updates));
    slot.updates = updates;
    RETURN_IF_ERROR(reader->ReadDouble(&slot.last_async_loss));
    RETURN_IF_ERROR(reader->ReadDouble(&slot.quality_ema));
    RETURN_IF_ERROR(reader->ReadBool(&slot.quality_init));
  }
  bool has_last_rep = false;
  RETURN_IF_ERROR(reader->ReadBool(&has_last_rep));
  if (has_last_rep) {
    std::vector<double> rep;
    RETURN_IF_ERROR(reader->ReadDoubleVec(&rep));
    last_train_representation_ = std::move(rep);
  } else {
    last_train_representation_.reset();
  }
  RETURN_IF_ERROR(reader->ReadDouble(&distance_ema_));
  RETURN_IF_ERROR(reader->ReadBool(&distance_ema_init_));
  last_distances_.clear();
  last_weights_.clear();
  return Status::OK();
}

}  // namespace freeway
