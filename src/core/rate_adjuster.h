#ifndef FREEWAYML_CORE_RATE_ADJUSTER_H_
#define FREEWAYML_CORE_RATE_ADJUSTER_H_

#include <cstddef>

namespace freeway {

/// Options for the rate-aware adjuster.
struct RateAdjusterOptions {
  /// Flow rates (batches/sec) below/above which the adjuster reacts.
  double low_rate = 10.0;
  double high_rate = 100.0;
  /// Maximum factor by which inference frequency may be raised when idle.
  double max_inference_boost = 4.0;
  /// Maximum factor applied to the ASW decay under overload (reducing
  /// update frequency / resource competition).
  double max_decay_boost = 3.0;
  /// Window pressure (0..1) above which updates should be throttled.
  double pressure_threshold = 0.8;
  /// EMA smoothing for the observed rate.
  double smoothing = 0.3;
};

/// Decision produced for the current conditions.
struct RateAdjustment {
  /// >= 1: how aggressively to drain pending inference work.
  double inference_frequency_factor = 1.0;
  /// >= 1: multiplier for the training window's decay rates.
  double decay_boost = 1.0;
  /// True when incremental updates should be skipped this tick.
  bool throttle_updates = false;
};

/// Section V-B's rate-aware adjuster: under low flow it raises inference
/// frequency to drain pending data quickly; under high flow it boosts the
/// ASW decay (reducing model-update frequency) so training does not compete
/// with inference for resources. Pure control logic — callers feed observed
/// conditions and apply the returned knobs.
class RateAwareAdjuster {
 public:
  explicit RateAwareAdjuster(const RateAdjusterOptions& options = {});

  /// Feeds one observation: the instantaneous flow rate (batches/sec) and
  /// the training-window fill pressure in [0, 1].
  RateAdjustment Observe(double batches_per_sec, double window_pressure);

  double smoothed_rate() const { return smoothed_rate_; }
  bool initialized() const { return initialized_; }

  /// Reinstalls a previously observed EMA, e.g. from a checkpoint.
  void RestoreState(double smoothed_rate, bool initialized) {
    smoothed_rate_ = smoothed_rate;
    initialized_ = initialized;
  }

 private:
  RateAdjusterOptions options_;
  double smoothed_rate_ = 0.0;
  bool initialized_ = false;
};

}  // namespace freeway

#endif  // FREEWAYML_CORE_RATE_ADJUSTER_H_
