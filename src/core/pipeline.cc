#include "core/pipeline.h"

#include "fault/snapshot.h"

namespace freeway {

StreamPipeline::StreamPipeline(const Model& prototype,
                               const PipelineOptions& options)
    : options_(options),
      learner_(prototype, options.learner),
      adjuster_(options.rate) {}

void StreamPipeline::AttachMetrics(MetricsRegistry* registry) {
  learner_.AttachMetrics(registry);
  if (registry == nullptr) {
    metrics_ = PushMetrics();
    return;
  }
  metrics_.batches_ok =
      registry->GetCounter("freeway_pipeline_batches_total{result=\"ok\"}");
  metrics_.batches_error =
      registry->GetCounter("freeway_pipeline_batches_total{result=\"error\"}");
  metrics_.push_seconds =
      registry->GetHistogram("freeway_pipeline_push_seconds");
}

void StreamPipeline::RecordPush(bool ok, const Stopwatch& watch) {
  if (ok) {
    ++batches_ok_;
    if (metrics_.batches_ok != nullptr) metrics_.batches_ok->Inc();
  } else {
    ++batches_failed_;
    if (metrics_.batches_error != nullptr) metrics_.batches_error->Inc();
  }
  if (metrics_.push_seconds != nullptr) {
    metrics_.push_seconds->Observe(watch.ElapsedSeconds());
  }
}

double StreamPipeline::WindowPressure() const {
  const MultiGranularityEnsemble* ensemble = learner_.ensemble();
  double pressure = 0.0;
  for (size_t i = 0; i < ensemble->num_long_models(); ++i) {
    const AdaptiveStreamingWindow& window = ensemble->window(i);
    const double cap = static_cast<double>(
        learner_.options().granularity.long_window_batches[i]);
    const double fill = cap > 0.0
                            ? static_cast<double>(window.num_batches()) / cap
                            : 0.0;
    if (fill > pressure) pressure = fill;
  }
  return pressure > 1.0 ? 1.0 : pressure;
}

void StreamPipeline::SetExternalRate(double batches_per_sec) {
  external_rate_ = batches_per_sec >= 0.0 ? batches_per_sec : 0.0;
}

void StreamPipeline::Tick() {
  if (!options_.enable_rate_adjuster) return;
  const double elapsed = since_last_batch_.ElapsedSeconds();
  since_last_batch_.Restart();
  double rate;
  if (external_rate_.has_value()) {
    rate = *external_rate_;
    external_rate_.reset();
  } else if (first_tick_) {
    // The stopwatch spans construction → first batch, not an inter-batch
    // gap; observing it would seed the adjuster's EMA with a garbage
    // sample (near-infinite when the first push follows construction
    // immediately) and the first adjustment would over-react. Skip — the
    // EMA seeds with the first *real* inter-batch rate instead.
    first_tick_ = false;
    return;
  } else {
    rate = elapsed > 1e-9 ? 1.0 / elapsed : 1e9;
  }
  first_tick_ = false;
  last_adjustment_ = adjuster_.Observe(rate, WindowPressure());
  learner_.SetWindowDecayBoost(last_adjustment_.decay_boost);
}

Result<std::optional<InferenceReport>> StreamPipeline::Push(
    const Batch& batch) {
  Tick();
  Stopwatch watch;
  if (batch.labeled()) {
    Status trained = learner_.Train(batch);
    RecordPush(trained.ok(), watch);
    RETURN_IF_ERROR(trained);
    return std::optional<InferenceReport>();
  }
  Result<InferenceReport> report = learner_.Infer(batch.features);
  RecordPush(report.ok(), watch);
  RETURN_IF_ERROR(report.status());
  return std::optional<InferenceReport>(std::move(report).value());
}

Result<InferenceReport> StreamPipeline::PushPrequential(const Batch& batch) {
  Tick();
  Stopwatch watch;
  Result<InferenceReport> report = learner_.InferThenTrain(batch);
  RecordPush(report.ok(), watch);
  return report;
}


namespace {
constexpr uint32_t kPipelineTag = 0x50495045;  // 'PIPE'
}  // namespace

Status StreamPipeline::Snapshot(std::vector<char>* out) {
  SnapshotWriter writer;
  writer.WriteSection(kPipelineTag);
  RETURN_IF_ERROR(learner_.SaveState(&writer));
  writer.WriteDouble(adjuster_.smoothed_rate());
  writer.WriteBool(adjuster_.initialized());
  writer.WriteDouble(last_adjustment_.inference_frequency_factor);
  writer.WriteDouble(last_adjustment_.decay_boost);
  writer.WriteBool(last_adjustment_.throttle_updates);
  writer.WriteU64(batches_ok_);
  writer.WriteU64(batches_failed_);
  *out = writer.Take();
  return Status::OK();
}

Status StreamPipeline::Restore(const std::vector<char>& snapshot) {
  SnapshotReader reader(snapshot);
  RETURN_IF_ERROR(reader.ExpectSection(kPipelineTag));
  RETURN_IF_ERROR(learner_.LoadState(&reader));
  double smoothed_rate = 0.0;
  bool initialized = false;
  RETURN_IF_ERROR(reader.ReadDouble(&smoothed_rate));
  RETURN_IF_ERROR(reader.ReadBool(&initialized));
  adjuster_.RestoreState(smoothed_rate, initialized);
  RETURN_IF_ERROR(
      reader.ReadDouble(&last_adjustment_.inference_frequency_factor));
  RETURN_IF_ERROR(reader.ReadDouble(&last_adjustment_.decay_boost));
  RETURN_IF_ERROR(reader.ReadBool(&last_adjustment_.throttle_updates));
  uint64_t ok_count = 0;
  uint64_t failed_count = 0;
  RETURN_IF_ERROR(reader.ReadU64(&ok_count));
  RETURN_IF_ERROR(reader.ReadU64(&failed_count));
  RETURN_IF_ERROR(reader.ExpectEnd());
  batches_ok_ = ok_count;
  batches_failed_ = failed_count;
  // The stopwatch now spans restore → next push, which is not an
  // inter-batch gap; treat the next push like the first.
  first_tick_ = true;
  external_rate_.reset();
  since_last_batch_.Restart();
  learner_.SetWindowDecayBoost(last_adjustment_.decay_boost);
  return Status::OK();
}

}  // namespace freeway
