#include "core/shift_detector.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "fault/snapshot.h"

namespace freeway {

const char* ShiftPatternName(ShiftPattern pattern) {
  switch (pattern) {
    case ShiftPattern::kSlight:
      return "slight";
    case ShiftPattern::kSudden:
      return "sudden";
    case ShiftPattern::kReoccurring:
      return "reoccurring";
  }
  return "?";
}

ShiftDetector::ShiftDetector(const ShiftDetectorOptions& options)
    : options_(options) {
  FREEWAY_DCHECK(options_.pca_components >= 1);
  FREEWAY_DCHECK(options_.warmup_batches >= 1);
  FREEWAY_DCHECK(options_.history_k >= 2);
}

void ShiftDetector::SeverityStats(double* mu_d, double* sigma_d) const {
  // Weighted mean with geometric recency weights (Eq. 8); the unweighted
  // spread around it (Eq. 9).
  double weight_sum = 0.0;
  double weighted = 0.0;
  double w = 1.0;
  for (auto it = distances_.rbegin(); it != distances_.rend(); ++it) {
    weighted += w * (*it);
    weight_sum += w;
    w *= options_.recency_decay;
  }
  *mu_d = weight_sum > 0.0 ? weighted / weight_sum : 0.0;

  double var = 0.0;
  for (double d : distances_) {
    const double delta = d - *mu_d;
    var += delta * delta;
  }
  *sigma_d = distances_.empty()
                 ? 0.0
                 : std::sqrt(var / static_cast<double>(distances_.size()));
}

Result<ShiftAssessment> ShiftDetector::Assess(const Matrix& features) {
  if (features.rows() == 0) {
    return Status::InvalidArgument("ShiftDetector::Assess: empty batch");
  }
  if (!features.AllFinite()) {
    return Status::InvalidArgument(
        "ShiftDetector::Assess: batch contains NaN or infinite values");
  }

  ShiftAssessment out;

  if (!pca_.fitted()) {
    // Accumulate warm-up rows; fit once enough batches arrived (Eqs. 2-5).
    for (size_t i = 0; i < features.rows(); ++i) {
      warmup_rows_.push_back(features.RowVector(i));
    }
    ++warmup_batches_seen_;
    if (warmup_batches_seen_ < options_.warmup_batches) {
      out.warmup = true;
      return out;
    }
    const size_t dim = features.cols();
    const size_t components =
        options_.pca_components < dim ? options_.pca_components : dim;
    Matrix sample(warmup_rows_.size(), dim);
    for (size_t i = 0; i < warmup_rows_.size(); ++i) {
      sample.SetRow(i, warmup_rows_[i]);
    }
    RETURN_IF_ERROR(pca_.Fit(sample, components));
    warmup_rows_.clear();
    warmup_rows_.shrink_to_fit();
    out.warmup = true;
    // The final warm-up batch seeds the history so the first live batch has
    // a predecessor for d_t.
    ASSIGN_OR_RETURN(std::vector<double> seed_rep,
                             pca_.TransformBatchMean(features));
    history_.push_back(seed_rep);
    previous_representation_ = std::move(seed_rep);
    return out;
  }

  ASSIGN_OR_RETURN(out.representation,
                           pca_.TransformBatchMean(features));

  // d_t (Eq. 7).
  FREEWAY_DCHECK(previous_representation_.has_value());
  out.distance =
      vec::EuclideanDistance(out.representation, *previous_representation_);

  // Severity (Eqs. 8-10). Until enough history exists, every shift is
  // treated as slight.
  if (distances_.size() >= 2) {
    SeverityStats(&out.mu_d, &out.sigma_d);
    if (out.sigma_d > 1e-12) {
      out.m_score = (out.distance - out.mu_d) / out.sigma_d;
    } else {
      // Degenerate history (all past shifts identical): any appreciably
      // larger shift is severe.
      out.m_score = out.distance > out.mu_d * 1.5 + 1e-12
                        ? options_.alpha + 1.0
                        : 0.0;
    }
  }

  // d_h: nearest non-adjacent historical representation.
  out.d_h = std::numeric_limits<double>::infinity();
  if (history_.size() > options_.exclude_recent) {
    const size_t usable = history_.size() - options_.exclude_recent;
    for (size_t i = 0; i < usable; ++i) {
      const double d = vec::EuclideanDistance(out.representation, history_[i]);
      if (d < out.d_h) out.d_h = d;
    }
  }

  if (out.m_score > options_.alpha) {
    out.pattern = out.d_h < options_.reoccur_margin * out.distance
                      ? ShiftPattern::kReoccurring
                      : ShiftPattern::kSudden;
  } else {
    out.pattern = ShiftPattern::kSlight;
  }

  // Commit this batch to history.
  distances_.push_back(out.distance);
  while (distances_.size() > options_.history_k) distances_.pop_front();
  history_.push_back(out.representation);
  while (history_.size() > options_.max_history) history_.pop_front();
  previous_representation_ = out.representation;

  return out;
}


namespace {
constexpr uint32_t kShiftDetectorTag = 0x53484654;  // 'SHFT'
}  // namespace

void ShiftDetector::SaveState(SnapshotWriter* writer) const {
  writer->WriteSection(kShiftDetectorTag);
  writer->WriteBool(pca_.fitted());
  writer->WriteDoubleVec(pca_.mean());
  writer->WriteMatrix(pca_.components());
  writer->WriteDouble(pca_.ExplainedVarianceRatio());
  writer->WriteU64(warmup_rows_.size());
  for (const auto& row : warmup_rows_) writer->WriteDoubleVec(row);
  writer->WriteU64(warmup_batches_seen_);
  writer->WriteU64(history_.size());
  for (const auto& rep : history_) writer->WriteDoubleVec(rep);
  writer->WriteDoubleVec(
      std::vector<double>(distances_.begin(), distances_.end()));
  writer->WriteBool(previous_representation_.has_value());
  if (previous_representation_.has_value()) {
    writer->WriteDoubleVec(*previous_representation_);
  }
}

Status ShiftDetector::LoadState(SnapshotReader* reader) {
  RETURN_IF_ERROR(reader->ExpectSection(kShiftDetectorTag));
  bool fitted = false;
  std::vector<double> mean;
  Matrix components;
  double explained = 0.0;
  RETURN_IF_ERROR(reader->ReadBool(&fitted));
  RETURN_IF_ERROR(reader->ReadDoubleVec(&mean));
  RETURN_IF_ERROR(reader->ReadMatrix(&components));
  RETURN_IF_ERROR(reader->ReadDouble(&explained));
  RETURN_IF_ERROR(
      pca_.SetState(std::move(mean), std::move(components), explained,
                    fitted));
  uint64_t count = 0;
  RETURN_IF_ERROR(reader->ReadU64(&count));
  warmup_rows_.clear();
  for (uint64_t i = 0; i < count; ++i) {
    std::vector<double> row;
    RETURN_IF_ERROR(reader->ReadDoubleVec(&row));
    warmup_rows_.push_back(std::move(row));
  }
  uint64_t seen = 0;
  RETURN_IF_ERROR(reader->ReadU64(&seen));
  warmup_batches_seen_ = seen;
  RETURN_IF_ERROR(reader->ReadU64(&count));
  history_.clear();
  for (uint64_t i = 0; i < count; ++i) {
    std::vector<double> rep;
    RETURN_IF_ERROR(reader->ReadDoubleVec(&rep));
    history_.push_back(std::move(rep));
  }
  std::vector<double> distances;
  RETURN_IF_ERROR(reader->ReadDoubleVec(&distances));
  distances_.assign(distances.begin(), distances.end());
  bool has_previous = false;
  RETURN_IF_ERROR(reader->ReadBool(&has_previous));
  if (has_previous) {
    std::vector<double> rep;
    RETURN_IF_ERROR(reader->ReadDoubleVec(&rep));
    previous_representation_ = std::move(rep);
  } else {
    previous_representation_.reset();
  }
  return Status::OK();
}

}  // namespace freeway
