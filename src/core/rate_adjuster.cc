#include "core/rate_adjuster.h"

#include <algorithm>

namespace freeway {

RateAwareAdjuster::RateAwareAdjuster(const RateAdjusterOptions& options)
    : options_(options) {}

RateAdjustment RateAwareAdjuster::Observe(double batches_per_sec,
                                          double window_pressure) {
  if (batches_per_sec < 0.0) batches_per_sec = 0.0;
  window_pressure = std::clamp(window_pressure, 0.0, 1.0);

  if (!initialized_) {
    smoothed_rate_ = batches_per_sec;
    initialized_ = true;
  } else {
    smoothed_rate_ = (1.0 - options_.smoothing) * smoothed_rate_ +
                     options_.smoothing * batches_per_sec;
  }

  RateAdjustment out;
  if (smoothed_rate_ <= options_.low_rate) {
    // Idle stream: drain pending inference faster, proportionally to how
    // far below the low watermark we are and how empty the window is.
    const double idle =
        options_.low_rate > 0.0
            ? 1.0 - smoothed_rate_ / options_.low_rate
            : 1.0;
    out.inference_frequency_factor =
        1.0 + idle * (1.0 - window_pressure) *
                  (options_.max_inference_boost - 1.0);
  } else if (smoothed_rate_ >= options_.high_rate) {
    // Overload: decay the training window faster so updates happen less
    // often and stop competing with inference.
    const double overload =
        std::min(smoothed_rate_ / options_.high_rate - 1.0, 1.0);
    out.decay_boost = 1.0 + overload * (options_.max_decay_boost - 1.0);
    out.throttle_updates = window_pressure > options_.pressure_threshold;
  }
  return out;
}

}  // namespace freeway
