#include "core/disorder.h"

namespace freeway {
namespace {

/// Merge-sort counting inversions between and within halves.
size_t MergeCount(std::vector<double>& values, std::vector<double>& scratch,
                  size_t lo, size_t hi) {
  if (hi - lo <= 1) return 0;
  const size_t mid = lo + (hi - lo) / 2;
  size_t count = MergeCount(values, scratch, lo, mid) +
                 MergeCount(values, scratch, mid, hi);
  size_t i = lo, j = mid, k = lo;
  while (i < mid && j < hi) {
    if (values[i] <= values[j]) {
      scratch[k++] = values[i++];
    } else {
      // values[i..mid) all exceed values[j]: mid - i inversions.
      count += mid - i;
      scratch[k++] = values[j++];
    }
  }
  while (i < mid) scratch[k++] = values[i++];
  while (j < hi) scratch[k++] = values[j++];
  for (size_t t = lo; t < hi; ++t) values[t] = scratch[t];
  return count;
}

}  // namespace

size_t InversionCount(std::vector<double> values) {
  std::vector<double> scratch(values.size());
  return MergeCount(values, scratch, 0, values.size());
}

double NormalizedDisorder(const std::vector<double>& values) {
  const size_t n = values.size();
  if (n < 2) return 0.0;
  const double max_inversions = static_cast<double>(n) *
                                static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(InversionCount(values)) / max_inversions;
}

}  // namespace freeway
