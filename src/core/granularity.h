#ifndef FREEWAYML_CORE_GRANULARITY_H_
#define FREEWAYML_CORE_GRANULARITY_H_

#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/adaptive_window.h"
#include "core/precompute.h"
#include "linalg/pca.h"
#include "ml/model.h"
#include "stream/batch.h"

namespace freeway {

class SnapshotReader;
class SnapshotWriter;

/// Configuration of the multi-time-granularity ensemble.
struct MultiGranularityOptions {
  /// ASW window caps for each long-granularity model; one long model per
  /// entry (the paper defaults to two models total: one short + one long).
  std::vector<size_t> long_window_batches = {8};
  /// Remaining ASW tuning shared by all long windows.
  AdaptiveWindowOptions window;
  /// Gaussian-kernel bandwidth for the ensemble weights (Eq. 14);
  /// 0 = adaptive (exponential moving average of observed distances).
  double kernel_sigma = 0.0;
  /// Multiplier on the adaptive bandwidth. Below 1 sharpens the kernel:
  /// under directional drift the lagging long model's weight collapses
  /// toward 0, while under localized jitter (members equidistant) weights
  /// stay balanced — exactly the A1/A2 behaviour Section IV-B wants.
  double kernel_sigma_factor = 0.5;
  /// Mini-batch chunk size when replaying a full window into the long model.
  size_t update_chunk = 256;
  /// Passes over the window data per long-model update.
  size_t long_epochs = 2;
  /// Section V-B's pre-computing window: when true, each arriving batch's
  /// gradient is computed immediately and accumulated, and a rollover
  /// applies one aggregated step instead of replaying the whole window.
  /// Cuts rollover latency sharply; the aggregated step is a first-order
  /// approximation of the replay (gradients are all taken at pre-update
  /// parameters), so accuracy can differ slightly.
  bool use_precompute = false;
  /// Learning rate of the aggregated pre-computed step.
  double precompute_learning_rate = 0.2;
  /// Section V-A1's asynchronous update architecture (scaled from the
  /// paper's multi-process design to a background thread): a rollover
  /// trains a *clone* of the long model off-thread and atomically swaps it
  /// in under a lock, so inference never blocks on a window replay. The
  /// rollover report then carries the loss of the *previous* async update
  /// (0 for the first).
  bool async_long_updates = false;
};

/// Section IV-B: a short-time-granularity model updated on every batch plus
/// long-time-granularity model(s) updated when their adaptive streaming
/// windows fill. Inference blends member probability outputs with Gaussian-
/// kernel weights of each member's distance to the current batch (Eqs.
/// 12–14): D_short is the distance to the previous training batch, D_long
/// the distance to the ASW centroid.
class MultiGranularityEnsemble {
 public:
  ~MultiGranularityEnsemble();

  /// `prototype` seeds every member model (cloned). If `projector` is
  /// non-null (typically the shift detector's PCA), distances are measured
  /// in the projected space, matching the paper's y_bar representation;
  /// otherwise raw feature-mean space is used.
  MultiGranularityEnsemble(const Model& prototype,
                           const MultiGranularityOptions& options,
                           const Pca* projector = nullptr);

  /// Report of one training step.
  struct TrainReport {
    double short_loss = 0.0;
    /// Long models that rolled over on this batch (indices into
    /// long-model list), with the window disorder at rollover — the input
    /// to disorder-gated knowledge preservation.
    struct Rollover {
      size_t model_index = 0;
      double disorder = 0.0;
      double long_loss = 0.0;
      /// Raw-space ASW centroid captured just before the window was drained
      /// — the distribution representation d_i the updated long model
      /// corresponds to (knowledge preservation key).
      std::vector<double> window_centroid;
      /// Accuracies of the two granularities on the rollover batch —
      /// quality labels for preserved knowledge (negative when the
      /// measurement failed).
      double short_accuracy = -1.0;
      double long_accuracy = -1.0;
    };
    std::vector<Rollover> rollovers;
  };

  /// Incrementally updates all granularities on a labeled batch.
  Result<TrainReport> Train(const Batch& batch);

  /// Kernel-weighted ensemble probabilities for `x` (Eq. 14).
  Result<Matrix> PredictProba(const Matrix& x);

  Model* short_model() { return short_model_.get(); }
  const Model* short_model() const { return short_model_.get(); }
  size_t num_long_models() const { return long_.size(); }
  Model* long_model(size_t i) { return long_[i].model.get(); }
  /// Thread-safe parameter snapshot of long model `i` (synchronizes with
  /// any in-flight async update).
  std::vector<double> LongModelParameters(size_t i);
  /// Blocks until all in-flight async long-model updates have landed.
  void WaitForAsyncUpdates();
  const AdaptiveStreamingWindow& window(size_t i) const {
    return long_[i].window;
  }
  AdaptiveStreamingWindow* mutable_window(size_t i) {
    return &long_[i].window;
  }

  /// Distances computed by the last PredictProba call, short first.
  const std::vector<double>& last_distances() const {
    return last_distances_;
  }
  /// Ensemble weights from the last PredictProba call, short first.
  const std::vector<double>& last_weights() const { return last_weights_; }

  /// Serializes every member model (via ml/serialize, so restores go
  /// through the hardened snapshot validation), the ASWs, the precompute
  /// accumulators, and the kernel statistics. Joins in-flight async
  /// updates first so the saved parameters are the settled ones. Restore
  /// into an ensemble built from the same prototype and options.
  Status SaveState(SnapshotWriter* writer);
  Status LoadState(SnapshotReader* reader);

 private:
  struct LongSlot {
    std::unique_ptr<Model> model;
    AdaptiveStreamingWindow window;
    /// Incremental gradient accumulator when use_precompute is on.
    std::unique_ptr<PrecomputingWindow> precompute;
    /// Rollover updates applied so far; a never-updated long model is
    /// excluded from the ensemble (it is still random initialization).
    size_t updates = 0;
    /// Async-update machinery: `worker` trains a clone off-thread, then
    /// swaps it into `model` under `mutex` (which inference also holds
    /// while running the member forward pass).
    std::mutex mutex;
    std::thread worker;
    double last_async_loss = 0.0;
    /// EMA of (long accuracy - short accuracy) measured on rollover batches;
    /// scales this member's ensemble weight so a persistently weaker long
    /// model (e.g. a slow-learning CNN) cannot drag the blend down.
    double quality_ema = 0.0;
    bool quality_init = false;
    LongSlot(std::unique_ptr<Model> m, const AdaptiveWindowOptions& opts)
        : model(std::move(m)), window(opts) {}
  };

  /// Projects a raw feature-space mean if a projector is configured.
  std::vector<double> Represent(const std::vector<double>& mean) const;
  double KernelSigma() const;
  /// Replays `window_data` into `model` (chunked SGD, long_epochs passes);
  /// returns the mean chunk loss.
  Result<double> ReplayWindow(Model* model, const Batch& window_data) const;
  /// Blocks until slot i's pending async update (if any) has been swapped
  /// in.
  void JoinWorker(LongSlot* slot);
  /// Updates the slot's quality EMA from accuracies on `batch`; outputs the
  /// measured accuracies (or -1 on failure).
  void ObserveQuality(LongSlot* slot, const Batch& batch, double* short_acc,
                      double* long_acc);
  /// Weight multiplier derived from the quality EMA, in (0, 1].
  static double QualityFactor(const LongSlot& slot);

  MultiGranularityOptions options_;
  const Pca* projector_;

  std::unique_ptr<Model> short_model_;
  std::deque<LongSlot> long_;

  /// Representation of the last training batch (for D_short).
  std::optional<std::vector<double>> last_train_representation_;
  /// EMA of observed distances for the adaptive kernel bandwidth.
  double distance_ema_ = 0.0;
  bool distance_ema_init_ = false;

  std::vector<double> last_distances_;
  std::vector<double> last_weights_;
};

}  // namespace freeway

#endif  // FREEWAYML_CORE_GRANULARITY_H_
