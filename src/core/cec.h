#ifndef FREEWAYML_CORE_CEC_H_
#define FREEWAYML_CORE_CEC_H_

#include <vector>

#include <memory>

#include "clustering/kmeans.h"
#include "core/exp_buffer.h"
#include "linalg/matrix.h"
#include "ml/feature_extractor.h"

namespace freeway {

/// Configuration of coherent experience clustering.
struct CecOptions {
  KMeansOptions kmeans;
  /// Additive (Laplace) smoothing on each cluster's label histogram when
  /// deriving class probabilities.
  double label_smoothing = 0.1;
  /// Clusters used = clusters_per_class * num_classes (clamped to the point
  /// count). The paper clusters into c = #labels groups; over-clustering and
  /// majority-mapping each fragment improves purity when classes overlap,
  /// at unchanged asymptotic cost.
  size_t clusters_per_class = 2;
  /// Optional fixed feature extractor applied to both the query batch and
  /// the experience before clustering. The paper places a frozen VGG-16
  /// ahead of CEC on image streams; this is its random-projection stand-in.
  /// Null clusters the raw feature rows.
  std::shared_ptr<const RandomProjectionExtractor> extractor;
};

/// Output of one CEC prediction.
struct CecPrediction {
  /// Predicted class per row of the query batch.
  std::vector<int> labels;
  /// Soft class distribution per row: the (smoothed) label histogram of the
  /// row's cluster among labeled experience members.
  Matrix proba;
  /// Clusters that contained no labeled member and inherited the label
  /// distribution of their nearest labeled cluster.
  size_t unlabeled_clusters = 0;
  /// Fraction of labeled experience members whose cluster's majority label
  /// matches their own label — how well cluster structure aligns with class
  /// structure here. Low purity means clustering cannot recover the labels
  /// (the failure mode the paper's limitations section describes), and the
  /// strategy selector falls back to the ensemble.
  double experience_purity = 0.0;
  /// Fraction of query rows whose cluster contains at least one labeled
  /// experience member. Low coverage means the new distribution has not yet
  /// spilled into the experience (CEC's continuity hypothesis failed for
  /// this batch) and inherited labels are guesses.
  double query_coverage = 0.0;
};

/// Section IV-C: when a sudden shift makes pre-trained models unusable,
/// cluster the current batch *together with* the most recent labeled
/// experience (whose distribution, by stream continuity, overlaps the new
/// one), then map each cluster to the majority label of its experienced
/// members. Clusters with no labeled member inherit from the nearest
/// labeled cluster.
class CoherentExperienceClustering {
 public:
  explicit CoherentExperienceClustering(const CecOptions& options = {});

  /// Predicts labels for `query` (rows = samples) using the labeled
  /// `experience`. `num_classes` fixes both the cluster count c and the
  /// width of the probability rows. Fails if experience is empty, dimensions
  /// mismatch, or there are fewer total points than clusters.
  Result<CecPrediction> Predict(const Matrix& query, const Batch& experience,
                                size_t num_classes) const;

 private:
  CecOptions options_;
};

}  // namespace freeway

#endif  // FREEWAYML_CORE_CEC_H_
