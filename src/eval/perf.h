#ifndef FREEWAYML_EVAL_PERF_H_
#define FREEWAYML_EVAL_PERF_H_

#include <cstddef>

#include "baselines/streaming_learner.h"
#include "runtime/stream_runtime.h"
#include "stream/batch.h"

namespace freeway {

/// Latency measurement for one system / batch size.
struct LatencyResult {
  /// Mean per-batch inference latency in microseconds.
  double infer_micros = 0.0;
  /// Mean per-batch update latency in microseconds.
  double update_micros = 0.0;
};

/// Options for the performance harness.
struct PerfOptions {
  size_t batch_size = 1024;
  /// Measured batches (after warm-up).
  size_t measure_batches = 20;
  /// Unmeasured batches processed first (cache/JIT-ish warm-up and model
  /// break-in).
  size_t warmup_batches = 5;
};

/// Measures mean inference and update latency per batch: the paper's
/// "first infer and then train" protocol (Table III / Table VI).
Result<LatencyResult> MeasureLatency(StreamingLearner* learner,
                                     StreamSource* source,
                                     const PerfOptions& options);

/// Measures end-to-end throughput in records/second over infer+train cycles
/// (Fig 10).
Result<double> MeasureThroughput(StreamingLearner* learner,
                                 StreamSource* source,
                                 const PerfOptions& options);

/// Options for the multi-stream runtime throughput experiment.
struct MultiStreamPerfOptions {
  size_t num_streams = 8;
  size_t batches_per_stream = 24;
  size_t batch_size = 256;
  /// Every Nth batch is stripped of labels (pure inference traffic); 0
  /// keeps all batches labeled.
  size_t unlabeled_every = 3;
  /// Runtime configuration used for the concurrent leg; `num_shards` is
  /// overridden to `num_streams`.
  RuntimeOptions runtime;
  uint64_t seed = 1234;
  /// When non-null, both legs run instrumented: the sequential pipelines
  /// attach to this registry directly and the concurrent leg's runtime gets
  /// it via RuntimeOptions::metrics. Lets the bench quantify instrumented
  /// vs detached overhead with otherwise identical schedules.
  MetricsRegistry* metrics = nullptr;
};

/// Outcome of the sequential-vs-runtime comparison.
struct MultiStreamThroughput {
  /// Aggregate batches/sec over N independent StreamPipeline::Push loops
  /// run back-to-back on the calling thread.
  double sequential_batches_per_sec = 0.0;
  /// Aggregate batches/sec with N producer threads submitting into an
  /// N-shard StreamRuntime (measured from first Submit to Flush-complete).
  double runtime_batches_per_sec = 0.0;
  double speedup = 0.0;
  size_t total_batches = 0;
  size_t total_records = 0;
  /// Runtime stats captured after the concurrent leg flushed.
  RuntimeStatsSnapshot runtime_stats;
};

/// Multi-stream throughput experiment: the same per-stream batch schedule
/// (pre-generated Hyperplane streams with mixed labeled/unlabeled traffic)
/// is pushed through (a) N sequential single-stream pipelines and (b) an
/// N-shard StreamRuntime fed by N producer threads. Wall-clock speedup
/// tracks the host's core count; the per-stream learning trajectory is
/// identical in both legs because shards process their batches in
/// submission order.
Result<MultiStreamThroughput> MeasureMultiStreamThroughput(
    const Model& prototype, const MultiStreamPerfOptions& options);

}  // namespace freeway

#endif  // FREEWAYML_EVAL_PERF_H_
