#ifndef FREEWAYML_EVAL_PERF_H_
#define FREEWAYML_EVAL_PERF_H_

#include <cstddef>

#include "baselines/streaming_learner.h"
#include "stream/batch.h"

namespace freeway {

/// Latency measurement for one system / batch size.
struct LatencyResult {
  /// Mean per-batch inference latency in microseconds.
  double infer_micros = 0.0;
  /// Mean per-batch update latency in microseconds.
  double update_micros = 0.0;
};

/// Options for the performance harness.
struct PerfOptions {
  size_t batch_size = 1024;
  /// Measured batches (after warm-up).
  size_t measure_batches = 20;
  /// Unmeasured batches processed first (cache/JIT-ish warm-up and model
  /// break-in).
  size_t warmup_batches = 5;
};

/// Measures mean inference and update latency per batch: the paper's
/// "first infer and then train" protocol (Table III / Table VI).
Result<LatencyResult> MeasureLatency(StreamingLearner* learner,
                                     StreamSource* source,
                                     const PerfOptions& options);

/// Measures end-to-end throughput in records/second over infer+train cycles
/// (Fig 10).
Result<double> MeasureThroughput(StreamingLearner* learner,
                                 StreamSource* source,
                                 const PerfOptions& options);

}  // namespace freeway

#endif  // FREEWAYML_EVAL_PERF_H_
