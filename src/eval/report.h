#ifndef FREEWAYML_EVAL_REPORT_H_
#define FREEWAYML_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace freeway {

/// Fixed-width ASCII table writer for the benchmark harnesses: each bench
/// binary prints the same rows its paper table reports.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header rule and column padding.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints aligned per-batch series (the textual equivalent of the paper's
/// accuracy figures): one row per batch index, one column per named series.
/// Series may have different lengths; missing cells print as "-".
class SeriesPrinter {
 public:
  /// `index_header` labels the first column, e.g. "batch".
  explicit SeriesPrinter(std::string index_header = "batch");

  void AddSeries(std::string name, std::vector<double> values);

  std::string ToString(int value_digits = 4) const;
  void Print(int value_digits = 4) const;

 private:
  std::string index_header_;
  std::vector<std::string> names_;
  std::vector<std::vector<double>> series_;
};

}  // namespace freeway

#endif  // FREEWAYML_EVAL_REPORT_H_
