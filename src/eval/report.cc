#include "eval/report.h"

#include <cstdio>

#include "common/logging.h"
#include "common/strings.h"

namespace freeway {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  FREEWAY_DCHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += c == 0 ? "| " : " | ";
      out += PadRight(row[c], widths[c]);
    }
    out += " |\n";
  };
  append_row(headers_);
  out += "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    out += std::string(widths[c] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const auto& row : rows_) append_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

SeriesPrinter::SeriesPrinter(std::string index_header)
    : index_header_(std::move(index_header)) {}

void SeriesPrinter::AddSeries(std::string name, std::vector<double> values) {
  names_.push_back(std::move(name));
  series_.push_back(std::move(values));
}

std::string SeriesPrinter::ToString(int value_digits) const {
  size_t max_len = 0;
  for (const auto& s : series_) {
    if (s.size() > max_len) max_len = s.size();
  }

  std::string out = index_header_;
  for (const auto& name : names_) {
    out += ",";
    out += name;
  }
  out += "\n";
  for (size_t i = 0; i < max_len; ++i) {
    out += std::to_string(i);
    for (const auto& s : series_) {
      out += ",";
      out += i < s.size() ? FormatDouble(s[i], value_digits) : "-";
    }
    out += "\n";
  }
  return out;
}

void SeriesPrinter::Print(int value_digits) const {
  std::fputs(ToString(value_digits).c_str(), stdout);
}

}  // namespace freeway
