#include "eval/perf.h"

#include "common/stopwatch.h"

namespace freeway {

Result<LatencyResult> MeasureLatency(StreamingLearner* learner,
                                     StreamSource* source,
                                     const PerfOptions& options) {
  if (learner == nullptr || source == nullptr) {
    return Status::InvalidArgument("MeasureLatency: null learner or source");
  }

  for (size_t b = 0; b < options.warmup_batches; ++b) {
    FREEWAY_ASSIGN_OR_RETURN(Batch batch,
                             source->NextBatch(options.batch_size));
    FREEWAY_ASSIGN_OR_RETURN(std::vector<int> ignored,
                             learner->PrequentialStep(batch));
    (void)ignored;
  }

  LatencyResult out;
  Stopwatch watch;
  for (size_t b = 0; b < options.measure_batches; ++b) {
    FREEWAY_ASSIGN_OR_RETURN(Batch batch,
                             source->NextBatch(options.batch_size));

    watch.Restart();
    FREEWAY_ASSIGN_OR_RETURN(Matrix proba,
                             learner->PredictProba(batch.features));
    out.infer_micros += static_cast<double>(watch.ElapsedMicros());
    (void)proba;

    watch.Restart();
    FREEWAY_RETURN_NOT_OK(learner->Train(batch));
    out.update_micros += static_cast<double>(watch.ElapsedMicros());
  }
  out.infer_micros /= static_cast<double>(options.measure_batches);
  out.update_micros /= static_cast<double>(options.measure_batches);
  return out;
}

Result<double> MeasureThroughput(StreamingLearner* learner,
                                 StreamSource* source,
                                 const PerfOptions& options) {
  if (learner == nullptr || source == nullptr) {
    return Status::InvalidArgument("MeasureThroughput: null learner or source");
  }

  // Pre-generate batches so generation cost stays out of the measurement.
  std::vector<Batch> warmup;
  std::vector<Batch> measured;
  for (size_t b = 0; b < options.warmup_batches; ++b) {
    FREEWAY_ASSIGN_OR_RETURN(Batch batch,
                             source->NextBatch(options.batch_size));
    warmup.push_back(std::move(batch));
  }
  for (size_t b = 0; b < options.measure_batches; ++b) {
    FREEWAY_ASSIGN_OR_RETURN(Batch batch,
                             source->NextBatch(options.batch_size));
    measured.push_back(std::move(batch));
  }

  for (const Batch& batch : warmup) {
    FREEWAY_ASSIGN_OR_RETURN(std::vector<int> ignored,
                             learner->PrequentialStep(batch));
    (void)ignored;
  }

  Stopwatch watch;
  size_t records = 0;
  for (const Batch& batch : measured) {
    FREEWAY_ASSIGN_OR_RETURN(std::vector<int> ignored,
                             learner->PrequentialStep(batch));
    (void)ignored;
    records += batch.size();
  }
  const double seconds = watch.ElapsedSeconds();
  if (seconds <= 0.0) {
    return Status::Internal("MeasureThroughput: zero elapsed time");
  }
  return static_cast<double>(records) / seconds;
}

}  // namespace freeway
