#include "eval/perf.h"

#include <thread>

#include "common/stopwatch.h"
#include "core/pipeline.h"
#include "data/synthetic.h"

namespace freeway {

Result<LatencyResult> MeasureLatency(StreamingLearner* learner,
                                     StreamSource* source,
                                     const PerfOptions& options) {
  if (learner == nullptr || source == nullptr) {
    return Status::InvalidArgument("MeasureLatency: null learner or source");
  }

  for (size_t b = 0; b < options.warmup_batches; ++b) {
    FREEWAY_ASSIGN_OR_RETURN(Batch batch,
                             source->NextBatch(options.batch_size));
    FREEWAY_ASSIGN_OR_RETURN(std::vector<int> ignored,
                             learner->PrequentialStep(batch));
    (void)ignored;
  }

  LatencyResult out;
  Stopwatch watch;
  for (size_t b = 0; b < options.measure_batches; ++b) {
    FREEWAY_ASSIGN_OR_RETURN(Batch batch,
                             source->NextBatch(options.batch_size));

    watch.Restart();
    FREEWAY_ASSIGN_OR_RETURN(Matrix proba,
                             learner->PredictProba(batch.features));
    out.infer_micros += static_cast<double>(watch.ElapsedMicros());
    (void)proba;

    watch.Restart();
    FREEWAY_RETURN_NOT_OK(learner->Train(batch));
    out.update_micros += static_cast<double>(watch.ElapsedMicros());
  }
  out.infer_micros /= static_cast<double>(options.measure_batches);
  out.update_micros /= static_cast<double>(options.measure_batches);
  return out;
}

Result<double> MeasureThroughput(StreamingLearner* learner,
                                 StreamSource* source,
                                 const PerfOptions& options) {
  if (learner == nullptr || source == nullptr) {
    return Status::InvalidArgument("MeasureThroughput: null learner or source");
  }

  // Pre-generate batches so generation cost stays out of the measurement.
  std::vector<Batch> warmup;
  std::vector<Batch> measured;
  for (size_t b = 0; b < options.warmup_batches; ++b) {
    FREEWAY_ASSIGN_OR_RETURN(Batch batch,
                             source->NextBatch(options.batch_size));
    warmup.push_back(std::move(batch));
  }
  for (size_t b = 0; b < options.measure_batches; ++b) {
    FREEWAY_ASSIGN_OR_RETURN(Batch batch,
                             source->NextBatch(options.batch_size));
    measured.push_back(std::move(batch));
  }

  for (const Batch& batch : warmup) {
    FREEWAY_ASSIGN_OR_RETURN(std::vector<int> ignored,
                             learner->PrequentialStep(batch));
    (void)ignored;
  }

  Stopwatch watch;
  size_t records = 0;
  for (const Batch& batch : measured) {
    FREEWAY_ASSIGN_OR_RETURN(std::vector<int> ignored,
                             learner->PrequentialStep(batch));
    (void)ignored;
    records += batch.size();
  }
  const double seconds = watch.ElapsedSeconds();
  if (seconds <= 0.0) {
    return Status::Internal("MeasureThroughput: zero elapsed time");
  }
  return static_cast<double>(records) / seconds;
}

Result<MultiStreamThroughput> MeasureMultiStreamThroughput(
    const Model& prototype, const MultiStreamPerfOptions& options) {
  if (options.num_streams == 0 || options.batches_per_stream == 0) {
    return Status::InvalidArgument(
        "MeasureMultiStreamThroughput: need >= 1 stream and >= 1 batch");
  }

  // Pre-generate every stream's schedule so data generation stays out of
  // both measurements. Distinct seeds give each stream its own drift
  // trajectory; every `unlabeled_every`-th batch becomes inference traffic.
  std::vector<std::vector<Batch>> streams(options.num_streams);
  for (size_t s = 0; s < options.num_streams; ++s) {
    HyperplaneOptions hyper;
    hyper.seed = options.seed + 17 * s;
    HyperplaneSource source(hyper);
    FREEWAY_ASSIGN_OR_RETURN(
        streams[s],
        TakeBatches(&source, options.batches_per_stream, options.batch_size));
    if (options.unlabeled_every > 0) {
      for (size_t b = 0; b < streams[s].size(); ++b) {
        if ((b + 1) % options.unlabeled_every == 0) streams[s][b].labels.clear();
      }
    }
  }

  MultiStreamThroughput out;
  out.total_batches = options.num_streams * options.batches_per_stream;
  for (const auto& stream : streams) {
    for (const Batch& batch : stream) out.total_records += batch.size();
  }

  // Leg (a): the paper's single-stream deployment, repeated per stream on
  // one thread.
  {
    std::vector<std::unique_ptr<StreamPipeline>> pipelines;
    for (size_t s = 0; s < options.num_streams; ++s) {
      pipelines.push_back(std::make_unique<StreamPipeline>(
          prototype, options.runtime.pipeline));
      if (options.metrics != nullptr) {
        pipelines.back()->AttachMetrics(options.metrics);
      }
    }
    Stopwatch watch;
    for (size_t s = 0; s < options.num_streams; ++s) {
      for (const Batch& batch : streams[s]) {
        FREEWAY_ASSIGN_OR_RETURN(std::optional<InferenceReport> report,
                                 pipelines[s]->Push(batch));
        (void)report;
      }
    }
    const double seconds = watch.ElapsedSeconds();
    if (seconds <= 0.0) {
      return Status::Internal("MeasureMultiStreamThroughput: zero time");
    }
    out.sequential_batches_per_sec =
        static_cast<double>(out.total_batches) / seconds;
  }

  // Leg (b): one shard per stream, one producer thread per stream.
  {
    RuntimeOptions runtime_options = options.runtime;
    runtime_options.num_shards = options.num_streams;
    if (options.metrics != nullptr) runtime_options.metrics = options.metrics;
    StreamRuntime runtime(prototype, runtime_options);
    Stopwatch watch;
    std::vector<std::thread> producers;
    producers.reserve(options.num_streams);
    for (size_t s = 0; s < options.num_streams; ++s) {
      producers.emplace_back([&runtime, &streams, s] {
        for (const Batch& batch : streams[s]) {
          runtime.Submit(static_cast<uint64_t>(s), batch).CheckOk();
        }
      });
    }
    for (std::thread& t : producers) t.join();
    runtime.Flush();
    const double seconds = watch.ElapsedSeconds();
    if (seconds <= 0.0) {
      return Status::Internal("MeasureMultiStreamThroughput: zero time");
    }
    out.runtime_batches_per_sec =
        static_cast<double>(out.total_batches) / seconds;
    out.runtime_stats = runtime.Snapshot();
    runtime.Shutdown();
  }

  out.speedup = out.sequential_batches_per_sec > 0.0
                    ? out.runtime_batches_per_sec /
                          out.sequential_batches_per_sec
                    : 0.0;
  return out;
}

}  // namespace freeway
