#ifndef FREEWAYML_EVAL_PREQUENTIAL_H_
#define FREEWAYML_EVAL_PREQUENTIAL_H_

#include <vector>

#include "baselines/streaming_learner.h"
#include "stream/batch.h"

namespace freeway {

/// Per-pattern accuracy aggregate (ground-truth pattern labels supplied by
/// the stream source).
struct PatternAccuracy {
  double slight = 0.0;
  double sudden = 0.0;
  double reoccurring = 0.0;
  size_t slight_batches = 0;
  size_t sudden_batches = 0;
  size_t reoccurring_batches = 0;
};

/// Full record of one prequential run.
struct PrequentialResult {
  /// Real-time accuracy per batch (Eq. 1), in stream order.
  std::vector<double> batch_accuracies;
  /// Ground-truth drift annotation per batch, aligned with accuracies.
  std::vector<DriftKind> batch_kinds;
  std::vector<bool> shift_events;

  /// Global average accuracy (Eq. 15).
  double g_acc = 0.0;
  /// Stability Index SI = exp(-sigma_acc / mu_acc) (Eq. 16).
  double stability_index = 0.0;
  PatternAccuracy per_pattern;
};

/// Options for a prequential run.
struct PrequentialOptions {
  size_t num_batches = 120;
  size_t batch_size = 1024;
  /// Leading batches excluded from the metrics (cold-start warm-up; they
  /// still train the system).
  size_t warmup_batches = 8;
};

/// Drives `learner` through `source` with the standard test-then-train
/// protocol: each batch is first predicted, its accuracy recorded, then used
/// for the incremental update (via StreamingLearner::PrequentialStep, so
/// systems with coupled inference/training keep one assessment per batch).
Result<PrequentialResult> RunPrequential(StreamingLearner* learner,
                                         StreamSource* source,
                                         const PrequentialOptions& options);

/// Computes G_acc / SI / per-pattern aggregates from already-recorded batch
/// accuracies (fills the derived fields of `result` in place).
void FinalizePrequentialMetrics(PrequentialResult* result);

}  // namespace freeway

#endif  // FREEWAYML_EVAL_PREQUENTIAL_H_
