#include "eval/prequential.h"

#include <cmath>

namespace freeway {

void FinalizePrequentialMetrics(PrequentialResult* result) {
  const auto& acc = result->batch_accuracies;
  if (acc.empty()) {
    result->g_acc = 0.0;
    result->stability_index = 0.0;
    return;
  }

  double mean = 0.0;
  for (double a : acc) mean += a;
  mean /= static_cast<double>(acc.size());
  result->g_acc = mean;

  double var = 0.0;
  for (double a : acc) var += (a - mean) * (a - mean);
  const double sd = std::sqrt(var / static_cast<double>(acc.size()));
  result->stability_index = mean > 1e-12 ? std::exp(-sd / mean) : 0.0;

  PatternAccuracy& pp = result->per_pattern;
  pp = PatternAccuracy{};
  for (size_t i = 0; i < acc.size(); ++i) {
    const DriftKind kind =
        i < result->batch_kinds.size() ? result->batch_kinds[i]
                                       : DriftKind::kStationary;
    const bool event = i < result->shift_events.size() && result->shift_events[i];
    if (event && kind == DriftKind::kSudden) {
      pp.sudden += acc[i];
      ++pp.sudden_batches;
    } else if (event && kind == DriftKind::kReoccurring) {
      pp.reoccurring += acc[i];
      ++pp.reoccurring_batches;
    } else {
      pp.slight += acc[i];
      ++pp.slight_batches;
    }
  }
  if (pp.slight_batches > 0) pp.slight /= static_cast<double>(pp.slight_batches);
  if (pp.sudden_batches > 0) pp.sudden /= static_cast<double>(pp.sudden_batches);
  if (pp.reoccurring_batches > 0) {
    pp.reoccurring /= static_cast<double>(pp.reoccurring_batches);
  }
}

Result<PrequentialResult> RunPrequential(StreamingLearner* learner,
                                         StreamSource* source,
                                         const PrequentialOptions& options) {
  if (learner == nullptr || source == nullptr) {
    return Status::InvalidArgument("RunPrequential: null learner or source");
  }
  PrequentialResult result;
  result.batch_accuracies.reserve(options.num_batches);

  for (size_t b = 0; b < options.num_batches; ++b) {
    FREEWAY_ASSIGN_OR_RETURN(Batch batch,
                             source->NextBatch(options.batch_size));
    const BatchMeta meta = source->LastBatchMeta();

    FREEWAY_ASSIGN_OR_RETURN(std::vector<int> predictions,
                             learner->PrequentialStep(batch));

    if (b < options.warmup_batches) continue;

    size_t hits = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (predictions[i] == batch.labels[i]) ++hits;
    }
    result.batch_accuracies.push_back(static_cast<double>(hits) /
                                      static_cast<double>(batch.size()));
    result.batch_kinds.push_back(meta.segment_kind);
    result.shift_events.push_back(meta.shift_event);
  }

  FinalizePrequentialMetrics(&result);
  return result;
}

}  // namespace freeway
