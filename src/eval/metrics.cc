#include "eval/metrics.h"

#include <sstream>

#include "common/strings.h"

namespace freeway {

ConfusionMatrix::ConfusionMatrix(size_t num_classes)
    : counts_(num_classes, std::vector<size_t>(num_classes, 0)) {}

Status ConfusionMatrix::Add(int truth, int prediction) {
  if (truth < 0 || static_cast<size_t>(truth) >= counts_.size() ||
      prediction < 0 || static_cast<size_t>(prediction) >= counts_.size()) {
    return Status::InvalidArgument("ConfusionMatrix: class out of range");
  }
  ++counts_[static_cast<size_t>(truth)][static_cast<size_t>(prediction)];
  ++total_;
  return Status::OK();
}

Status ConfusionMatrix::AddAll(const std::vector<int>& truth,
                               const std::vector<int>& predictions) {
  if (truth.size() != predictions.size()) {
    return Status::InvalidArgument("ConfusionMatrix: size mismatch");
  }
  for (size_t i = 0; i < truth.size(); ++i) {
    FREEWAY_RETURN_NOT_OK(Add(truth[i], predictions[i]));
  }
  return Status::OK();
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  size_t hits = 0;
  for (size_t c = 0; c < counts_.size(); ++c) hits += counts_[c][c];
  return static_cast<double>(hits) / static_cast<double>(total_);
}

double ConfusionMatrix::Precision(size_t c) const {
  size_t predicted = 0;
  for (size_t t = 0; t < counts_.size(); ++t) predicted += counts_[t][c];
  if (predicted == 0) return 0.0;
  return static_cast<double>(counts_[c][c]) / static_cast<double>(predicted);
}

double ConfusionMatrix::Recall(size_t c) const {
  const size_t support = Support(c);
  if (support == 0) return 0.0;
  return static_cast<double>(counts_[c][c]) / static_cast<double>(support);
}

double ConfusionMatrix::F1(size_t c) const {
  const double p = Precision(c);
  const double r = Recall(c);
  if (p + r <= 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::MacroF1() const {
  if (counts_.empty()) return 0.0;
  double sum = 0.0;
  for (size_t c = 0; c < counts_.size(); ++c) sum += F1(c);
  return sum / static_cast<double>(counts_.size());
}

double ConfusionMatrix::CohensKappa() const {
  if (total_ == 0) return 0.0;
  const double n = static_cast<double>(total_);
  const double observed = Accuracy();
  double expected = 0.0;
  for (size_t c = 0; c < counts_.size(); ++c) {
    size_t row = 0, col = 0;
    for (size_t j = 0; j < counts_.size(); ++j) {
      row += counts_[c][j];
      col += counts_[j][c];
    }
    expected += (static_cast<double>(row) / n) *
                (static_cast<double>(col) / n);
  }
  if (expected >= 1.0) return 0.0;
  return (observed - expected) / (1.0 - expected);
}

size_t ConfusionMatrix::Support(size_t c) const {
  size_t support = 0;
  for (size_t p = 0; p < counts_.size(); ++p) support += counts_[c][p];
  return support;
}

std::string ConfusionMatrix::ToString() const {
  std::ostringstream os;
  os << "class  precision  recall     f1         support\n";
  for (size_t c = 0; c < counts_.size(); ++c) {
    os << PadRight(std::to_string(c), 7)
       << PadRight(FormatDouble(Precision(c), 4), 11)
       << PadRight(FormatDouble(Recall(c), 4), 11)
       << PadRight(FormatDouble(F1(c), 4), 11) << Support(c) << "\n";
  }
  os << "accuracy " << FormatPercent(Accuracy()) << ", macro-F1 "
     << FormatDouble(MacroF1(), 4) << ", kappa "
     << FormatDouble(CohensKappa(), 4) << "\n";
  return os.str();
}

}  // namespace freeway
