#ifndef FREEWAYML_EVAL_METRICS_H_
#define FREEWAYML_EVAL_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace freeway {

/// Confusion matrix and the per-class / aggregate metrics derived from it.
/// Used to reproduce the paper's NSL-KDD analysis ("significantly enhances
/// the classification performance of the minority classes").
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(size_t num_classes);

  /// Accumulates one (truth, prediction) pair. Both must be in
  /// [0, num_classes).
  Status Add(int truth, int prediction);

  /// Accumulates aligned truth/prediction vectors.
  Status AddAll(const std::vector<int>& truth,
                const std::vector<int>& predictions);

  size_t num_classes() const { return counts_.size(); }
  /// counts()[t][p]: samples of true class t predicted as p.
  const std::vector<std::vector<size_t>>& counts() const { return counts_; }
  size_t total() const { return total_; }

  /// Overall accuracy; 0 when empty.
  double Accuracy() const;
  /// Precision of class c: TP / (TP + FP); 0 when the class was never
  /// predicted.
  double Precision(size_t c) const;
  /// Recall of class c: TP / (TP + FN); 0 when the class never occurred.
  double Recall(size_t c) const;
  /// Harmonic mean of precision and recall; 0 when both are 0.
  double F1(size_t c) const;
  /// Unweighted mean of per-class F1 — the metric class imbalance cannot
  /// hide behind.
  double MacroF1() const;
  /// Cohen's kappa: agreement beyond chance under the observed marginals.
  double CohensKappa() const;
  /// True occurrences of class c.
  size_t Support(size_t c) const;

  /// Multi-line per-class report (precision / recall / F1 / support).
  std::string ToString() const;

 private:
  std::vector<std::vector<size_t>> counts_;
  size_t total_ = 0;
};

}  // namespace freeway

#endif  // FREEWAYML_EVAL_METRICS_H_
