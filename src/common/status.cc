#include "common/status.h"

#include <cstdio>

namespace freeway {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

void Status::CheckOk() const {
  if (ok()) return;
  std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace freeway
