#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/logging.h"

namespace freeway {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  seed_ = seed;
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  has_spare_ = false;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  FREEWAY_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextGaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = n; i > 1; --i) {
    size_t j = static_cast<size_t>(NextBelow(i));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::Fork(uint64_t stream_id) {
  // Mix the parent seed with the stream id so children are decorrelated from
  // both the parent and each other.
  uint64_t mixed = seed_ ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
  uint64_t sm = mixed;
  mixed = SplitMix64(&sm) ^ NextUint64();
  return Rng(mixed);
}

}  // namespace freeway
