#ifndef FREEWAYML_COMMON_LOGGING_H_
#define FREEWAYML_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace freeway {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the process-wide minimum level emitted by FREEWAY_LOG. Defaults to
/// kInfo. Thread-safe (atomic store).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log-line collector; emits on destruction. Used only through
/// the FREEWAY_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

bool LogLevelEnabled(LogLevel level);

}  // namespace internal
}  // namespace freeway

#define FREEWAY_LOG(level)                                                 \
  if (!::freeway::internal::LogLevelEnabled(::freeway::LogLevel::level)) { \
  } else                                                                   \
    ::freeway::internal::LogMessage(::freeway::LogLevel::level, __FILE__,  \
                                    __LINE__)                              \
        .stream()

/// Assertion for internal invariants; aborts with location info when false.
/// Active in all build types: these guard algorithmic invariants whose
/// violation would silently corrupt results.
#define FREEWAY_DCHECK(cond)                                             \
  if (cond) {                                                            \
  } else                                                                 \
    ::freeway::internal::LogMessage(::freeway::LogLevel::kError,         \
                                    __FILE__, __LINE__)                  \
        .stream()                                                        \
        << "Check failed: " #cond " "

#endif  // FREEWAYML_COMMON_LOGGING_H_
