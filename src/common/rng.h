#ifndef FREEWAYML_COMMON_RNG_H_
#define FREEWAYML_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace freeway {

/// Deterministic pseudo-random number generator (splitmix64-seeded
/// xoshiro256**). Every stochastic component in the library draws from an
/// explicitly seeded Rng so that experiments are reproducible bit-for-bit;
/// nothing reads global entropy.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator; identical seeds yield identical sequences.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Standard normal via Box–Muller (cached spare for the second draw).
  double NextGaussian();

  /// Normal with the given mean / standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fisher–Yates shuffles indices [0, n) and returns them.
  std::vector<size_t> Permutation(size_t n);

  /// Derives an independent child generator; different `stream_id`s give
  /// decorrelated streams from the same parent seed.
  Rng Fork(uint64_t stream_id);

 private:
  uint64_t state_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
  uint64_t seed_ = 0;
};

}  // namespace freeway

#endif  // FREEWAYML_COMMON_RNG_H_
