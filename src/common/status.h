#ifndef FREEWAYML_COMMON_STATUS_H_
#define FREEWAYML_COMMON_STATUS_H_

#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace freeway {

/// Error categories used across the library. Modeled after the Status idiom
/// used by Arrow and RocksDB: library code never throws; fallible operations
/// return a Status (or Result<T>, below) that callers must inspect.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
  kNotImplemented,
  kIoError,
  /// Transient overload / resource exhaustion: the operation was rejected
  /// without side effects and is safe to retry after backing off (e.g. a
  /// full shard queue behind StreamRuntime::TrySubmit, an OVERLOAD reply
  /// from StreamServer).
  kUnavailable,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome. Cheap to copy in the OK case (no allocation);
/// error states carry a message describing what went wrong.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process with a diagnostic if this status is not OK. Intended
  /// for call sites where failure is a programming error, e.g. examples and
  /// benchmark drivers.
  void CheckOk() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error outcome: holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning
  /// functions, matching the Arrow convention.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. Constructing from an OK status is a
  /// programming error and is normalized to kInternal.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Accessors require ok(); aborting on misuse keeps error handling honest
  /// without exceptions.
  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return std::move(*value_);
  }

  /// Moves the value out, aborting with the error message if not ok().
  /// For drivers and tests where failure should be fatal.
  T ValueOrDie() && {
    status_.CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) status_.CheckOk();
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace freeway

/// Propagates a non-OK Status to the caller: `RETURN_IF_ERROR(Fn());`
#define RETURN_IF_ERROR(expr)                     \
  do {                                            \
    ::freeway::Status _st = (expr);               \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Unwraps a Result into `lhs`, propagating the error Status on failure:
/// `ASSIGN_OR_RETURN(Batch chunk, SliceBatch(batch, begin, end));`
#define ASSIGN_OR_RETURN(lhs, rexpr)              \
  auto FREEWAY_CONCAT_(_res_, __LINE__) = (rexpr);          \
  if (!FREEWAY_CONCAT_(_res_, __LINE__).ok())               \
    return FREEWAY_CONCAT_(_res_, __LINE__).status();       \
  lhs = std::move(FREEWAY_CONCAT_(_res_, __LINE__)).value()

/// Historical spellings, kept so existing call sites outside the converted
/// core/ml layers keep compiling; new code uses the short names above.
#define FREEWAY_RETURN_NOT_OK(expr) RETURN_IF_ERROR(expr)
#define FREEWAY_ASSIGN_OR_RETURN(lhs, rexpr) ASSIGN_OR_RETURN(lhs, rexpr)

#define FREEWAY_CONCAT_IMPL_(a, b) a##b
#define FREEWAY_CONCAT_(a, b) FREEWAY_CONCAT_IMPL_(a, b)

#endif  // FREEWAYML_COMMON_STATUS_H_
