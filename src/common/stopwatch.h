#ifndef FREEWAYML_COMMON_STOPWATCH_H_
#define FREEWAYML_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace freeway {

/// Monotonic wall-clock stopwatch used by the performance harness.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace freeway

#endif  // FREEWAYML_COMMON_STOPWATCH_H_
