#include "common/strings.h"

#include <cstdio>

namespace freeway {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatPercent(double ratio, int digits) {
  return FormatDouble(ratio * 100.0, digits) + "%";
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace freeway
