#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace freeway {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

bool LogLevelEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_min_level.load(std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::string line = stream_.str();
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  // A failed FREEWAY_DCHECK logs at kError through this path; aborting here
  // keeps invariant violations fatal without a separate fatal level.
  if (level_ == LogLevel::kError && line.find("Check failed:") != std::string::npos) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace freeway
