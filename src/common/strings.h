#ifndef FREEWAYML_COMMON_STRINGS_H_
#define FREEWAYML_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace freeway {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(const std::string& text, char sep);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Formats a double with `digits` places after the decimal point.
std::string FormatDouble(double value, int digits);

/// Formats a ratio as a percentage string, e.g. 0.8123 -> "81.23%".
std::string FormatPercent(double ratio, int digits = 2);

/// Left-pads (or truncates nothing) `s` with spaces to `width`.
std::string PadLeft(const std::string& s, size_t width);

/// Right-pads `s` with spaces to `width`.
std::string PadRight(const std::string& s, size_t width);

}  // namespace freeway

#endif  // FREEWAYML_COMMON_STRINGS_H_
