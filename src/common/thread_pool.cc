#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "obs/metrics.h"

namespace freeway {

/// Handles into an attached MetricsRegistry; one immutable bundle per
/// AttachMetrics call.
struct ThreadPool::PoolMetrics {
  Counter* tasks_total = nullptr;
  Gauge* queue_depth = nullptr;
  Histogram* queue_wait_seconds = nullptr;
  Histogram* run_seconds = nullptr;
};

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

thread_local bool t_in_worker = false;

/// Shared state of one ParallelFor call. Heap-held (shared_ptr) so helper
/// tasks that drain after the caller has already collected all chunks never
/// touch a dead frame.
struct ForLoopState {
  size_t begin = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  const std::function<void(size_t, size_t)>* fn = nullptr;
  size_t range_end = 0;

  std::atomic<size_t> next_chunk{0};
  std::mutex mutex;
  std::condition_variable done;
  size_t completed_chunks = 0;
  std::exception_ptr first_error;

  /// Claims and runs chunks until none remain. Returns after contributing
  /// at least zero chunks; safe to call from any thread.
  void Drain() {
    for (;;) {
      const size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      const size_t lo = begin + chunk * grain;
      size_t hi = lo + grain;
      if (hi > range_end) hi = range_end;
      std::exception_ptr error;
      try {
        (*fn)(lo, hi);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex);
      if (error && !first_error) first_error = error;
      if (++completed_chunks == num_chunks) done.notify_all();
    }
  }
};

size_t GlobalPoolSize() {
  if (const char* env = std::getenv("FREEWAY_NUM_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed >= 1) return static_cast<size_t>(parsed);
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    QueueTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RunTask(std::move(task));
  }
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  QueueTask task;
  task.fn = std::move(fn);
  const PoolMetrics* metrics = metrics_.load(std::memory_order_acquire);
  if (metrics) {
    task.enqueued = std::chrono::steady_clock::now();
    task.counted = true;
    metrics->queue_depth->Inc();
  }
  queue_.push_back(std::move(task));
}

void ThreadPool::RunTask(QueueTask task) {
  const PoolMetrics* metrics = metrics_.load(std::memory_order_acquire);
  if (metrics == nullptr) {
    task.fn();
    return;
  }
  if (task.counted) {
    metrics->queue_depth->Dec();
    metrics->queue_wait_seconds->Observe(SecondsSince(task.enqueued));
  }
  const auto started = std::chrono::steady_clock::now();
  task.fn();
  metrics->run_seconds->Observe(SecondsSince(started));
  metrics->tasks_total->Inc();
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const size_t range = end - begin;
  const size_t num_chunks = (range + grain - 1) / grain;

  // Serial fallback: no workers, nothing to split, or a nested call from a
  // worker thread (which must not block on the queue it is draining).
  if (workers_.empty() || num_chunks <= 1 || InWorkerThread()) {
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      const size_t lo = begin + chunk * grain;
      const size_t hi = lo + grain < end ? lo + grain : end;
      fn(lo, hi);
    }
    return;
  }

  auto state = std::make_shared<ForLoopState>();
  state->begin = begin;
  state->grain = grain;
  state->num_chunks = num_chunks;
  state->fn = &fn;
  state->range_end = end;

  // One helper task per worker that could usefully contribute; each drains
  // chunks from the shared atomic counter.
  size_t helpers = workers_.size();
  if (helpers > num_chunks - 1) helpers = num_chunks - 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < helpers; ++i) {
      Enqueue([state] { state->Drain(); });
    }
  }
  if (helpers == 1) {
    work_available_.notify_one();
  } else {
    work_available_.notify_all();
  }

  state->Drain();
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock,
                   [&] { return state->completed_chunks == state->num_chunks; });
  // `fn` may dangle once we return; helper tasks only read it while a chunk
  // is still unclaimed, and all chunks are complete here.
  state->fn = nullptr;
  if (state->first_error) std::rethrow_exception(state->first_error);
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    QueueTask inline_task;
    inline_task.fn = std::move(task);
    RunTask(std::move(inline_task));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Enqueue(std::move(task));
  }
  work_available_.notify_one();
}

bool ThreadPool::InWorkerThread() { return t_in_worker; }

void ThreadPool::AttachMetrics(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry == nullptr) {
    metrics_.store(nullptr, std::memory_order_release);
    return;
  }
  auto handles = std::make_unique<PoolMetrics>();
  handles->tasks_total = registry->GetCounter("freeway_threadpool_tasks_total");
  handles->queue_depth = registry->GetGauge("freeway_threadpool_queue_depth");
  handles->queue_wait_seconds =
      registry->GetHistogram("freeway_threadpool_task_wait_seconds");
  handles->run_seconds =
      registry->GetHistogram("freeway_threadpool_task_run_seconds");
  metrics_.store(handles.get(), std::memory_order_release);
  metrics_storage_.push_back(std::move(handles));
}

ThreadPool* ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  auto& slot = GlobalSlot();
  if (!slot) slot = std::make_unique<ThreadPool>(GlobalPoolSize());
  return slot.get();
}

void ThreadPool::SetGlobalThreads(size_t num_threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  auto& slot = GlobalSlot();
  slot.reset();
  slot = std::make_unique<ThreadPool>(num_threads >= 1 ? num_threads : 1);
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  ThreadPool::Global()->ParallelFor(begin, end, grain, fn);
}

size_t GrainForCost(size_t ops_per_item, size_t target_ops) {
  if (ops_per_item == 0) ops_per_item = 1;
  const size_t grain = target_ops / ops_per_item;
  return grain >= 1 ? grain : 1;
}

}  // namespace freeway
