#ifndef FREEWAYML_COMMON_THREAD_POOL_H_
#define FREEWAYML_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace freeway {

class MetricsRegistry;

/// Fixed-size worker pool backing the library's parallel kernels (matmul,
/// im2col convolution, k-means assignment, ensemble member inference).
///
/// The only parallel primitive is the blocking ParallelFor below. Its
/// determinism contract: chunk boundaries depend solely on (begin, end,
/// grain) — never on the pool size or on scheduling — so a kernel whose
/// chunks write disjoint outputs, or whose per-chunk partials are merged in
/// chunk order, produces bit-identical results at every thread count
/// (including the serial fallback).
///
/// Nested calls are safe: a ParallelFor issued from inside a worker thread
/// runs serially on that worker, so inner kernels (e.g. a MatMul inside an
/// ensemble member's forward pass) neither deadlock nor oversubscribe.
///
/// Alongside ParallelFor, Submit enqueues standalone tasks (the streaming
/// runtime's shard drain tasks). Submitted tasks share the worker queue
/// with ParallelFor helpers, so a submitted task must be *cooperative*:
/// it should process a bounded amount of work and return (re-submitting
/// itself if more arrives) rather than parking a worker in an endless
/// loop, or ParallelFor chunks queued behind it starve.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 and 1 both mean "no workers" (every
  /// ParallelFor degenerates to the serial fallback).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs fn(chunk_begin, chunk_end) over [begin, end) split into
  /// ceil((end-begin)/grain) contiguous chunks and blocks until all chunks
  /// finish. The calling thread participates. Runs serially (in ascending
  /// chunk order, on the caller) when the pool has no workers, the range
  /// fits in one chunk, or the caller is itself a pool worker.
  ///
  /// The first exception thrown by `fn` is captured and rethrown on the
  /// calling thread once every chunk has completed.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Enqueues one standalone task for asynchronous execution on a worker.
  /// Tasks start in FIFO order relative to other submitted tasks. When the
  /// pool has no workers the task runs inline on the caller before Submit
  /// returns — callers must not hold locks the task also takes.
  void Submit(std::function<void()> task);

  /// True when called from one of this process's pool worker threads.
  static bool InWorkerThread();

  /// Attaches observability: task count, queue depth, queue-wait and run
  /// latency land in `registry` (`freeway_threadpool_*`). Call before
  /// traffic — tasks enqueued while detached are executed but not timed.
  /// Pass nullptr to detach. `registry` must outlive the pool.
  void AttachMetrics(MetricsRegistry* registry);

  /// Process-global pool, created on first use. Sized by the
  /// FREEWAY_NUM_THREADS environment variable when set (clamped to >= 1),
  /// otherwise std::thread::hardware_concurrency().
  static ThreadPool* Global();

  /// Replaces the global pool with one of `num_threads` threads. Intended
  /// for tests and benchmarks sweeping thread counts; callers must ensure
  /// no ParallelFor is in flight on the old pool.
  static void SetGlobalThreads(size_t num_threads);

 private:
  struct PoolMetrics;

  /// One queued unit of work. `enqueued`/`counted` carry the observability
  /// bookkeeping: only tasks enqueued while metrics were attached update
  /// the depth gauge and wait histogram on dequeue, so attaching mid-flight
  /// never leaves the gauge negative.
  struct QueueTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
    bool counted = false;
  };

  void WorkerLoop();
  void Enqueue(std::function<void()> fn);
  /// Instrumented execution of one dequeued task.
  void RunTask(QueueTask task);

  std::vector<std::thread> workers_;
  std::deque<QueueTask> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  bool stop_ = false;
  /// Published metric handles; null while detached. Heap-held so readers
  /// can load the pointer without holding mutex_; retired attachments stay
  /// alive in the vector so in-flight readers never dangle.
  std::vector<std::unique_ptr<PoolMetrics>> metrics_storage_;
  std::atomic<const PoolMetrics*> metrics_{nullptr};
};

/// ParallelFor on the global pool; the entry point used by the kernels.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// Chunk size that gives each chunk roughly `target_ops` scalar operations
/// of work when one item costs `ops_per_item`; never below 1. Keeps
/// scheduling overhead negligible for small problems while still splitting
/// big ones finely enough to balance load.
size_t GrainForCost(size_t ops_per_item, size_t target_ops = 16384);

}  // namespace freeway

#endif  // FREEWAYML_COMMON_THREAD_POOL_H_
