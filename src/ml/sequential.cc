#include "ml/sequential.h"

#include "common/logging.h"
#include "ml/losses.h"

namespace freeway {

SequentialModel::SequentialModel(std::string name, size_t input_dim,
                                 size_t num_classes,
                                 std::vector<std::unique_ptr<Layer>> layers,
                                 std::unique_ptr<Optimizer> optimizer)
    : name_(std::move(name)),
      input_dim_(input_dim),
      num_classes_(num_classes),
      layers_(std::move(layers)),
      optimizer_(std::move(optimizer)) {
  FREEWAY_DCHECK(!layers_.empty());
  FREEWAY_DCHECK(optimizer_ != nullptr);
}

SequentialModel::SequentialModel(const SequentialModel& other)
    : name_(other.name_),
      input_dim_(other.input_dim_),
      num_classes_(other.num_classes_),
      optimizer_(other.optimizer_->Clone()) {
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->Clone());
}

Status SequentialModel::ValidateBatch(const Matrix& x,
                                      const std::vector<int>* y) const {
  if (x.rows() == 0) return Status::InvalidArgument("empty batch");
  if (x.cols() != input_dim_) {
    return Status::InvalidArgument(
        name_ + ": expected input dim " + std::to_string(input_dim_) +
        ", got " + std::to_string(x.cols()));
  }
  if (!x.AllFinite()) {
    return Status::InvalidArgument(name_ +
                                   ": batch contains NaN or infinite values");
  }
  if (y != nullptr) {
    if (y->size() != x.rows()) {
      return Status::InvalidArgument(name_ + ": labels/features row mismatch");
    }
    for (int label : *y) {
      if (label < 0 || static_cast<size_t>(label) >= num_classes_) {
        return Status::InvalidArgument(name_ + ": label out of range: " +
                                       std::to_string(label));
      }
    }
  }
  return Status::OK();
}

Matrix SequentialModel::ForwardLogits(const Matrix& x) {
  Matrix activation = x;
  for (auto& layer : layers_) activation = layer->Forward(activation);
  return activation;
}

Result<Matrix> SequentialModel::PredictProba(const Matrix& x) {
  FREEWAY_RETURN_NOT_OK(ValidateBatch(x, nullptr));
  return Softmax(ForwardLogits(x));
}

Result<double> SequentialModel::TrainBatch(const Matrix& x,
                                           const std::vector<int>& y) {
  FREEWAY_RETURN_NOT_OK(ValidateBatch(x, &y));
  for (auto& layer : layers_) layer->ZeroGrads();
  Matrix logits = ForwardLogits(x);
  const double loss = SoftmaxCrossEntropyLoss(logits, y);
  Matrix grad = SoftmaxCrossEntropyGrad(logits, y);
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->Backward(grad);
  }
  optimizer_->Step(AllParams(), AllGrads());
  return loss;
}

Result<double> SequentialModel::ComputeGradient(const Matrix& x,
                                                const std::vector<int>& y,
                                                std::vector<double>* grad) {
  FREEWAY_RETURN_NOT_OK(ValidateBatch(x, &y));
  if (grad == nullptr) return Status::InvalidArgument("grad is null");
  for (auto& layer : layers_) layer->ZeroGrads();
  Matrix logits = ForwardLogits(x);
  const double loss = SoftmaxCrossEntropyLoss(logits, y);
  Matrix g = SoftmaxCrossEntropyGrad(logits, y);
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  grad->clear();
  grad->reserve(ParameterCount());
  for (Matrix* gm : AllGrads()) {
    grad->insert(grad->end(), gm->data(), gm->data() + gm->size());
  }
  return loss;
}

Status SequentialModel::ApplyStep(std::span<const double> step) {
  if (step.size() != ParameterCount()) {
    return Status::InvalidArgument("ApplyStep: size mismatch");
  }
  size_t offset = 0;
  for (Matrix* p : AllParams()) {
    double* data = p->data();
    for (size_t i = 0; i < p->size(); ++i) data[i] += step[offset + i];
    offset += p->size();
  }
  return Status::OK();
}

size_t SequentialModel::ParameterCount() const {
  size_t count = 0;
  for (Matrix* p : AllParams()) count += p->size();
  return count;
}

std::vector<double> SequentialModel::GetParameters() const {
  std::vector<double> out;
  out.reserve(ParameterCount());
  for (Matrix* p : AllParams()) {
    out.insert(out.end(), p->data(), p->data() + p->size());
  }
  return out;
}

Status SequentialModel::SetParameters(std::span<const double> params) {
  if (params.size() != ParameterCount()) {
    return Status::InvalidArgument("SetParameters: size mismatch (expected " +
                                   std::to_string(ParameterCount()) +
                                   ", got " + std::to_string(params.size()) +
                                   ")");
  }
  size_t offset = 0;
  for (Matrix* p : AllParams()) {
    double* data = p->data();
    for (size_t i = 0; i < p->size(); ++i) data[i] = params[offset + i];
    offset += p->size();
  }
  return Status::OK();
}

std::unique_ptr<Model> SequentialModel::Clone() const {
  return std::unique_ptr<Model>(new SequentialModel(*this));
}

std::vector<Matrix*> SequentialModel::AllParams() const {
  std::vector<Matrix*> out;
  for (const auto& layer : layers_) {
    for (Matrix* p : layer->Params()) out.push_back(p);
  }
  return out;
}

std::vector<Matrix*> SequentialModel::AllGrads() const {
  std::vector<Matrix*> out;
  for (const auto& layer : layers_) {
    for (Matrix* g : layer->Grads()) out.push_back(g);
  }
  return out;
}

Result<std::vector<int>> Model::Predict(const Matrix& x) {
  FREEWAY_ASSIGN_OR_RETURN(Matrix probs, PredictProba(x));
  std::vector<int> out(probs.rows());
  for (size_t i = 0; i < probs.rows(); ++i) {
    auto row = probs.Row(i);
    size_t best = 0;
    for (size_t j = 1; j < row.size(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = static_cast<int>(best);
  }
  return out;
}

Result<double> Accuracy(Model* model, const Matrix& x,
                        const std::vector<int>& y) {
  if (x.rows() == 0) return Status::InvalidArgument("Accuracy: empty batch");
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("Accuracy: rows/labels mismatch");
  }
  FREEWAY_ASSIGN_OR_RETURN(std::vector<int> pred, model->Predict(x));
  size_t hits = 0;
  for (size_t i = 0; i < y.size(); ++i) {
    if (pred[i] == y[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(y.size());
}

}  // namespace freeway
