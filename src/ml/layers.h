#ifndef FREEWAYML_ML_LAYERS_H_
#define FREEWAYML_ML_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace freeway {

/// A differentiable layer in a sequential network. Activations are dense
/// matrices with one row per sample; spatial tensors (for conv layers) are
/// stored row-major flattened as channel-major (c, h, w) within each row.
///
/// Backward() consumes the gradient w.r.t. this layer's output, accumulates
/// gradients into the layer's parameter-gradient buffers, and returns the
/// gradient w.r.t. its input.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;

  /// Runs the layer and caches whatever Backward() needs.
  virtual Matrix Forward(const Matrix& input) = 0;

  /// Backprop; must be called after Forward on the same batch.
  virtual Matrix Backward(const Matrix& grad_output) = 0;

  /// Trainable parameter matrices (empty for activations/pools).
  virtual std::vector<Matrix*> Params() { return {}; }
  /// Matching gradient buffers, same shapes as Params().
  virtual std::vector<Matrix*> Grads() { return {}; }

  void ZeroGrads() {
    for (Matrix* g : Grads()) g->Fill(0.0);
  }

  virtual std::unique_ptr<Layer> Clone() const = 0;
};

/// Fully connected layer: output = input * W + b.
/// W is (in_dim x out_dim); b is (1 x out_dim).
class DenseLayer : public Layer {
 public:
  /// He/Xavier-style initialization scaled by fan-in, drawn from `rng`.
  DenseLayer(size_t in_dim, size_t out_dim, Rng* rng);

  std::string name() const override { return "Dense"; }
  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Matrix*> Params() override { return {&weight_, &bias_}; }
  std::vector<Matrix*> Grads() override { return {&grad_weight_, &grad_bias_}; }
  std::unique_ptr<Layer> Clone() const override;

  size_t in_dim() const { return weight_.rows(); }
  size_t out_dim() const { return weight_.cols(); }

 private:
  Matrix weight_, bias_;
  Matrix grad_weight_, grad_bias_;
  Matrix cached_input_;
};

/// Elementwise rectified linear unit.
class ReluLayer : public Layer {
 public:
  std::string name() const override { return "ReLU"; }
  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<ReluLayer>(*this);
  }

 private:
  Matrix cached_input_;
};

/// Spatial shape of a conv/pool activation: rows of the activation matrix
/// are flattened (channels x height x width) tensors.
struct TensorShape {
  size_t channels = 0;
  size_t height = 0;
  size_t width = 0;
  size_t FlatSize() const { return channels * height * width; }
};

/// 2-D convolution, stride 1, no padding. Tabular streams are treated as
/// 1 x 1 x dim images with 1 x k kernels, matching the paper's appendix CNN
/// on value-based datasets.
///
/// Forward/backward run as im2col + matmul: each sample's receptive fields
/// are unpacked into rows of a patch matrix so the convolution becomes one
/// dense product on the parallel matmul kernels. The patch matrix is cached
/// per batch shape; batches whose patch matrix would exceed a fixed memory
/// budget are processed in sample blocks (block boundaries depend only on
/// shapes, keeping results deterministic at any thread count).
class Conv2dLayer : public Layer {
 public:
  Conv2dLayer(TensorShape input_shape, size_t out_channels, size_t kernel_h,
              size_t kernel_w, Rng* rng);

  std::string name() const override { return "Conv2d"; }
  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Matrix*> Params() override { return {&kernels_, &bias_}; }
  std::vector<Matrix*> Grads() override {
    return {&grad_kernels_, &grad_bias_};
  }
  std::unique_ptr<Layer> Clone() const override;

  TensorShape output_shape() const { return output_shape_; }

 private:
  /// Samples per im2col block: the whole batch when its patch matrix fits
  /// the budget, else the largest block that does.
  size_t SampleBlock(size_t batch_rows) const;
  /// Unpacks samples [s0, s1) of `input` into `cols` (one row of kernel-
  /// sized patches per output position); parallel over samples.
  void FillCols(const Matrix& input, size_t s0, size_t s1, Matrix* cols) const;

  TensorShape input_shape_;
  TensorShape output_shape_;
  size_t kernel_h_, kernel_w_;
  // kernels_: (out_channels x in_channels*kh*kw); bias_: (1 x out_channels).
  Matrix kernels_, bias_;
  Matrix grad_kernels_, grad_bias_;
  Matrix cached_input_;
  /// im2col scratch, reused while the batch shape is stable; after Forward
  /// on a single-block batch it still holds that batch's patches, which
  /// Backward reuses without rebuilding.
  Matrix col_buffer_;
};

/// Max pooling with square-or-rectangular window; stride equals the window.
class MaxPool2dLayer : public Layer {
 public:
  MaxPool2dLayer(TensorShape input_shape, size_t pool_h, size_t pool_w);

  std::string name() const override { return "MaxPool2d"; }
  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<MaxPool2dLayer>(*this);
  }

  TensorShape output_shape() const { return output_shape_; }

 private:
  TensorShape input_shape_;
  TensorShape output_shape_;
  size_t pool_h_, pool_w_;
  // For each output cell of each sample, index of the winning input element.
  std::vector<uint32_t> argmax_;
  size_t cached_rows_ = 0;
};

}  // namespace freeway

#endif  // FREEWAYML_ML_LAYERS_H_
