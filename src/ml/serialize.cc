#include "ml/serialize.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace freeway {
namespace {

constexpr uint32_t kMagic = 0x46574d4c;  // "FWML"
constexpr uint32_t kVersion = 1;
/// Upper bound on restorable parameters (8 GiB of doubles) — far above any
/// model this library builds, low enough that a corrupted count can never
/// drive the resize below into an absurd allocation.
constexpr uint64_t kMaxParameters = uint64_t{1} << 30;

struct Header {
  uint32_t magic;
  uint32_t version;
  uint64_t parameter_count;
};

}  // namespace

void SerializeModel(const Model& model, std::vector<char>* out) {
  const std::vector<double> params = model.GetParameters();
  Header header{kMagic, kVersion, params.size()};
  out->clear();
  out->resize(sizeof(Header) + params.size() * sizeof(double));
  std::memcpy(out->data(), &header, sizeof(Header));
  std::memcpy(out->data() + sizeof(Header), params.data(),
              params.size() * sizeof(double));
}

Result<ModelSnapshot> DeserializeModel(const std::vector<char>& buffer) {
  if (buffer.size() < sizeof(Header)) {
    return Status::InvalidArgument("model snapshot: buffer too small");
  }
  Header header;
  std::memcpy(&header, buffer.data(), sizeof(Header));
  if (header.magic != kMagic) {
    return Status::InvalidArgument("model snapshot: bad magic");
  }
  if (header.version != kVersion) {
    return Status::InvalidArgument("model snapshot: unsupported version " +
                                   std::to_string(header.version));
  }
  // A model with zero trainable scalars cannot exist; a zero count is a
  // corrupted header, not an empty model.
  if (header.parameter_count == 0) {
    return Status::InvalidArgument("model snapshot: zero parameter count");
  }
  if (header.parameter_count > kMaxParameters ||
      header.parameter_count >
          (buffer.size() - sizeof(Header)) / sizeof(double)) {
    return Status::InvalidArgument(
        "model snapshot: absurd parameter count " +
        std::to_string(header.parameter_count) + " for a " +
        std::to_string(buffer.size()) + "-byte buffer");
  }
  const size_t expected =
      sizeof(Header) + header.parameter_count * sizeof(double);
  if (buffer.size() != expected) {
    return Status::InvalidArgument("model snapshot: truncated buffer");
  }
  ModelSnapshot snapshot;
  snapshot.parameters.resize(header.parameter_count);
  std::memcpy(snapshot.parameters.data(), buffer.data() + sizeof(Header),
              header.parameter_count * sizeof(double));
  for (size_t i = 0; i < snapshot.parameters.size(); ++i) {
    if (!std::isfinite(snapshot.parameters[i])) {
      // A flipped exponent bit turns a weight into NaN/Inf; loading it
      // would silently poison every later prediction.
      return Status::InvalidArgument(
          "model snapshot: non-finite parameter at index " +
          std::to_string(i));
    }
  }
  return snapshot;
}

Status SaveModelToFile(const Model& model, const std::string& path) {
  std::vector<char> buffer;
  SerializeModel(model, &buffer);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(buffer.data(), 1, buffer.size(), file);
  std::fclose(file);
  if (written != buffer.size()) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

Status LoadModelFromFile(const std::string& path, Model* model) {
  if (model == nullptr) {
    return Status::InvalidArgument("LoadModelFromFile: null model");
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<char> buffer(static_cast<size_t>(size));
  const size_t read = std::fread(buffer.data(), 1, buffer.size(), file);
  std::fclose(file);
  if (read != buffer.size()) {
    return Status::IoError("short read from " + path);
  }
  ASSIGN_OR_RETURN(ModelSnapshot snapshot, DeserializeModel(buffer));
  return model->SetParameters(snapshot.parameters);
}

}  // namespace freeway
