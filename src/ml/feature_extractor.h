#ifndef FREEWAYML_ML_FEATURE_EXTRACTOR_H_
#define FREEWAYML_ML_FEATURE_EXTRACTOR_H_

#include "common/rng.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace freeway {

/// Fixed (non-learned) feature extractor for image streams: a random
/// projection followed by ReLU. Stands in for the frozen VGG-16 the paper
/// places ahead of coherent experience clustering on image data — the
/// property the pipeline needs is a fixed map into a lower-dimensional space
/// where class-conditional structure is preserved, which random ReLU
/// projections provide (Johnson–Lindenstrauss).
class RandomProjectionExtractor {
 public:
  /// Projects `input_dim`-sized rows to `feature_dim` features.
  RandomProjectionExtractor(size_t input_dim, size_t feature_dim,
                            uint64_t seed = 7);

  size_t input_dim() const { return projection_.rows(); }
  size_t feature_dim() const { return projection_.cols(); }

  /// Maps each row of `batch` to ReLU(batch * P).
  Result<Matrix> Extract(const Matrix& batch) const;

 private:
  Matrix projection_;
};

}  // namespace freeway

#endif  // FREEWAYML_ML_FEATURE_EXTRACTOR_H_
