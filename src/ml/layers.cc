#include "ml/layers.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace freeway {

// ---------------------------------------------------------------------------
// DenseLayer
// ---------------------------------------------------------------------------

DenseLayer::DenseLayer(size_t in_dim, size_t out_dim, Rng* rng)
    : weight_(in_dim, out_dim),
      bias_(1, out_dim),
      grad_weight_(in_dim, out_dim),
      grad_bias_(1, out_dim) {
  const double scale = std::sqrt(2.0 / static_cast<double>(in_dim));
  for (size_t i = 0; i < in_dim; ++i) {
    for (size_t j = 0; j < out_dim; ++j) {
      weight_.At(i, j) = rng->Gaussian(0.0, scale);
    }
  }
}

Matrix DenseLayer::Forward(const Matrix& input) {
  FREEWAY_DCHECK(input.cols() == weight_.rows());
  cached_input_ = input;
  Matrix out = input.MatMul(weight_);
  for (size_t i = 0; i < out.rows(); ++i) {
    auto row = out.Row(i);
    for (size_t j = 0; j < out.cols(); ++j) row[j] += bias_.At(0, j);
  }
  return out;
}

Matrix DenseLayer::Backward(const Matrix& grad_output) {
  // dW += X^T dY ; db += colsum(dY) ; dX = dY W^T.
  Matrix gw = cached_input_.TransposeMatMul(grad_output);
  grad_weight_.AddInPlace(gw);
  for (size_t i = 0; i < grad_output.rows(); ++i) {
    auto row = grad_output.Row(i);
    for (size_t j = 0; j < grad_output.cols(); ++j) {
      grad_bias_.At(0, j) += row[j];
    }
  }
  return grad_output.MatMulTranspose(weight_);
}

std::unique_ptr<Layer> DenseLayer::Clone() const {
  return std::make_unique<DenseLayer>(*this);
}

// ---------------------------------------------------------------------------
// ReluLayer
// ---------------------------------------------------------------------------

Matrix ReluLayer::Forward(const Matrix& input) {
  cached_input_ = input;
  Matrix out = input;
  for (size_t i = 0; i < out.rows(); ++i) {
    auto row = out.Row(i);
    for (auto& v : row) {
      if (v < 0.0) v = 0.0;
    }
  }
  return out;
}

Matrix ReluLayer::Backward(const Matrix& grad_output) {
  FREEWAY_DCHECK(grad_output.SameShape(cached_input_));
  Matrix out = grad_output;
  for (size_t i = 0; i < out.rows(); ++i) {
    auto g = out.Row(i);
    auto x = cached_input_.Row(i);
    for (size_t j = 0; j < g.size(); ++j) {
      if (x[j] <= 0.0) g[j] = 0.0;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Conv2dLayer
// ---------------------------------------------------------------------------

Conv2dLayer::Conv2dLayer(TensorShape input_shape, size_t out_channels,
                         size_t kernel_h, size_t kernel_w, Rng* rng)
    : input_shape_(input_shape), kernel_h_(kernel_h), kernel_w_(kernel_w) {
  FREEWAY_DCHECK(input_shape.height >= kernel_h);
  FREEWAY_DCHECK(input_shape.width >= kernel_w);
  output_shape_.channels = out_channels;
  output_shape_.height = input_shape.height - kernel_h + 1;
  output_shape_.width = input_shape.width - kernel_w + 1;

  const size_t fan_in = input_shape.channels * kernel_h * kernel_w;
  kernels_ = Matrix(out_channels, fan_in);
  bias_ = Matrix(1, out_channels);
  grad_kernels_ = Matrix(out_channels, fan_in);
  grad_bias_ = Matrix(1, out_channels);
  const double scale = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (size_t i = 0; i < out_channels; ++i) {
    for (size_t j = 0; j < fan_in; ++j) {
      kernels_.At(i, j) = rng->Gaussian(0.0, scale);
    }
  }
}

Matrix Conv2dLayer::Forward(const Matrix& input) {
  FREEWAY_DCHECK(input.cols() == input_shape_.FlatSize());
  cached_input_ = input;
  const size_t n = input.rows();
  const size_t ic = input_shape_.channels;
  const size_t ih = input_shape_.height;
  const size_t iw = input_shape_.width;
  const size_t oc = output_shape_.channels;
  const size_t oh = output_shape_.height;
  const size_t ow = output_shape_.width;

  Matrix out(n, output_shape_.FlatSize());
  for (size_t s = 0; s < n; ++s) {
    const double* x = input.data() + s * input.cols();
    double* y = out.data() + s * out.cols();
    for (size_t k = 0; k < oc; ++k) {
      const double* ker = kernels_.data() + k * kernels_.cols();
      const double b = bias_.At(0, k);
      for (size_t oy = 0; oy < oh; ++oy) {
        for (size_t ox = 0; ox < ow; ++ox) {
          double acc = b;
          size_t widx = 0;
          for (size_t c = 0; c < ic; ++c) {
            const double* plane = x + c * ih * iw;
            for (size_t ky = 0; ky < kernel_h_; ++ky) {
              const double* in_row = plane + (oy + ky) * iw + ox;
              for (size_t kx = 0; kx < kernel_w_; ++kx) {
                acc += ker[widx++] * in_row[kx];
              }
            }
          }
          y[k * oh * ow + oy * ow + ox] = acc;
        }
      }
    }
  }
  return out;
}

Matrix Conv2dLayer::Backward(const Matrix& grad_output) {
  const size_t n = cached_input_.rows();
  const size_t ic = input_shape_.channels;
  const size_t ih = input_shape_.height;
  const size_t iw = input_shape_.width;
  const size_t oc = output_shape_.channels;
  const size_t oh = output_shape_.height;
  const size_t ow = output_shape_.width;

  Matrix grad_input(n, input_shape_.FlatSize());
  for (size_t s = 0; s < n; ++s) {
    const double* x = cached_input_.data() + s * cached_input_.cols();
    const double* gy = grad_output.data() + s * grad_output.cols();
    double* gx = grad_input.data() + s * grad_input.cols();
    for (size_t k = 0; k < oc; ++k) {
      const double* ker = kernels_.data() + k * kernels_.cols();
      double* gker = grad_kernels_.data() + k * grad_kernels_.cols();
      double gb = 0.0;
      for (size_t oy = 0; oy < oh; ++oy) {
        for (size_t ox = 0; ox < ow; ++ox) {
          const double g = gy[k * oh * ow + oy * ow + ox];
          if (g == 0.0) continue;
          gb += g;
          size_t widx = 0;
          for (size_t c = 0; c < ic; ++c) {
            const double* plane = x + c * ih * iw;
            double* gplane = gx + c * ih * iw;
            for (size_t ky = 0; ky < kernel_h_; ++ky) {
              const size_t row_off = (oy + ky) * iw + ox;
              const double* in_row = plane + row_off;
              double* gin_row = gplane + row_off;
              for (size_t kx = 0; kx < kernel_w_; ++kx) {
                gker[widx] += g * in_row[kx];
                gin_row[kx] += g * ker[widx];
                ++widx;
              }
            }
          }
        }
      }
      grad_bias_.At(0, k) += gb;
    }
  }
  return grad_input;
}

std::unique_ptr<Layer> Conv2dLayer::Clone() const {
  return std::make_unique<Conv2dLayer>(*this);
}

// ---------------------------------------------------------------------------
// MaxPool2dLayer
// ---------------------------------------------------------------------------

MaxPool2dLayer::MaxPool2dLayer(TensorShape input_shape, size_t pool_h,
                               size_t pool_w)
    : input_shape_(input_shape), pool_h_(pool_h), pool_w_(pool_w) {
  FREEWAY_DCHECK(pool_h >= 1 && pool_w >= 1);
  output_shape_.channels = input_shape.channels;
  output_shape_.height = input_shape.height / pool_h;
  output_shape_.width = input_shape.width / pool_w;
  FREEWAY_DCHECK(output_shape_.height >= 1 && output_shape_.width >= 1);
}

Matrix MaxPool2dLayer::Forward(const Matrix& input) {
  FREEWAY_DCHECK(input.cols() == input_shape_.FlatSize());
  const size_t n = input.rows();
  const size_t c = input_shape_.channels;
  const size_t ih = input_shape_.height;
  const size_t iw = input_shape_.width;
  const size_t oh = output_shape_.height;
  const size_t ow = output_shape_.width;

  cached_rows_ = n;
  argmax_.assign(n * output_shape_.FlatSize(), 0);
  Matrix out(n, output_shape_.FlatSize());
  for (size_t s = 0; s < n; ++s) {
    const double* x = input.data() + s * input.cols();
    double* y = out.data() + s * out.cols();
    uint32_t* am = argmax_.data() + s * out.cols();
    for (size_t ch = 0; ch < c; ++ch) {
      const double* plane = x + ch * ih * iw;
      for (size_t oy = 0; oy < oh; ++oy) {
        for (size_t ox = 0; ox < ow; ++ox) {
          double best = -std::numeric_limits<double>::infinity();
          size_t best_idx = 0;
          for (size_t py = 0; py < pool_h_; ++py) {
            for (size_t px = 0; px < pool_w_; ++px) {
              const size_t idx = (oy * pool_h_ + py) * iw + ox * pool_w_ + px;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = ch * ih * iw + idx;
              }
            }
          }
          const size_t oidx = ch * oh * ow + oy * ow + ox;
          y[oidx] = best;
          am[oidx] = static_cast<uint32_t>(best_idx);
        }
      }
    }
  }
  return out;
}

Matrix MaxPool2dLayer::Backward(const Matrix& grad_output) {
  FREEWAY_DCHECK(grad_output.rows() == cached_rows_);
  Matrix grad_input(cached_rows_, input_shape_.FlatSize());
  for (size_t s = 0; s < cached_rows_; ++s) {
    const double* gy = grad_output.data() + s * grad_output.cols();
    const uint32_t* am = argmax_.data() + s * grad_output.cols();
    double* gx = grad_input.data() + s * grad_input.cols();
    for (size_t j = 0; j < grad_output.cols(); ++j) {
      gx[am[j]] += gy[j];
    }
  }
  return grad_input;
}

}  // namespace freeway
