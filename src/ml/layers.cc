#include "ml/layers.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace freeway {

// ---------------------------------------------------------------------------
// DenseLayer
// ---------------------------------------------------------------------------

DenseLayer::DenseLayer(size_t in_dim, size_t out_dim, Rng* rng)
    : weight_(in_dim, out_dim),
      bias_(1, out_dim),
      grad_weight_(in_dim, out_dim),
      grad_bias_(1, out_dim) {
  const double scale = std::sqrt(2.0 / static_cast<double>(in_dim));
  for (size_t i = 0; i < in_dim; ++i) {
    for (size_t j = 0; j < out_dim; ++j) {
      weight_.At(i, j) = rng->Gaussian(0.0, scale);
    }
  }
}

Matrix DenseLayer::Forward(const Matrix& input) {
  FREEWAY_DCHECK(input.cols() == weight_.rows());
  cached_input_ = input;
  Matrix out = input.MatMul(weight_);
  for (size_t i = 0; i < out.rows(); ++i) {
    auto row = out.Row(i);
    for (size_t j = 0; j < out.cols(); ++j) row[j] += bias_.At(0, j);
  }
  return out;
}

Matrix DenseLayer::Backward(const Matrix& grad_output) {
  // dW += X^T dY ; db += colsum(dY) ; dX = dY W^T.
  Matrix gw = cached_input_.TransposeMatMul(grad_output);
  grad_weight_.AddInPlace(gw);
  for (size_t i = 0; i < grad_output.rows(); ++i) {
    auto row = grad_output.Row(i);
    for (size_t j = 0; j < grad_output.cols(); ++j) {
      grad_bias_.At(0, j) += row[j];
    }
  }
  return grad_output.MatMulTranspose(weight_);
}

std::unique_ptr<Layer> DenseLayer::Clone() const {
  return std::make_unique<DenseLayer>(*this);
}

// ---------------------------------------------------------------------------
// ReluLayer
// ---------------------------------------------------------------------------

Matrix ReluLayer::Forward(const Matrix& input) {
  cached_input_ = input;
  Matrix out = input;
  for (size_t i = 0; i < out.rows(); ++i) {
    auto row = out.Row(i);
    for (auto& v : row) {
      if (v < 0.0) v = 0.0;
    }
  }
  return out;
}

Matrix ReluLayer::Backward(const Matrix& grad_output) {
  FREEWAY_DCHECK(grad_output.SameShape(cached_input_));
  Matrix out = grad_output;
  for (size_t i = 0; i < out.rows(); ++i) {
    auto g = out.Row(i);
    auto x = cached_input_.Row(i);
    for (size_t j = 0; j < g.size(); ++j) {
      if (x[j] <= 0.0) g[j] = 0.0;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Conv2dLayer
// ---------------------------------------------------------------------------

Conv2dLayer::Conv2dLayer(TensorShape input_shape, size_t out_channels,
                         size_t kernel_h, size_t kernel_w, Rng* rng)
    : input_shape_(input_shape), kernel_h_(kernel_h), kernel_w_(kernel_w) {
  FREEWAY_DCHECK(input_shape.height >= kernel_h);
  FREEWAY_DCHECK(input_shape.width >= kernel_w);
  output_shape_.channels = out_channels;
  output_shape_.height = input_shape.height - kernel_h + 1;
  output_shape_.width = input_shape.width - kernel_w + 1;

  const size_t fan_in = input_shape.channels * kernel_h * kernel_w;
  kernels_ = Matrix(out_channels, fan_in);
  bias_ = Matrix(1, out_channels);
  grad_kernels_ = Matrix(out_channels, fan_in);
  grad_bias_ = Matrix(1, out_channels);
  const double scale = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (size_t i = 0; i < out_channels; ++i) {
    for (size_t j = 0; j < fan_in; ++j) {
      kernels_.At(i, j) = rng->Gaussian(0.0, scale);
    }
  }
}

namespace {

/// acc (m x n) += a^T b for row-major a (rows x m) and b (rows x n), as a
/// sharded reduction over the (huge) row dimension: each shard accumulates
/// a private m x n partial, partials merge in ascending shard order. The
/// shard layout depends only on the shapes, so the sum is bit-identical at
/// any thread count. This is conv backward's kernel-gradient reduction,
/// where m = out_channels and n = fan_in are far too small for
/// TransposeMatMul's row-block parallelism to split.
void AccumulateOuterProducts(const Matrix& a, const Matrix& b, Matrix* acc) {
  const size_t rows = a.rows();
  const size_t m = a.cols();
  const size_t n = b.cols();
  const size_t min_shard = (size_t{1} << 17) / std::max<size_t>(1, m * n);
  const size_t shard_rows = std::max<size_t>({size_t{1}, min_shard, rows / 64});
  const size_t num_shards = (rows + shard_rows - 1) / shard_rows;
  if (num_shards <= 1) {
    acc->AddInPlace(a.TransposeMatMul(b));
    return;
  }
  Matrix partial(num_shards * m, n);
  ParallelFor(0, rows, shard_rows, [&](size_t r0, size_t r1) {
    double* base = partial.data() + (r0 / shard_rows) * m * n;
    for (size_t r = r0; r < r1; ++r) {
      const double* a_row = a.data() + r * m;
      const double* b_row = b.data() + r * n;
      for (size_t i = 0; i < m; ++i) {
        const double v = a_row[i];
        if (v == 0.0) continue;
        double* out_row = base + i * n;
        for (size_t j = 0; j < n; ++j) out_row[j] += v * b_row[j];
      }
    }
  });
  for (size_t shard = 0; shard < num_shards; ++shard) {
    const double* base = partial.data() + shard * m * n;
    for (size_t i = 0; i < m; ++i) {
      const double* src = base + i * n;
      double* dst = acc->data() + i * n;
      for (size_t j = 0; j < n; ++j) dst[j] += src[j];
    }
  }
}

}  // namespace

size_t Conv2dLayer::SampleBlock(size_t batch_rows) const {
  // 64 MiB im2col budget: the whole batch for every tabular CNN and small
  // image batches, blocks for the rest.
  constexpr size_t kIm2colBudgetBytes = 64 * 1024 * 1024;
  const size_t patch = output_shape_.height * output_shape_.width;
  const size_t per_sample = patch * kernels_.cols() * sizeof(double);
  size_t block = kIm2colBudgetBytes / std::max<size_t>(1, per_sample);
  if (block < 1) block = 1;
  return block < batch_rows ? block : batch_rows;
}

void Conv2dLayer::FillCols(const Matrix& input, size_t s0, size_t s1,
                           Matrix* cols) const {
  const size_t ic = input_shape_.channels;
  const size_t ih = input_shape_.height;
  const size_t iw = input_shape_.width;
  const size_t oh = output_shape_.height;
  const size_t ow = output_shape_.width;
  const size_t fan_in = kernels_.cols();
  const size_t patch = oh * ow;
  ParallelFor(s0, s1, GrainForCost(patch * fan_in),
              [&](size_t b0, size_t b1) {
    for (size_t s = b0; s < b1; ++s) {
      const double* x = input.data() + s * input.cols();
      double* dst = cols->data() + (s - s0) * patch * fan_in;
      for (size_t oy = 0; oy < oh; ++oy) {
        for (size_t ox = 0; ox < ow; ++ox) {
          size_t idx = 0;
          for (size_t c = 0; c < ic; ++c) {
            const double* plane = x + c * ih * iw;
            for (size_t ky = 0; ky < kernel_h_; ++ky) {
              const double* in_row = plane + (oy + ky) * iw + ox;
              for (size_t kx = 0; kx < kernel_w_; ++kx) dst[idx++] = in_row[kx];
            }
          }
          dst += fan_in;
        }
      }
    }
  });
}

Matrix Conv2dLayer::Forward(const Matrix& input) {
  FREEWAY_DCHECK(input.cols() == input_shape_.FlatSize())
      << "Conv2dLayer::Forward: expected " << input_shape_.FlatSize()
      << " input columns, got " << input.cols();
  cached_input_ = input;
  const size_t n = input.rows();
  const size_t oc = output_shape_.channels;
  const size_t patch = output_shape_.height * output_shape_.width;
  const size_t fan_in = kernels_.cols();

  Matrix out(n, output_shape_.FlatSize());
  const size_t block = SampleBlock(n);
  for (size_t s0 = 0; s0 < n; s0 += block) {
    const size_t s1 = std::min(s0 + block, n);
    const size_t rows = (s1 - s0) * patch;
    if (col_buffer_.rows() != rows || col_buffer_.cols() != fan_in) {
      col_buffer_ = Matrix(rows, fan_in);
    }
    FillCols(input, s0, s1, &col_buffer_);
    // The whole block's convolution as one (rows x fan_in) * (fan_in x oc)
    // product on the parallel matmul kernel. The transposed kernel copy is
    // tiny and puts the kernel in axpy-friendly layout.
    Matrix prod = col_buffer_.MatMul(kernels_.Transposed());
    // Transpose each sample's (patch x oc) slab into the channel-major
    // activation layout, adding the bias.
    ParallelFor(s0, s1, GrainForCost(patch * oc), [&](size_t b0, size_t b1) {
      for (size_t s = b0; s < b1; ++s) {
        const double* p = prod.data() + (s - s0) * patch * oc;
        double* y = out.data() + s * out.cols();
        for (size_t k = 0; k < oc; ++k) {
          const double b = bias_.At(0, k);
          double* y_plane = y + k * patch;
          for (size_t q = 0; q < patch; ++q) y_plane[q] = p[q * oc + k] + b;
        }
      }
    });
  }
  return out;
}

Matrix Conv2dLayer::Backward(const Matrix& grad_output) {
  const size_t n = cached_input_.rows();
  FREEWAY_DCHECK(grad_output.rows() == n)
      << "Conv2dLayer::Backward: got " << grad_output.rows()
      << " gradient rows for " << n << " cached inputs";
  const size_t ic = input_shape_.channels;
  const size_t ih = input_shape_.height;
  const size_t iw = input_shape_.width;
  const size_t oc = output_shape_.channels;
  const size_t oh = output_shape_.height;
  const size_t ow = output_shape_.width;
  const size_t patch = oh * ow;
  const size_t fan_in = kernels_.cols();

  Matrix grad_input(n, input_shape_.FlatSize());
  const size_t block = SampleBlock(n);
  // Forward on a single-block batch leaves col_buffer_ holding exactly this
  // batch's patches; multi-block batches rebuild per block.
  const bool cols_cached = block >= n;
  for (size_t s0 = 0; s0 < n; s0 += block) {
    const size_t s1 = std::min(s0 + block, n);
    const size_t rows = (s1 - s0) * patch;
    if (!cols_cached) {
      if (col_buffer_.rows() != rows || col_buffer_.cols() != fan_in) {
        col_buffer_ = Matrix(rows, fan_in);
      }
      FillCols(cached_input_, s0, s1, &col_buffer_);
    }
    // Gather dY into matmul layout: one row per output position.
    Matrix dprod(rows, oc);
    ParallelFor(s0, s1, GrainForCost(patch * oc), [&](size_t b0, size_t b1) {
      for (size_t s = b0; s < b1; ++s) {
        const double* gy = grad_output.data() + s * grad_output.cols();
        double* d = dprod.data() + (s - s0) * patch * oc;
        for (size_t k = 0; k < oc; ++k) {
          const double* g_plane = gy + k * patch;
          for (size_t q = 0; q < patch; ++q) d[q * oc + k] = g_plane[q];
        }
      }
    });
    // Parameter gradients: dK += dY^T cols ; db += column sums of dY.
    AccumulateOuterProducts(dprod, col_buffer_, &grad_kernels_);
    for (size_t r = 0; r < rows; ++r) {
      const double* d = dprod.data() + r * oc;
      for (size_t k = 0; k < oc; ++k) grad_bias_.At(0, k) += d[k];
    }
    // dX: scatter dY * K back through each receptive field (col2im).
    Matrix dcols = dprod.MatMul(kernels_);
    ParallelFor(s0, s1, GrainForCost(patch * fan_in),
                [&](size_t b0, size_t b1) {
      for (size_t s = b0; s < b1; ++s) {
        const double* src = dcols.data() + (s - s0) * patch * fan_in;
        double* gx = grad_input.data() + s * grad_input.cols();
        for (size_t oy = 0; oy < oh; ++oy) {
          for (size_t ox = 0; ox < ow; ++ox) {
            size_t idx = 0;
            for (size_t c = 0; c < ic; ++c) {
              double* gplane = gx + c * ih * iw;
              for (size_t ky = 0; ky < kernel_h_; ++ky) {
                double* gin_row = gplane + (oy + ky) * iw + ox;
                for (size_t kx = 0; kx < kernel_w_; ++kx) {
                  gin_row[kx] += src[idx++];
                }
              }
            }
            src += fan_in;
          }
        }
      }
    });
  }
  return grad_input;
}

std::unique_ptr<Layer> Conv2dLayer::Clone() const {
  return std::make_unique<Conv2dLayer>(*this);
}

// ---------------------------------------------------------------------------
// MaxPool2dLayer
// ---------------------------------------------------------------------------

MaxPool2dLayer::MaxPool2dLayer(TensorShape input_shape, size_t pool_h,
                               size_t pool_w)
    : input_shape_(input_shape), pool_h_(pool_h), pool_w_(pool_w) {
  FREEWAY_DCHECK(pool_h >= 1 && pool_w >= 1);
  output_shape_.channels = input_shape.channels;
  output_shape_.height = input_shape.height / pool_h;
  output_shape_.width = input_shape.width / pool_w;
  FREEWAY_DCHECK(output_shape_.height >= 1 && output_shape_.width >= 1);
}

Matrix MaxPool2dLayer::Forward(const Matrix& input) {
  FREEWAY_DCHECK(input.cols() == input_shape_.FlatSize());
  const size_t n = input.rows();
  const size_t c = input_shape_.channels;
  const size_t ih = input_shape_.height;
  const size_t iw = input_shape_.width;
  const size_t oh = output_shape_.height;
  const size_t ow = output_shape_.width;

  cached_rows_ = n;
  argmax_.assign(n * output_shape_.FlatSize(), 0);
  Matrix out(n, output_shape_.FlatSize());
  for (size_t s = 0; s < n; ++s) {
    const double* x = input.data() + s * input.cols();
    double* y = out.data() + s * out.cols();
    uint32_t* am = argmax_.data() + s * out.cols();
    for (size_t ch = 0; ch < c; ++ch) {
      const double* plane = x + ch * ih * iw;
      for (size_t oy = 0; oy < oh; ++oy) {
        for (size_t ox = 0; ox < ow; ++ox) {
          double best = -std::numeric_limits<double>::infinity();
          size_t best_idx = 0;
          for (size_t py = 0; py < pool_h_; ++py) {
            for (size_t px = 0; px < pool_w_; ++px) {
              const size_t idx = (oy * pool_h_ + py) * iw + ox * pool_w_ + px;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = ch * ih * iw + idx;
              }
            }
          }
          const size_t oidx = ch * oh * ow + oy * ow + ox;
          y[oidx] = best;
          am[oidx] = static_cast<uint32_t>(best_idx);
        }
      }
    }
  }
  return out;
}

Matrix MaxPool2dLayer::Backward(const Matrix& grad_output) {
  FREEWAY_DCHECK(grad_output.rows() == cached_rows_);
  Matrix grad_input(cached_rows_, input_shape_.FlatSize());
  for (size_t s = 0; s < cached_rows_; ++s) {
    const double* gy = grad_output.data() + s * grad_output.cols();
    const uint32_t* am = argmax_.data() + s * grad_output.cols();
    double* gx = grad_input.data() + s * grad_input.cols();
    for (size_t j = 0; j < grad_output.cols(); ++j) {
      gx[am[j]] += gy[j];
    }
  }
  return grad_input;
}

}  // namespace freeway
