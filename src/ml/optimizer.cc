#include "ml/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace freeway {
namespace {

double SoftThreshold(double x, double threshold) {
  if (x > threshold) return x - threshold;
  if (x < -threshold) return x + threshold;
  return 0.0;
}

}  // namespace

void SgdOptimizer::Step(const std::vector<Matrix*>& params,
                        const std::vector<Matrix*>& grads) {
  FREEWAY_DCHECK(params.size() == grads.size());
  if (momentum_ == 0.0) {
    for (size_t i = 0; i < params.size(); ++i) {
      Matrix* p = params[i];
      const Matrix* g = grads[i];
      if (l2_ != 0.0) p->ScaleInPlace(1.0 - lr_ * l2_);
      p->Axpy(-lr_, *g);
    }
    return;
  }
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (const Matrix* p : params) velocity_.emplace_back(p->rows(), p->cols());
  }
  for (size_t i = 0; i < params.size(); ++i) {
    Matrix* p = params[i];
    Matrix* v = &velocity_[i];
    const Matrix* g = grads[i];
    v->ScaleInPlace(momentum_);
    v->Axpy(1.0, *g);
    if (l2_ != 0.0) p->ScaleInPlace(1.0 - lr_ * l2_);
    p->Axpy(-lr_, *v);
  }
}

void FobosOptimizer::Step(const std::vector<Matrix*>& params,
                          const std::vector<Matrix*>& grads) {
  FREEWAY_DCHECK(params.size() == grads.size());
  const double shrink = lr_ * l1_;
  for (size_t i = 0; i < params.size(); ++i) {
    Matrix* p = params[i];
    const Matrix* g = grads[i];
    for (size_t r = 0; r < p->rows(); ++r) {
      auto prow = p->Row(r);
      auto grow = g->Row(r);
      for (size_t c = 0; c < prow.size(); ++c) {
        prow[c] = SoftThreshold(prow[c] - lr_ * grow[c], shrink);
      }
    }
  }
}

void RdaOptimizer::Step(const std::vector<Matrix*>& params,
                        const std::vector<Matrix*>& grads) {
  FREEWAY_DCHECK(params.size() == grads.size());
  if (grad_sum_.size() != params.size()) {
    grad_sum_.clear();
    for (const Matrix* p : params) grad_sum_.emplace_back(p->rows(), p->cols());
    steps_ = 0;
  }
  ++steps_;
  const double t = static_cast<double>(steps_);
  // theta = -(sqrt(t)/gamma) * shrink(gbar, l1), with gbar the running mean.
  const double step_scale = std::sqrt(t) / gamma_;
  for (size_t i = 0; i < params.size(); ++i) {
    grad_sum_[i].AddInPlace(*grads[i]);
    Matrix* p = params[i];
    for (size_t r = 0; r < p->rows(); ++r) {
      auto prow = p->Row(r);
      auto srow = grad_sum_[i].Row(r);
      for (size_t c = 0; c < prow.size(); ++c) {
        const double mean_grad = srow[c] / t;
        prow[c] = -step_scale * SoftThreshold(mean_grad, l1_);
      }
    }
  }
}

}  // namespace freeway
