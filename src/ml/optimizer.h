#ifndef FREEWAYML_ML_OPTIMIZER_H_
#define FREEWAYML_ML_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace freeway {

/// First-order optimizer updating a set of parameter matrices in place from
/// matching gradient matrices (gradients are batch means). Stateful
/// optimizers (momentum, RDA) size their slots lazily on first use.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;

  /// Applies one step. `params[i]` and `grads[i]` must have equal shapes,
  /// and the same layout must be passed on every call.
  virtual void Step(const std::vector<Matrix*>& params,
                    const std::vector<Matrix*>& grads) = 0;

  virtual std::unique_ptr<Optimizer> Clone() const = 0;

  virtual double learning_rate() const = 0;
};

/// Plain mini-batch SGD with optional momentum and L2 weight decay — the
/// update rule all the streaming systems in the paper build on.
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(double lr, double momentum = 0.0, double l2 = 0.0)
      : lr_(lr), momentum_(momentum), l2_(l2) {}

  std::string name() const override { return "SGD"; }
  void Step(const std::vector<Matrix*>& params,
            const std::vector<Matrix*>& grads) override;
  std::unique_ptr<Optimizer> Clone() const override {
    return std::make_unique<SgdOptimizer>(*this);
  }
  double learning_rate() const override { return lr_; }

 private:
  double lr_, momentum_, l2_;
  std::vector<Matrix> velocity_;
};

/// FOBOS (forward-backward splitting) with L1 shrinkage: a gradient step
/// followed by soft-thresholding. Used by the Alink baseline's streaming LR.
class FobosOptimizer : public Optimizer {
 public:
  FobosOptimizer(double lr, double l1) : lr_(lr), l1_(l1) {}

  std::string name() const override { return "FOBOS"; }
  void Step(const std::vector<Matrix*>& params,
            const std::vector<Matrix*>& grads) override;
  std::unique_ptr<Optimizer> Clone() const override {
    return std::make_unique<FobosOptimizer>(*this);
  }
  double learning_rate() const override { return lr_; }

 private:
  double lr_, l1_;
};

/// Regularized Dual Averaging: parameters are re-derived each step from the
/// running mean gradient with L1 shrinkage, giving sparser and more stable
/// streaming solutions. Also part of the Alink baseline.
class RdaOptimizer : public Optimizer {
 public:
  RdaOptimizer(double gamma, double l1) : gamma_(gamma), l1_(l1) {}

  std::string name() const override { return "RDA"; }
  void Step(const std::vector<Matrix*>& params,
            const std::vector<Matrix*>& grads) override;
  std::unique_ptr<Optimizer> Clone() const override {
    return std::make_unique<RdaOptimizer>(*this);
  }
  double learning_rate() const override { return gamma_; }

 private:
  double gamma_, l1_;
  size_t steps_ = 0;
  std::vector<Matrix> grad_sum_;
};

}  // namespace freeway

#endif  // FREEWAYML_ML_OPTIMIZER_H_
