#ifndef FREEWAYML_ML_MODEL_H_
#define FREEWAYML_ML_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace freeway {

/// Abstract incremental classifier. Everything FreewayML and the baseline
/// systems do — multi-granularity ensembles, knowledge snapshots, gradient
/// projection — goes through this interface, so any model trained by
/// mini-batch gradient steps plugs in.
class Model {
 public:
  virtual ~Model() = default;

  /// Human-readable model family, e.g. "StreamingLR".
  virtual std::string name() const = 0;

  virtual size_t input_dim() const = 0;
  virtual size_t num_classes() const = 0;

  /// Class-probability matrix (rows = samples, cols = classes). Rows sum to 1.
  virtual Result<Matrix> PredictProba(const Matrix& x) = 0;

  /// Argmax class ids for each row of `x`.
  Result<std::vector<int>> Predict(const Matrix& x);

  /// One incremental update on a labeled mini-batch; returns the mean
  /// cross-entropy loss *before* the update (the standard SGD step loss).
  virtual Result<double> TrainBatch(const Matrix& x,
                                    const std::vector<int>& y) = 0;

  /// Computes the parameter gradient on (x, y) WITHOUT applying an update,
  /// writing it into `grad` (resized to ParameterCount()). Used by A-GEM and
  /// the pre-computing window. Returns the mean loss.
  virtual Result<double> ComputeGradient(const Matrix& x,
                                         const std::vector<int>& y,
                                         std::vector<double>* grad) = 0;

  /// Applies `step` as a raw additive parameter update: theta += step.
  /// `step` must have ParameterCount() entries (caller folds in -lr).
  virtual Status ApplyStep(std::span<const double> step) = 0;

  /// Total number of trainable scalars.
  virtual size_t ParameterCount() const = 0;

  /// Flattened copy of all parameters (deterministic layout).
  virtual std::vector<double> GetParameters() const = 0;

  /// Restores parameters from a flat vector produced by GetParameters().
  virtual Status SetParameters(std::span<const double> params) = 0;

  /// Deep copy with identical parameters and hyperparameters.
  virtual std::unique_ptr<Model> Clone() const = 0;

  /// Serialized parameter size in bytes (used for the knowledge-space
  /// accounting of Table IV): parameters as 8-byte doubles plus a small
  /// fixed header.
  size_t SerializedBytes() const { return 16 + 8 * ParameterCount(); }
};

/// Fraction of rows of `x` whose Predict() matches `y` — the paper's
/// real-time accuracy (Eq. 1) when applied batch-by-batch.
Result<double> Accuracy(Model* model, const Matrix& x,
                        const std::vector<int>& y);

}  // namespace freeway

#endif  // FREEWAYML_ML_MODEL_H_
