#include "ml/models.h"

#include "ml/sequential.h"

namespace freeway {

std::unique_ptr<Model> MakeLogisticRegression(size_t input_dim,
                                              size_t num_classes,
                                              const ModelConfig& config) {
  Rng rng(config.seed);
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<DenseLayer>(input_dim, num_classes, &rng));
  return std::make_unique<SequentialModel>(
      "StreamingLR", input_dim, num_classes, std::move(layers),
      std::make_unique<SgdOptimizer>(config.learning_rate, config.momentum,
                                     config.l2));
}

std::unique_ptr<Model> MakeMlp(size_t input_dim, size_t num_classes,
                               const ModelConfig& config) {
  Rng rng(config.seed);
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(
      std::make_unique<DenseLayer>(input_dim, config.hidden_dim, &rng));
  layers.push_back(std::make_unique<ReluLayer>());
  layers.push_back(
      std::make_unique<DenseLayer>(config.hidden_dim, num_classes, &rng));
  return std::make_unique<SequentialModel>(
      "StreamingMLP", input_dim, num_classes, std::move(layers),
      std::make_unique<SgdOptimizer>(config.learning_rate, config.momentum,
                                     config.l2));
}

std::unique_ptr<Model> MakeLogisticRegressionWithOptimizer(
    size_t input_dim, size_t num_classes, std::unique_ptr<Optimizer> optimizer,
    uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<DenseLayer>(input_dim, num_classes, &rng));
  return std::make_unique<SequentialModel>("StreamingLR", input_dim,
                                           num_classes, std::move(layers),
                                           std::move(optimizer));
}

std::unique_ptr<Model> MakeTabularCnn(size_t input_dim, size_t num_classes,
                                      const ModelConfig& config) {
  Rng rng(config.seed);
  std::vector<std::unique_ptr<Layer>> layers;
  const TensorShape in{1, 1, input_dim};
  // Kernel and pool shrink gracefully for very narrow feature vectors
  // (e.g. SEA's 3 features): the kernel never exceeds the width, and
  // pooling is skipped when it would collapse the activation to nothing.
  const size_t kernel_w = input_dim >= 3 ? 3 : input_dim;
  auto conv = std::make_unique<Conv2dLayer>(in, /*out_channels=*/32,
                                            /*kernel_h=*/1, kernel_w, &rng);
  TensorShape tail_shape = conv->output_shape();
  layers.push_back(std::move(conv));
  layers.push_back(std::make_unique<ReluLayer>());
  if (tail_shape.width >= 2) {
    auto pool = std::make_unique<MaxPool2dLayer>(tail_shape, /*pool_h=*/1,
                                                 /*pool_w=*/2);
    tail_shape = pool->output_shape();
    layers.push_back(std::move(pool));
  }
  layers.push_back(
      std::make_unique<DenseLayer>(tail_shape.FlatSize(), num_classes, &rng));
  return std::make_unique<SequentialModel>(
      "StreamingCNN", input_dim, num_classes, std::move(layers),
      std::make_unique<SgdOptimizer>(config.learning_rate, config.momentum,
                                     config.l2));
}

std::unique_ptr<Model> MakeImageCnn(TensorShape input_shape,
                                    size_t num_classes,
                                    const ModelConfig& config) {
  Rng rng(config.seed);
  std::vector<std::unique_ptr<Layer>> layers;

  auto conv1 = std::make_unique<Conv2dLayer>(input_shape, /*out_channels=*/64,
                                             3, 3, &rng);
  const TensorShape c1 = conv1->output_shape();
  layers.push_back(std::move(conv1));
  layers.push_back(std::make_unique<ReluLayer>());
  auto pool1 = std::make_unique<MaxPool2dLayer>(c1, 2, 2);
  const TensorShape p1 = pool1->output_shape();
  layers.push_back(std::move(pool1));

  auto conv2 = std::make_unique<Conv2dLayer>(p1, /*out_channels=*/64, 3, 3,
                                             &rng);
  const TensorShape c2 = conv2->output_shape();
  layers.push_back(std::move(conv2));
  layers.push_back(std::make_unique<ReluLayer>());
  auto pool2 = std::make_unique<MaxPool2dLayer>(c2, 2, 2);
  const TensorShape p2 = pool2->output_shape();
  layers.push_back(std::move(pool2));

  layers.push_back(
      std::make_unique<DenseLayer>(p2.FlatSize(), num_classes, &rng));
  return std::make_unique<SequentialModel>(
      "StreamingCNN5", input_shape.FlatSize(), num_classes, std::move(layers),
      std::make_unique<SgdOptimizer>(config.learning_rate, config.momentum,
                                     config.l2));
}

}  // namespace freeway
