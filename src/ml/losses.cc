#include "ml/losses.h"

#include <cmath>

#include "common/logging.h"

namespace freeway {

Matrix Softmax(const Matrix& logits) {
  Matrix out = logits;
  for (size_t i = 0; i < out.rows(); ++i) {
    auto row = out.Row(i);
    double max_v = row[0];
    for (double v : row) max_v = v > max_v ? v : max_v;
    double sum = 0.0;
    for (auto& v : row) {
      v = std::exp(v - max_v);
      sum += v;
    }
    const double inv = 1.0 / sum;
    for (auto& v : row) v *= inv;
  }
  return out;
}

double SoftmaxCrossEntropyLoss(const Matrix& logits,
                               const std::vector<int>& labels) {
  FREEWAY_DCHECK(logits.rows() == labels.size());
  const Matrix probs = Softmax(logits);
  double loss = 0.0;
  for (size_t i = 0; i < probs.rows(); ++i) {
    const int y = labels[i];
    FREEWAY_DCHECK(y >= 0 && static_cast<size_t>(y) < probs.cols());
    loss -= std::log(probs.At(i, static_cast<size_t>(y)) + 1e-12);
  }
  return loss / static_cast<double>(probs.rows());
}

Matrix SoftmaxCrossEntropyGrad(const Matrix& logits,
                               const std::vector<int>& labels) {
  FREEWAY_DCHECK(logits.rows() == labels.size());
  Matrix grad = Softmax(logits);
  const double inv_n = 1.0 / static_cast<double>(grad.rows());
  for (size_t i = 0; i < grad.rows(); ++i) {
    auto row = grad.Row(i);
    row[static_cast<size_t>(labels[i])] -= 1.0;
    for (auto& v : row) v *= inv_n;
  }
  return grad;
}

}  // namespace freeway
