#ifndef FREEWAYML_ML_MODELS_H_
#define FREEWAYML_ML_MODELS_H_

#include <memory>

#include "ml/layers.h"
#include "ml/model.h"
#include "ml/optimizer.h"

namespace freeway {

/// Common hyperparameters for the streaming models used throughout the
/// paper's evaluation. Defaults match the experimental setup (mini-batch SGD,
/// small sensitive models).
struct ModelConfig {
  double learning_rate = 0.2;
  double momentum = 0.0;
  double l2 = 0.0;
  size_t hidden_dim = 64;   ///< MLP hidden width.
  uint64_t seed = 42;       ///< Weight-init seed.
};

/// Streaming (multinomial) Logistic Regression: a single dense layer trained
/// with softmax cross-entropy — the paper's representative linear model.
std::unique_ptr<Model> MakeLogisticRegression(size_t input_dim,
                                              size_t num_classes,
                                              const ModelConfig& config = {});

/// Streaming MLP: Dense -> ReLU -> Dense — the paper's representative
/// nonlinear model.
std::unique_ptr<Model> MakeMlp(size_t input_dim, size_t num_classes,
                               const ModelConfig& config = {});

/// Variant of MakeLogisticRegression that swaps in a caller-supplied
/// optimizer (FOBOS / RDA for the Alink baseline).
std::unique_ptr<Model> MakeLogisticRegressionWithOptimizer(
    size_t input_dim, size_t num_classes, std::unique_ptr<Optimizer> optimizer,
    uint64_t seed = 42);

/// Three-layer streaming CNN for tabular (value) streams, matching the
/// appendix: Conv(32 kernels, width 3) -> ReLU -> MaxPool(2) -> Dense.
/// Tabular rows are treated as 1 x 1 x input_dim images.
std::unique_ptr<Model> MakeTabularCnn(size_t input_dim, size_t num_classes,
                                      const ModelConfig& config = {});

/// Five-layer streaming CNN for image streams, matching the appendix:
/// 2 x [Conv(64, 3x3) -> ReLU -> MaxPool(2x2)] -> Dense.
std::unique_ptr<Model> MakeImageCnn(TensorShape input_shape,
                                    size_t num_classes,
                                    const ModelConfig& config = {});

}  // namespace freeway

#endif  // FREEWAYML_ML_MODELS_H_
