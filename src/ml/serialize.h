#ifndef FREEWAYML_ML_SERIALIZE_H_
#define FREEWAYML_ML_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ml/model.h"

namespace freeway {

/// Binary snapshot of a model's parameters. The format is a fixed header
/// (magic, version, parameter count) followed by raw little-endian doubles —
/// deliberately architecture-free: a snapshot restores into any model with
/// the same ParameterCount(), which is how the knowledge store treats
/// parameters too.
struct ModelSnapshot {
  std::vector<double> parameters;
};

/// Serializes `model`'s parameters into `out` (cleared first).
void SerializeModel(const Model& model, std::vector<char>* out);

/// Parses a buffer produced by SerializeModel. Fails with InvalidArgument on
/// a bad magic/version or a truncated buffer.
Result<ModelSnapshot> DeserializeModel(const std::vector<char>& buffer);

/// Writes `model`'s snapshot to `path` (overwrites).
Status SaveModelToFile(const Model& model, const std::string& path);

/// Reads a snapshot from `path` and loads it into `model`. Fails if the
/// parameter count does not match the model's architecture.
Status LoadModelFromFile(const std::string& path, Model* model);

}  // namespace freeway

#endif  // FREEWAYML_ML_SERIALIZE_H_
