#ifndef FREEWAYML_ML_SEQUENTIAL_H_
#define FREEWAYML_ML_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/layers.h"
#include "ml/model.h"
#include "ml/optimizer.h"

namespace freeway {

/// A feed-forward stack of Layers trained by softmax cross-entropy with a
/// pluggable Optimizer. All concrete models in this library (StreamingLR,
/// StreamingMLP, StreamingCNN) are SequentialModels; see models.h for the
/// factories that assemble them.
class SequentialModel : public Model {
 public:
  /// Takes ownership of `layers` and `optimizer`. The last layer's output
  /// width must equal `num_classes` (logits).
  SequentialModel(std::string name, size_t input_dim, size_t num_classes,
                  std::vector<std::unique_ptr<Layer>> layers,
                  std::unique_ptr<Optimizer> optimizer);

  SequentialModel(const SequentialModel& other);
  SequentialModel& operator=(const SequentialModel&) = delete;

  std::string name() const override { return name_; }
  size_t input_dim() const override { return input_dim_; }
  size_t num_classes() const override { return num_classes_; }

  Result<Matrix> PredictProba(const Matrix& x) override;
  Result<double> TrainBatch(const Matrix& x,
                            const std::vector<int>& y) override;
  Result<double> ComputeGradient(const Matrix& x, const std::vector<int>& y,
                                 std::vector<double>* grad) override;
  Status ApplyStep(std::span<const double> step) override;

  size_t ParameterCount() const override;
  std::vector<double> GetParameters() const override;
  Status SetParameters(std::span<const double> params) override;
  std::unique_ptr<Model> Clone() const override;

  /// Access to the optimizer, e.g. to read the learning rate.
  const Optimizer& optimizer() const { return *optimizer_; }

 private:
  Status ValidateBatch(const Matrix& x, const std::vector<int>* y) const;
  /// Forward pass producing logits.
  Matrix ForwardLogits(const Matrix& x);
  std::vector<Matrix*> AllParams() const;
  std::vector<Matrix*> AllGrads() const;

  std::string name_;
  size_t input_dim_;
  size_t num_classes_;
  std::vector<std::unique_ptr<Layer>> layers_;
  std::unique_ptr<Optimizer> optimizer_;
};

}  // namespace freeway

#endif  // FREEWAYML_ML_SEQUENTIAL_H_
