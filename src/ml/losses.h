#ifndef FREEWAYML_ML_LOSSES_H_
#define FREEWAYML_ML_LOSSES_H_

#include <vector>

#include "linalg/matrix.h"

namespace freeway {

/// Row-wise numerically-stable softmax of a logit matrix.
Matrix Softmax(const Matrix& logits);

/// Mean cross-entropy of softmax(logits) against integer labels.
/// `labels[i]` must lie in [0, logits.cols()).
double SoftmaxCrossEntropyLoss(const Matrix& logits,
                               const std::vector<int>& labels);

/// Gradient of the mean softmax cross-entropy w.r.t. the logits:
/// (softmax(logits) - onehot(labels)) / n. Combined with the layers'
/// sum-accumulating backprop this yields batch-mean parameter gradients.
Matrix SoftmaxCrossEntropyGrad(const Matrix& logits,
                               const std::vector<int>& labels);

}  // namespace freeway

#endif  // FREEWAYML_ML_LOSSES_H_
