#include "ml/feature_extractor.h"

#include <cmath>

namespace freeway {

RandomProjectionExtractor::RandomProjectionExtractor(size_t input_dim,
                                                     size_t feature_dim,
                                                     uint64_t seed)
    : projection_(input_dim, feature_dim) {
  Rng rng(seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(input_dim));
  for (size_t i = 0; i < input_dim; ++i) {
    for (size_t j = 0; j < feature_dim; ++j) {
      projection_.At(i, j) = rng.Gaussian(0.0, scale);
    }
  }
}

Result<Matrix> RandomProjectionExtractor::Extract(const Matrix& batch) const {
  if (batch.cols() != projection_.rows()) {
    return Status::InvalidArgument("Extract: dimension mismatch");
  }
  Matrix out = batch.MatMul(projection_);
  for (size_t i = 0; i < out.rows(); ++i) {
    for (auto& v : out.Row(i)) {
      if (v < 0.0) v = 0.0;
    }
  }
  return out;
}

}  // namespace freeway
