#ifndef FREEWAYML_CLUSTERING_KMEANS_H_
#define FREEWAYML_CLUSTERING_KMEANS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace freeway {

/// Result of a k-means run.
struct KMeansResult {
  /// k x dim centroid matrix.
  Matrix centroids;
  /// Cluster id per input row.
  std::vector<int> assignments;
  /// Final within-cluster sum of squared distances.
  double inertia = 0.0;
  /// Lloyd iterations executed.
  int iterations = 0;
};

/// Options for KMeans::Run.
struct KMeansOptions {
  int max_iterations = 50;
  /// Converged when no assignment changes or centroid movement (max over
  /// clusters, Euclidean) drops below this.
  double tolerance = 1e-6;
  uint64_t seed = 42;
};

/// Lloyd's k-means with k-means++ seeding and empty-cluster repair (an empty
/// cluster is re-seeded on the point farthest from its centroid). This is
/// the unsupervised engine behind coherent experience clustering.
Result<KMeansResult> KMeans(const Matrix& points, size_t k,
                            const KMeansOptions& options = {});

/// Assigns each row of `points` to its nearest centroid.
std::vector<int> AssignToCentroids(const Matrix& points,
                                   const Matrix& centroids);

}  // namespace freeway

#endif  // FREEWAYML_CLUSTERING_KMEANS_H_
