#include "clustering/kmeans.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace freeway {
namespace {

/// k-means++ seeding: first center uniform, subsequent centers sampled
/// proportionally to squared distance from the nearest existing center.
Matrix SeedPlusPlus(const Matrix& points, size_t k, Rng* rng) {
  const size_t n = points.rows();
  const size_t dim = points.cols();
  Matrix centroids(k, dim);

  size_t first = static_cast<size_t>(rng->NextBelow(n));
  centroids.SetRow(0, points.Row(first));

  std::vector<double> dist2(n, std::numeric_limits<double>::infinity());
  for (size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d2 =
          vec::SquaredDistance(points.Row(i), centroids.Row(c - 1));
      if (d2 < dist2[i]) dist2[i] = d2;
      total += dist2[i];
    }
    size_t chosen = n - 1;
    if (total > 0.0) {
      double target = rng->NextDouble() * total;
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        acc += dist2[i];
        if (acc >= target) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<size_t>(rng->NextBelow(n));
    }
    centroids.SetRow(c, points.Row(chosen));
  }
  return centroids;
}

}  // namespace

std::vector<int> AssignToCentroids(const Matrix& points,
                                   const Matrix& centroids) {
  std::vector<int> out(points.rows(), 0);
  for (size_t i = 0; i < points.rows(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    int best_c = 0;
    for (size_t c = 0; c < centroids.rows(); ++c) {
      const double d2 = vec::SquaredDistance(points.Row(i), centroids.Row(c));
      if (d2 < best) {
        best = d2;
        best_c = static_cast<int>(c);
      }
    }
    out[i] = best_c;
  }
  return out;
}

Result<KMeansResult> KMeans(const Matrix& points, size_t k,
                            const KMeansOptions& options) {
  const size_t n = points.rows();
  const size_t dim = points.cols();
  if (k == 0) return Status::InvalidArgument("KMeans: k must be positive");
  if (n == 0) return Status::InvalidArgument("KMeans: no points");
  if (n < k) {
    return Status::InvalidArgument("KMeans: fewer points (" +
                                   std::to_string(n) + ") than clusters (" +
                                   std::to_string(k) + ")");
  }

  Rng rng(options.seed);
  KMeansResult result;
  result.centroids = SeedPlusPlus(points, k, &rng);
  result.assignments.assign(n, -1);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    bool changed = false;
    std::vector<int> counts(k, 0);
    Matrix sums(k, dim);
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const double d2 =
            vec::SquaredDistance(points.Row(i), result.centroids.Row(c));
        if (d2 < best) {
          best = d2;
          best_c = static_cast<int>(c);
        }
      }
      if (result.assignments[i] != best_c) {
        result.assignments[i] = best_c;
        changed = true;
      }
      ++counts[static_cast<size_t>(best_c)];
      auto sum_row = sums.Row(static_cast<size_t>(best_c));
      auto p_row = points.Row(i);
      for (size_t d = 0; d < dim; ++d) sum_row[d] += p_row[d];
    }

    // Update step with empty-cluster repair.
    double max_move = 0.0;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed on the point farthest from its current centroid.
        double worst = -1.0;
        size_t worst_i = 0;
        for (size_t i = 0; i < n; ++i) {
          const int a = result.assignments[i];
          const double d2 = vec::SquaredDistance(
              points.Row(i), result.centroids.Row(static_cast<size_t>(a)));
          if (d2 > worst) {
            worst = d2;
            worst_i = i;
          }
        }
        result.centroids.SetRow(c, points.Row(worst_i));
        changed = true;
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      std::vector<double> new_center(dim);
      auto sum_row = sums.Row(c);
      for (size_t d = 0; d < dim; ++d) new_center[d] = sum_row[d] * inv;
      const double move =
          vec::EuclideanDistance(new_center, result.centroids.Row(c));
      max_move = move > max_move ? move : max_move;
      result.centroids.SetRow(c, new_center);
    }

    if (!changed || max_move < options.tolerance) break;
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia += vec::SquaredDistance(
        points.Row(i),
        result.centroids.Row(static_cast<size_t>(result.assignments[i])));
  }
  return result;
}

}  // namespace freeway
