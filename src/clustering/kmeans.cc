#include "clustering/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "linalg/simd.h"

namespace freeway {
namespace {

/// Index of the centroid nearest to `point` — the dispatched assignment
/// microkernel (raw-pointer scan with early abandonment in scalar mode,
/// AVX2/FMA distances when available).
int NearestCentroid(std::span<const double> point, const Matrix& centroids) {
  return simd::NearestCentroid(point.data(), centroids.data(),
                               centroids.rows(), centroids.cols());
}

/// Points per parallel chunk for a pass that scans all k centroids per
/// point. Shape-only, so the chunk/shard layout is thread-count invariant.
size_t AssignGrain(size_t k, size_t dim) { return GrainForCost(k * dim); }

/// k-means++ seeding: first center uniform, subsequent centers sampled
/// proportionally to squared distance from the nearest existing center.
Matrix SeedPlusPlus(const Matrix& points, size_t k, Rng* rng) {
  const size_t n = points.rows();
  const size_t dim = points.cols();
  Matrix centroids(k, dim);

  size_t first = static_cast<size_t>(rng->NextBelow(n));
  centroids.SetRow(0, points.Row(first));

  std::vector<double> dist2(n, std::numeric_limits<double>::infinity());
  for (size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d2 =
          vec::SquaredDistance(points.Row(i), centroids.Row(c - 1));
      if (d2 < dist2[i]) dist2[i] = d2;
      total += dist2[i];
    }
    size_t chosen = n - 1;
    if (total > 0.0) {
      double target = rng->NextDouble() * total;
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        acc += dist2[i];
        if (acc >= target) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<size_t>(rng->NextBelow(n));
    }
    centroids.SetRow(c, points.Row(chosen));
  }
  return centroids;
}

}  // namespace

std::vector<int> AssignToCentroids(const Matrix& points,
                                   const Matrix& centroids) {
  const size_t dim = points.cols();
  std::vector<int> out(points.rows(), 0);
  // Batch kernel per chunk: dispatch resolves once and the per-point scan
  // inlines inside the kernel, so the chunk loop carries no call overhead.
  ParallelFor(0, points.rows(), AssignGrain(centroids.rows(), dim),
              [&](size_t p0, size_t p1) {
                simd::NearestCentroids(points.data() + p0 * dim, p1 - p0,
                                       centroids.data(), centroids.rows(),
                                       dim, out.data() + p0);
              });
  return out;
}

Result<KMeansResult> KMeans(const Matrix& points, size_t k,
                            const KMeansOptions& options) {
  const size_t n = points.rows();
  const size_t dim = points.cols();
  if (k == 0) return Status::InvalidArgument("KMeans: k must be positive");
  if (n == 0) return Status::InvalidArgument("KMeans: no points");
  if (n < k) {
    return Status::InvalidArgument("KMeans: fewer points (" +
                                   std::to_string(n) + ") than clusters (" +
                                   std::to_string(k) + ")");
  }

  Rng rng(options.seed);
  KMeansResult result;
  result.centroids = SeedPlusPlus(points, k, &rng);
  result.assignments.assign(n, -1);

  // Shard layout of the parallel assignment/accumulation pass. Each shard
  // owns one contiguous point range and accumulates private per-center
  // counts/sums; partials merge in ascending shard order, so the pass is
  // bit-identical at every thread count (shard boundaries depend only on
  // the problem shape).
  const size_t grain = AssignGrain(k, dim);
  const size_t num_shards = (n + grain - 1) / grain;
  std::vector<int> shard_counts(num_shards * k);
  Matrix shard_sums(num_shards * k, dim);
  std::vector<char> shard_changed(num_shards);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step: nearest centroid per point plus per-center
    // accumulation (shared with CEC, whose clusters feed label histograms).
    std::fill(shard_counts.begin(), shard_counts.end(), 0);
    shard_sums.Fill(0.0);
    std::fill(shard_changed.begin(), shard_changed.end(), 0);
    ParallelFor(0, n, grain, [&](size_t p0, size_t p1) {
      const size_t shard = p0 / grain;
      int* counts = shard_counts.data() + shard * k;
      bool shard_moved = false;
      for (size_t i = p0; i < p1; ++i) {
        const int best_c = NearestCentroid(points.Row(i), result.centroids);
        if (result.assignments[i] != best_c) {
          result.assignments[i] = best_c;
          shard_moved = true;
        }
        ++counts[static_cast<size_t>(best_c)];
        auto sum_row = shard_sums.Row(shard * k + static_cast<size_t>(best_c));
        auto p_row = points.Row(i);
        for (size_t d = 0; d < dim; ++d) sum_row[d] += p_row[d];
      }
      shard_changed[shard] = shard_moved ? 1 : 0;
    });

    bool changed = false;
    std::vector<int> counts(k, 0);
    Matrix sums(k, dim);
    for (size_t shard = 0; shard < num_shards; ++shard) {
      if (shard_changed[shard]) changed = true;
      for (size_t c = 0; c < k; ++c) {
        counts[c] += shard_counts[shard * k + c];
        auto sum_row = sums.Row(c);
        auto part = shard_sums.Row(shard * k + c);
        for (size_t d = 0; d < dim; ++d) sum_row[d] += part[d];
      }
    }

    // Update step with empty-cluster repair.
    double max_move = 0.0;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed on the point farthest from its current centroid.
        double worst = -1.0;
        size_t worst_i = 0;
        for (size_t i = 0; i < n; ++i) {
          const int a = result.assignments[i];
          const double d2 = vec::SquaredDistance(
              points.Row(i), result.centroids.Row(static_cast<size_t>(a)));
          if (d2 > worst) {
            worst = d2;
            worst_i = i;
          }
        }
        result.centroids.SetRow(c, points.Row(worst_i));
        changed = true;
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      std::vector<double> new_center(dim);
      auto sum_row = sums.Row(c);
      for (size_t d = 0; d < dim; ++d) new_center[d] = sum_row[d] * inv;
      const double move =
          vec::EuclideanDistance(new_center, result.centroids.Row(c));
      max_move = move > max_move ? move : max_move;
      result.centroids.SetRow(c, new_center);
    }

    if (!changed || max_move < options.tolerance) break;
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia += vec::SquaredDistance(
        points.Row(i),
        result.centroids.Row(static_cast<size_t>(result.assignments[i])));
  }
  return result;
}

}  // namespace freeway
