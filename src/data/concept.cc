#include "data/concept.h"

#include <cmath>

#include "common/logging.h"

namespace freeway {

namespace {

/// Whether segment `seg` drifts class `c`: every class by default,
/// only the listed ones when the segment is cluster-localized.
bool SegmentAffects(const DriftSegment& seg, size_t c) {
  if (seg.affected_classes.empty()) return true;
  for (size_t affected : seg.affected_classes) {
    if (affected == c) return true;
  }
  return false;
}

}  // namespace

GaussianConceptSource::GaussianConceptSource(
    std::string name, const ConceptSourceOptions& options, DriftScript script)
    : name_(std::move(name)),
      options_(options),
      script_(std::move(script)),
      rng_(options.seed),
      centroids_(options.num_classes, options.dim),
      jitter_(options.num_classes, options.dim) {
  FREEWAY_DCHECK(!script_.segments.empty());
  FREEWAY_DCHECK(options_.num_classes >= 2);
  FREEWAY_DCHECK(options_.dim >= 1);

  // Initial concept: centroids at random directions, `class_separation` from
  // the origin.
  for (size_t c = 0; c < options_.num_classes; ++c) {
    std::vector<double> dir(options_.dim);
    for (auto& v : dir) v = rng_.NextGaussian();
    const double norm = vec::Norm(dir);
    const double scale = options_.class_separation / (norm > 0 ? norm : 1.0);
    for (size_t d = 0; d < options_.dim; ++d) {
      centroids_.At(c, d) = dir[d] * scale;
    }
  }
  base_centroids_ = centroids_;

  if (options_.priors.empty()) {
    priors_.assign(options_.num_classes,
                   1.0 / static_cast<double>(options_.num_classes));
  } else {
    FREEWAY_DCHECK(options_.priors.size() == options_.num_classes);
    priors_ = options_.priors;
    double sum = 0.0;
    for (double p : priors_) sum += p;
    for (auto& p : priors_) p /= sum;
  }
  direction_.assign(options_.dim, 0.0);
}

size_t GaussianConceptSource::NextSegmentIndex(size_t seg_index) const {
  size_t next = seg_index + 1;
  if (next >= script_.segments.size()) {
    return script_.loop ? 0 : script_.segments.size();
  }
  return next;
}

GaussianConceptSource::ConceptState GaussianConceptSource::ComputeEntryState(
    const DriftSegment& seg) {
  ConceptState state{centroids_, priors_};

  if (!seg.new_priors.empty()) {
    FREEWAY_DCHECK(seg.new_priors.size() == options_.num_classes);
    state.priors = seg.new_priors;
    double sum = 0.0;
    for (double p : state.priors) sum += p;
    for (auto& p : state.priors) p /= sum;
  }

  switch (seg.kind) {
    case DriftKind::kSudden: {
      // Jump each class centroid by `magnitude` along an independent random
      // direction: an abrupt new distribution. Cluster-localized segments
      // jump only the affected centroids.
      for (size_t c = 0; c < options_.num_classes; ++c) {
        if (!SegmentAffects(seg, c)) continue;
        std::vector<double> dir(options_.dim);
        for (auto& v : dir) v = rng_.NextGaussian();
        const double norm = vec::Norm(dir);
        const double scale = seg.magnitude / (norm > 0 ? norm : 1.0);
        auto row = state.centroids.Row(c);
        for (size_t d = 0; d < options_.dim; ++d) row[d] += dir[d] * scale;
      }
      break;
    }
    case DriftKind::kReoccurring: {
      if (seg.reoccur_checkpoint >= 0 &&
          static_cast<size_t>(seg.reoccur_checkpoint) < checkpoints_.size()) {
        const ConceptState& cp =
            checkpoints_[static_cast<size_t>(seg.reoccur_checkpoint)];
        state.centroids = cp.centroids;
        state.priors = cp.priors;
        if (!seg.new_priors.empty()) state.priors = seg.new_priors;
      } else if (!checkpoints_.empty()) {
        // Default: restore the earliest checkpoint.
        state.centroids = checkpoints_.front().centroids;
        state.priors = checkpoints_.front().priors;
        if (!seg.new_priors.empty()) state.priors = seg.new_priors;
      }
      break;
    }
    default:
      break;
  }
  return state;
}

void GaussianConceptSource::EnterSegment(size_t seg_index) {
  segment_index_ = seg_index;
  batch_in_segment_ = 0;
  const DriftSegment& seg = script_.segments[seg_index];

  if (seg.save_checkpoint) {
    checkpoints_.push_back(ConceptState{centroids_, priors_});
  }

  if (prepared_.valid && prepared_.seg_index == seg_index) {
    // The transition spillover already sampled this segment's entry state;
    // committing the same state keeps the stream consistent.
    centroids_ = prepared_.state.centroids;
    priors_ = prepared_.state.priors;
    prepared_.valid = false;
  } else {
    ConceptState state = ComputeEntryState(seg);
    centroids_ = std::move(state.centroids);
    priors_ = std::move(state.priors);
  }

  switch (seg.kind) {
    case DriftKind::kDirectional: {
      // New random unit direction shared by all classes: an evolving trend.
      for (auto& v : direction_) v = rng_.NextGaussian();
      const double norm = vec::Norm(direction_);
      for (auto& v : direction_) v /= (norm > 0 ? norm : 1.0);
      break;
    }
    case DriftKind::kLocalized:
      jitter_.Fill(0.0);
      break;
    default:
      break;
  }
  base_centroids_ = centroids_;
}

void GaussianConceptSource::EvolveConcept() {
  const DriftSegment& seg = script_.segments[segment_index_];
  switch (seg.kind) {
    case DriftKind::kDirectional: {
      // Affected centroids advance along the segment direction each batch
      // (all of them unless the segment is cluster-localized).
      for (size_t c = 0; c < options_.num_classes; ++c) {
        if (!SegmentAffects(seg, c)) continue;
        auto row = centroids_.Row(c);
        for (size_t d = 0; d < options_.dim; ++d) {
          row[d] += seg.magnitude * direction_[d];
        }
      }
      break;
    }
    case DriftKind::kLocalized: {
      // Mean-reverting random walk around the segment base, bounded so the
      // concept stays within a small stable range (Pattern A2). Restricted
      // to the affected centroids when cluster-localized.
      for (size_t c = 0; c < options_.num_classes; ++c) {
        if (!SegmentAffects(seg, c)) continue;
        auto j = jitter_.Row(c);
        for (size_t d = 0; d < options_.dim; ++d) {
          j[d] = 0.8 * j[d] + rng_.Gaussian(0.0, seg.magnitude);
        }
        const double norm = vec::Norm(j);
        const double cap = 3.0 * seg.magnitude;
        if (norm > cap) {
          const double s = cap / norm;
          for (auto& v : j) v *= s;
        }
        auto row = centroids_.Row(c);
        auto base = base_centroids_.Row(c);
        for (size_t d = 0; d < options_.dim; ++d) row[d] = base[d] + j[d];
      }
      break;
    }
    case DriftKind::kStationary:
    case DriftKind::kSudden:
    case DriftKind::kReoccurring:
      // Concept holds still after any start-of-segment event.
      break;
  }
}

void GaussianConceptSource::SampleInto(const Matrix& centroids, int cls,
                                       std::span<double> row) {
  auto center = centroids.Row(static_cast<size_t>(cls));
  for (size_t d = 0; d < options_.dim; ++d) {
    row[d] = center[d] + rng_.Gaussian(0.0, options_.noise_sigma);
  }
}

Result<Batch> GaussianConceptSource::NextBatch(size_t batch_size) {
  if (batch_size == 0) {
    return Status::InvalidArgument("NextBatch: batch_size must be positive");
  }

  // Advance the script position for this batch.
  if (!started_) {
    started_ = true;
    EnterSegment(0);
  } else if (batch_in_segment_ >=
             script_.segments[segment_index_].num_batches) {
    size_t next = segment_index_ + 1;
    if (next >= script_.segments.size()) {
      if (!script_.loop) {
        return Status::OutOfRange(name_ + ": drift script exhausted");
      }
      next = 0;
    }
    EnterSegment(next);
  }

  EvolveConcept();

  const DriftSegment& seg = script_.segments[segment_index_];
  meta_.segment_kind = seg.kind;
  meta_.segment_index = segment_index_;
  meta_.shift_event =
      (seg.kind == DriftKind::kSudden || seg.kind == DriftKind::kReoccurring) &&
      batch_in_segment_ < options_.event_window;

  // Transition spillover: on the last batch before a sudden / reoccurring
  // segment, the tail of the batch already comes from the upcoming concept
  // (the stream-continuity premise CEC relies on).
  size_t spill_rows = 0;
  if (options_.transition_fraction > 0.0 &&
      batch_in_segment_ + 1 >= seg.num_batches) {
    const size_t next = NextSegmentIndex(segment_index_);
    if (next < script_.segments.size()) {
      const DriftSegment& upcoming = script_.segments[next];
      if (upcoming.kind == DriftKind::kSudden ||
          upcoming.kind == DriftKind::kReoccurring) {
        if (!prepared_.valid) {
          prepared_.state = ComputeEntryState(upcoming);
          prepared_.seg_index = next;
          prepared_.valid = true;
        }
        spill_rows = static_cast<size_t>(options_.transition_fraction *
                                         static_cast<double>(batch_size));
      }
    }
  }

  Batch out;
  out.index = next_batch_index_++;
  out.features = Matrix(batch_size, options_.dim);
  out.labels.resize(batch_size);
  const size_t old_rows = batch_size - spill_rows;
  for (size_t i = 0; i < batch_size; ++i) {
    const bool from_upcoming = i >= old_rows;
    const Matrix& centroids =
        from_upcoming ? prepared_.state.centroids : centroids_;
    // Class priors of whichever concept generated the sample.
    const std::vector<double>& priors =
        from_upcoming ? prepared_.state.priors : priors_;
    const double u = rng_.NextDouble();
    int cls = static_cast<int>(priors.size()) - 1;
    double acc = 0.0;
    for (size_t c = 0; c < priors.size(); ++c) {
      acc += priors[c];
      if (u < acc) {
        cls = static_cast<int>(c);
        break;
      }
    }
    out.labels[i] = cls;
    SampleInto(centroids, cls, out.features.Row(i));
  }

  ++batch_in_segment_;
  return out;
}

}  // namespace freeway
