#include "data/image_stream.h"

#include <cmath>
#include <numbers>

#include "common/logging.h"

namespace freeway {

ImageStreamSource::ImageStreamSource(std::string name,
                                     const ImageStreamOptions& options,
                                     DriftScript script)
    : name_(std::move(name)),
      options_(options),
      script_(std::move(script)),
      rng_(options.seed) {
  FREEWAY_DCHECK(!script_.segments.empty());
  FREEWAY_DCHECK(options_.num_classes >= 2);
  RandomizeTextures();
}

void ImageStreamSource::RandomizeTextures() {
  textures_.resize(options_.num_classes);
  for (size_t c = 0; c < options_.num_classes; ++c) {
    ClassTexture& t = textures_[c];
    // Frequencies spread per class so gratings are distinguishable; random
    // jitter keeps regenerated texture sets distinct from old ones.
    const double base = 0.4 + 0.35 * static_cast<double>(c);
    const double angle = rng_.Uniform(0.0, std::numbers::pi);
    t.freq_x = base * std::cos(angle);
    t.freq_y = base * std::sin(angle);
    t.phase = rng_.Uniform(0.0, 2.0 * std::numbers::pi);
    t.contrast = rng_.Uniform(0.45, 0.7);
    t.bias = rng_.Uniform(0.4, 0.6);
  }
}

void ImageStreamSource::EnterSegment(size_t seg_index) {
  segment_index_ = seg_index;
  batch_in_segment_ = 0;
  const DriftSegment& seg = script_.segments[seg_index];

  if (seg.save_checkpoint) checkpoints_.push_back(textures_);

  switch (seg.kind) {
    case DriftKind::kSudden:
      RandomizeTextures();
      break;
    case DriftKind::kReoccurring: {
      if (!checkpoints_.empty()) {
        size_t idx = 0;
        if (seg.reoccur_checkpoint >= 0 &&
            static_cast<size_t>(seg.reoccur_checkpoint) <
                checkpoints_.size()) {
          idx = static_cast<size_t>(seg.reoccur_checkpoint);
        }
        textures_ = checkpoints_[idx];
      }
      break;
    }
    default:
      break;
  }
}

void ImageStreamSource::EvolveTextures() {
  const DriftSegment& seg = script_.segments[segment_index_];
  switch (seg.kind) {
    case DriftKind::kDirectional:
      // Phase advances steadily: the texture pattern "moves".
      for (auto& t : textures_) t.phase += seg.magnitude;
      break;
    case DriftKind::kLocalized:
      // Contrast/bias jitter within a narrow band.
      for (auto& t : textures_) {
        t.contrast += rng_.Gaussian(0.0, seg.magnitude);
        if (t.contrast < 0.3) t.contrast = 0.3;
        if (t.contrast > 0.8) t.contrast = 0.8;
        t.bias += rng_.Gaussian(0.0, seg.magnitude * 0.5);
        if (t.bias < 0.35) t.bias = 0.35;
        if (t.bias > 0.65) t.bias = 0.65;
      }
      break;
    default:
      break;
  }
}

void ImageStreamSource::RenderImage(const ClassTexture& tex,
                                    std::span<double> out) {
  const size_t h = options_.height;
  const size_t w = options_.width;
  for (size_t y = 0; y < h; ++y) {
    for (size_t x = 0; x < w; ++x) {
      const double v =
          tex.bias +
          tex.contrast * std::sin(tex.freq_x * static_cast<double>(x) +
                                  tex.freq_y * static_cast<double>(y) +
                                  tex.phase) +
          rng_.Gaussian(0.0, options_.noise_sigma);
      out[y * w + x] = v;
    }
  }
}

Result<Batch> ImageStreamSource::NextBatch(size_t batch_size) {
  if (batch_size == 0) {
    return Status::InvalidArgument("NextBatch: batch_size must be positive");
  }

  if (!started_) {
    started_ = true;
    EnterSegment(0);
  } else if (batch_in_segment_ >=
             script_.segments[segment_index_].num_batches) {
    size_t next = segment_index_ + 1;
    if (next >= script_.segments.size()) {
      if (!script_.loop) {
        return Status::OutOfRange(name_ + ": drift script exhausted");
      }
      next = 0;
    }
    EnterSegment(next);
  }

  EvolveTextures();

  const DriftSegment& seg = script_.segments[segment_index_];
  meta_.segment_kind = seg.kind;
  meta_.segment_index = segment_index_;
  meta_.shift_event =
      (seg.kind == DriftKind::kSudden || seg.kind == DriftKind::kReoccurring) &&
      batch_in_segment_ < options_.event_window;

  Batch out;
  out.index = next_batch_index_++;
  out.features = Matrix(batch_size, input_dim());
  out.labels.resize(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    const int cls = static_cast<int>(rng_.NextBelow(options_.num_classes));
    out.labels[i] = cls;
    RenderImage(textures_[static_cast<size_t>(cls)], out.features.Row(i));
  }

  ++batch_in_segment_;
  return out;
}

namespace {

DriftSegment Seg(DriftKind kind, size_t batches, double magnitude,
                 int checkpoint = -1, bool save = false) {
  DriftSegment s;
  s.kind = kind;
  s.num_batches = batches;
  s.magnitude = magnitude;
  s.reoccur_checkpoint = checkpoint;
  s.save_checkpoint = save;
  return s;
}

}  // namespace

std::unique_ptr<ImageStreamSource> MakeAnimalsSim(uint64_t seed) {
  ImageStreamOptions opts;
  opts.num_classes = 8;
  opts.seed = seed;
  DriftScript script;
  script.segments = {
      Seg(DriftKind::kLocalized, 12, 0.01, -1, /*save=*/true),
      Seg(DriftKind::kDirectional, 14, 0.05),
      Seg(DriftKind::kSudden, 10, 0.0),
      Seg(DriftKind::kLocalized, 12, 0.012),
      Seg(DriftKind::kReoccurring, 12, 0.0, 0),
      Seg(DriftKind::kDirectional, 12, 0.04),
  };
  return std::make_unique<ImageStreamSource>("Animals", opts,
                                             std::move(script));
}

std::unique_ptr<ImageStreamSource> MakeFlowersSim(uint64_t seed) {
  ImageStreamOptions opts;
  opts.num_classes = 5;
  opts.seed = seed;
  DriftScript script;
  script.segments = {
      Seg(DriftKind::kDirectional, 15, 0.03, -1, /*save=*/true),
      Seg(DriftKind::kLocalized, 15, 0.01),
      Seg(DriftKind::kSudden, 12, 0.0),
      Seg(DriftKind::kReoccurring, 12, 0.0, 0),
      Seg(DriftKind::kLocalized, 12, 0.01),
  };
  return std::make_unique<ImageStreamSource>("Flowers", opts,
                                             std::move(script));
}

}  // namespace freeway
