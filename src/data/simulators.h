#ifndef FREEWAYML_DATA_SIMULATORS_H_
#define FREEWAYML_DATA_SIMULATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "data/concept.h"
#include "stream/batch.h"

namespace freeway {

/// Statistically-matched simulators for the paper's real-world datasets.
/// Each factory configures the Gaussian concept engine with the feature
/// dimensionality / class count of the original dataset and a drift script
/// reproducing the drift phenomena the paper attributes to it. All are
/// deterministic under `seed`.

/// Airlines (flight-delay prediction): 7 features, 2 classes. Dominated by
/// slight directional drift (evolving schedules/load) with occasional sudden
/// disruptions.
std::unique_ptr<GaussianConceptSource> MakeAirlinesSim(uint64_t seed = 42);

/// Covertype (forest cover): 54 features, 7 classes. Localized variation
/// with occasional sudden region changes.
std::unique_ptr<GaussianConceptSource> MakeCovertypeSim(uint64_t seed = 42);

/// NSL-KDD (network intrusion): 41 features, 5 classes (normal + 4 attack
/// families), heavy class imbalance. Attack waves appear as sudden shifts
/// with prior swaps; known attack families return as reoccurring shifts.
std::unique_ptr<GaussianConceptSource> MakeNslKddSim(uint64_t seed = 42);

/// Electricity / Elec2 (price direction): 8 features, 2 classes. Periodic
/// demand regimes: directional intraday trends with daily regimes that
/// reoccur.
std::unique_ptr<GaussianConceptSource> MakeElectricitySim(uint64_t seed = 42);

/// Electricity-load stream for the Section-III empirical study: smooth
/// directional trends with reoccurring daily regimes.
std::unique_ptr<GaussianConceptSource> MakeElectricityLoadSim(
    uint64_t seed = 42);

/// Stock price trend stream for the Section-III empirical study: persistent
/// directional drift with sudden regime breaks.
std::unique_ptr<GaussianConceptSource> MakeStockTrendSim(uint64_t seed = 42);

/// Solar irradiance stream for the Section-III empirical study: localized
/// weather jitter around reoccurring diurnal regimes.
std::unique_ptr<GaussianConceptSource> MakeSolarSim(uint64_t seed = 42);

/// The paper's six benchmark datasets by canonical name: "Hyperplane",
/// "SEA", "Airlines", "Covertype", "NSL-KDD", "Electricity". Returns
/// NotFound for anything else.
Result<std::unique_ptr<StreamSource>> MakeBenchmarkDataset(
    const std::string& name, uint64_t seed = 42);

/// Canonical ordering of the six benchmark dataset names (Table I order).
const std::vector<std::string>& BenchmarkDatasetNames();

}  // namespace freeway

#endif  // FREEWAYML_DATA_SIMULATORS_H_
