#include "data/simulators.h"

#include "data/synthetic.h"

namespace freeway {
namespace {

DriftSegment Directional(size_t batches, double step) {
  DriftSegment s;
  s.kind = DriftKind::kDirectional;
  s.num_batches = batches;
  s.magnitude = step;
  return s;
}

DriftSegment Localized(size_t batches, double jitter) {
  DriftSegment s;
  s.kind = DriftKind::kLocalized;
  s.num_batches = batches;
  s.magnitude = jitter;
  return s;
}

DriftSegment Sudden(size_t batches, double jump) {
  DriftSegment s;
  s.kind = DriftKind::kSudden;
  s.num_batches = batches;
  s.magnitude = jump;
  return s;
}

DriftSegment Reoccur(size_t batches, int checkpoint) {
  DriftSegment s;
  s.kind = DriftKind::kReoccurring;
  s.num_batches = batches;
  s.reoccur_checkpoint = checkpoint;
  return s;
}

}  // namespace

std::unique_ptr<GaussianConceptSource> MakeAirlinesSim(uint64_t seed) {
  ConceptSourceOptions opts;
  opts.dim = 7;
  opts.num_classes = 2;
  opts.class_separation = 2.0;  // Delay prediction: modest margin.
  opts.noise_sigma = 1.0;
  opts.seed = seed;

  DriftScript script;
  DriftSegment start = Localized(8, 0.05);
  start.save_checkpoint = true;  // Checkpoint 0: the base schedule regime.
  script.segments = {
      start,
      Directional(20, 0.06),
      Localized(12, 0.08),
      Directional(18, 0.05),
      Sudden(10, 4.0),          // Weather / strike disruption.
      Directional(16, 0.06),
      Reoccur(12, 0),           // Normal schedule resumes.
      Directional(16, 0.05),
  };
  return std::make_unique<GaussianConceptSource>("Airlines", opts,
                                                 std::move(script));
}

std::unique_ptr<GaussianConceptSource> MakeCovertypeSim(uint64_t seed) {
  ConceptSourceOptions opts;
  opts.dim = 54;
  opts.num_classes = 7;
  opts.class_separation = 2.2;
  opts.noise_sigma = 1.2;
  opts.seed = seed;

  DriftScript script;
  DriftSegment start = Localized(15, 0.06);
  start.save_checkpoint = true;  // Checkpoint 0: the base region.
  script.segments = {
      start,
      Localized(20, 0.10),
      Sudden(12, 3.5),           // Survey moves to a different region.
      Localized(18, 0.08),
      Sudden(12, 3.5),
      Localized(15, 0.08),
      Reoccur(15, 0),            // Back to the original region.
      Localized(13, 0.06),
  };
  return std::make_unique<GaussianConceptSource>("Covertype", opts,
                                                 std::move(script));
}

std::unique_ptr<GaussianConceptSource> MakeNslKddSim(uint64_t seed) {
  ConceptSourceOptions opts;
  opts.dim = 41;
  opts.num_classes = 5;  // normal, DoS, probe, R2L, U2R.
  opts.class_separation = 2.4;
  opts.noise_sigma = 1.0;
  opts.priors = {0.55, 0.25, 0.12, 0.06, 0.02};  // Heavy imbalance.
  opts.seed = seed;

  DriftScript script;
  DriftSegment normal = Localized(12, 0.05);
  normal.save_checkpoint = true;  // Checkpoint 0: baseline traffic.

  DriftSegment dos_wave = Sudden(10, 3.2);  // DoS flood dominates traffic.
  dos_wave.new_priors = {0.15, 0.70, 0.08, 0.05, 0.02};
  dos_wave.save_checkpoint = true;  // Checkpoint 1: the DoS regime.

  DriftSegment calm = Reoccur(10, 0);
  calm.new_priors = {0.55, 0.25, 0.12, 0.06, 0.02};

  DriftSegment probe_wave = Sudden(10, 3.0);  // Probe scanning wave.
  probe_wave.new_priors = {0.30, 0.10, 0.50, 0.07, 0.03};

  DriftSegment dos_again = Reoccur(10, 1);  // Known DoS pattern returns.
  dos_again.new_priors = {0.15, 0.70, 0.08, 0.05, 0.02};

  DriftSegment calm2 = Reoccur(12, 0);
  calm2.new_priors = {0.55, 0.25, 0.12, 0.06, 0.02};

  script.segments = {normal,     Localized(10, 0.06), dos_wave,
                     calm,       probe_wave,          dos_again,
                     calm2,      Localized(10, 0.05)};
  return std::make_unique<GaussianConceptSource>("NSL-KDD", opts,
                                                 std::move(script));
}

std::unique_ptr<GaussianConceptSource> MakeElectricitySim(uint64_t seed) {
  ConceptSourceOptions opts;
  opts.dim = 8;
  opts.num_classes = 2;  // Price up / down.
  opts.class_separation = 1.8;
  opts.noise_sigma = 1.0;
  opts.seed = seed;

  DriftScript script;
  DriftSegment day = Directional(10, 0.07);
  day.save_checkpoint = true;  // Checkpoint 0: morning regime.
  script.segments = {
      day,
      Localized(10, 0.07),      // Midday plateau.
      Directional(10, 0.07),    // Evening ramp.
      Sudden(8, 2.4),           // Demand spike / outage.
      Reoccur(10, 0),           // Next day: morning regime reoccurs.
      Localized(10, 0.06),
      Reoccur(10, 0),
      Directional(10, 0.06),
  };
  return std::make_unique<GaussianConceptSource>("Electricity", opts,
                                                 std::move(script));
}

std::unique_ptr<GaussianConceptSource> MakeElectricityLoadSim(uint64_t seed) {
  ConceptSourceOptions opts;
  opts.dim = 6;
  opts.num_classes = 3;  // Low / medium / high load.
  opts.class_separation = 2.0;
  opts.noise_sigma = 0.9;
  opts.seed = seed;

  DriftScript script;
  DriftSegment base = Directional(12, 0.08);
  base.save_checkpoint = true;
  script.segments = {
      base,
      Localized(10, 0.06),
      Directional(12, 0.08),
      Sudden(8, 2.6),           // Grid event: load pattern breaks abruptly.
      Reoccur(12, 0),
      Localized(10, 0.06),
  };
  return std::make_unique<GaussianConceptSource>("ElectricityLoad", opts,
                                                 std::move(script));
}

std::unique_ptr<GaussianConceptSource> MakeStockTrendSim(uint64_t seed) {
  ConceptSourceOptions opts;
  opts.dim = 6;
  opts.num_classes = 2;  // Trend up / down.
  opts.class_separation = 1.5;
  opts.noise_sigma = 1.0;
  opts.seed = seed;

  DriftScript script;
  script.segments = {
      Directional(25, 0.08),    // Bull run.
      Sudden(10, 3.0),          // Market break.
      Directional(20, 0.08),
      Sudden(10, 2.8),
      Directional(20, 0.07),
  };
  return std::make_unique<GaussianConceptSource>("StockTrend", opts,
                                                 std::move(script));
}

std::unique_ptr<GaussianConceptSource> MakeSolarSim(uint64_t seed) {
  ConceptSourceOptions opts;
  opts.dim = 5;
  opts.num_classes = 3;  // Clear / cloudy / overcast irradiance bands.
  opts.class_separation = 2.0;
  opts.noise_sigma = 0.9;
  opts.seed = seed;

  DriftScript script;
  DriftSegment dawn = Localized(12, 0.06);
  dawn.save_checkpoint = true;
  script.segments = {
      dawn,
      Localized(14, 0.10),
      Sudden(8, 2.2),           // Weather front.
      Localized(12, 0.08),
      Reoccur(14, 0),           // Clear-sky regime returns.
  };
  return std::make_unique<GaussianConceptSource>("Solar", opts,
                                                 std::move(script));
}

Result<std::unique_ptr<StreamSource>> MakeBenchmarkDataset(
    const std::string& name, uint64_t seed) {
  if (name == "Hyperplane") {
    HyperplaneOptions opts;
    opts.seed = seed;
    opts.drift_magnitude = 0.03;
    opts.sudden_every = 30;
    // Make the re-randomizations feature-visible shifts (see synthetic.h).
    opts.sudden_class_offset = 0.8;
    return std::unique_ptr<StreamSource>(
        std::make_unique<HyperplaneSource>(opts));
  }
  if (name == "SEA") {
    SeaOptions opts;
    opts.seed = seed;
    // Per-concept spatial offsets so concept switches/returns are
    // feature-visible (see synthetic.h).
    opts.concept_offset_scale = 2.5;
    return std::unique_ptr<StreamSource>(std::make_unique<SeaSource>(opts));
  }
  if (name == "Airlines") {
    return std::unique_ptr<StreamSource>(MakeAirlinesSim(seed));
  }
  if (name == "Covertype") {
    return std::unique_ptr<StreamSource>(MakeCovertypeSim(seed));
  }
  if (name == "NSL-KDD") {
    return std::unique_ptr<StreamSource>(MakeNslKddSim(seed));
  }
  if (name == "Electricity") {
    return std::unique_ptr<StreamSource>(MakeElectricitySim(seed));
  }
  return Status::NotFound("unknown benchmark dataset: " + name);
}

const std::vector<std::string>& BenchmarkDatasetNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "Hyperplane", "SEA", "Airlines", "Covertype", "NSL-KDD", "Electricity"};
  return *names;
}

}  // namespace freeway
