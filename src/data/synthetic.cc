#include "data/synthetic.h"

#include "common/logging.h"

namespace freeway {

// ---------------------------------------------------------------------------
// HyperplaneSource
// ---------------------------------------------------------------------------

HyperplaneSource::HyperplaneSource(const HyperplaneOptions& options)
    : options_(options), rng_(options.seed) {
  FREEWAY_DCHECK(options_.dim >= 2);
  FREEWAY_DCHECK(options_.drift_features <= options_.dim);
  Rerandomize();
}

void HyperplaneSource::Rerandomize() {
  weights_.resize(options_.dim);
  for (auto& w : weights_) w = rng_.Uniform(-1.0, 1.0);
  drift_direction_.assign(options_.drift_features, 1.0);
  for (auto& d : drift_direction_) d = rng_.Bernoulli(0.5) ? 1.0 : -1.0;
  // Threshold at the hyperplane's expected value keeps classes balanced.
  threshold_ = 0.0;
  for (double w : weights_) threshold_ += 0.5 * w;

  class_offsets_.assign(2, std::vector<double>(options_.dim, 0.0));
  if (options_.sudden_class_offset > 0.0) {
    for (auto& offset : class_offsets_) {
      for (auto& v : offset) v = rng_.NextGaussian();
      const double norm = vec::Norm(offset);
      const double scale =
          options_.sudden_class_offset / (norm > 0 ? norm : 1.0);
      for (auto& v : offset) v *= scale;
    }
  }
}

Result<Batch> HyperplaneSource::NextBatch(size_t batch_size) {
  if (batch_size == 0) {
    return Status::InvalidArgument("NextBatch: batch_size must be positive");
  }

  meta_ = BatchMeta{};
  if (options_.sudden_every > 0 && next_batch_index_ > 0 &&
      next_batch_index_ % static_cast<int64_t>(options_.sudden_every) == 0) {
    Rerandomize();
    meta_.segment_kind = DriftKind::kSudden;
    meta_.shift_event = true;
  } else {
    meta_.segment_kind = DriftKind::kDirectional;
  }

  // Weight drift for this batch (Pattern A1 motion).
  for (size_t f = 0; f < options_.drift_features; ++f) {
    if (rng_.Bernoulli(options_.flip_probability)) {
      drift_direction_[f] = -drift_direction_[f];
    }
    weights_[f] += drift_direction_[f] * options_.drift_magnitude;
  }
  threshold_ = 0.0;
  for (double w : weights_) threshold_ += 0.5 * w;

  Batch out;
  out.index = next_batch_index_++;
  out.features = Matrix(batch_size, options_.dim);
  out.labels.resize(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    auto row = out.features.Row(i);
    double score = 0.0;
    for (size_t d = 0; d < options_.dim; ++d) {
      row[d] = rng_.NextDouble();
      score += row[d] * weights_[d];
    }
    int label = score > threshold_ ? 1 : 0;
    if (rng_.Bernoulli(options_.noise)) label = 1 - label;
    out.labels[i] = label;
    if (options_.sudden_class_offset > 0.0) {
      const auto& offset = class_offsets_[static_cast<size_t>(label)];
      for (size_t d = 0; d < options_.dim; ++d) row[d] += offset[d];
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// SeaSource
// ---------------------------------------------------------------------------

SeaSource::SeaSource(const SeaOptions& options)
    : options_(options), rng_(options.seed) {
  FREEWAY_DCHECK(options_.concept_length >= 1);
}

Result<Batch> SeaSource::NextBatch(size_t batch_size) {
  if (batch_size == 0) {
    return Status::InvalidArgument("NextBatch: batch_size must be positive");
  }

  meta_ = BatchMeta{};
  if (batch_in_concept_ >= options_.concept_length) {
    ++concept_index_;
    batch_in_concept_ = 0;
  }
  if (batch_in_concept_ < 2 && concept_index_ > 0) {
    // The first batches after a switch: sudden on first visit, reoccurring
    // once this theta has been seen before (cycle length 4).
    meta_.shift_event = true;
    meta_.segment_kind = concept_index_ >= 4 ? DriftKind::kReoccurring
                                             : DriftKind::kSudden;
  } else {
    meta_.segment_kind = DriftKind::kStationary;
  }
  meta_.segment_index = concept_index_ % 4;

  const double theta = kThetas[concept_index_ % 4];

  // Deterministic per-(concept, class) offsets: concept k always maps to
  // the same feature-space region, so a returning theta also returns
  // spatially (enabling Pattern-C detection).
  double offsets[2][3] = {{0, 0, 0}, {0, 0, 0}};
  if (options_.concept_offset_scale > 0.0) {
    Rng offset_rng(options_.seed * 1315423911ULL + (concept_index_ % 4));
    for (auto& class_offset : offsets) {
      for (double& v : class_offset) {
        v = offset_rng.Uniform(-options_.concept_offset_scale,
                               options_.concept_offset_scale);
      }
    }
  }

  Batch out;
  out.index = next_batch_index_++;
  out.features = Matrix(batch_size, 3);
  out.labels.resize(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    auto row = out.features.Row(i);
    for (size_t d = 0; d < 3; ++d) row[d] = rng_.Uniform(0.0, 10.0);
    int label = (row[0] + row[1] <= theta) ? 1 : 0;
    if (rng_.Bernoulli(options_.noise)) label = 1 - label;
    out.labels[i] = label;
    if (options_.concept_offset_scale > 0.0) {
      for (size_t d = 0; d < 3; ++d) {
        row[d] += offsets[static_cast<size_t>(label)][d];
      }
    }
  }
  ++batch_in_concept_;
  return out;
}

}  // namespace freeway
