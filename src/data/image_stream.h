#ifndef FREEWAYML_DATA_IMAGE_STREAM_H_
#define FREEWAYML_DATA_IMAGE_STREAM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/concept.h"
#include "ml/layers.h"
#include "stream/batch.h"

namespace freeway {

/// Options for the synthetic image-stream generator.
struct ImageStreamOptions {
  size_t height = 16;
  size_t width = 16;
  size_t num_classes = 4;
  /// Pixel noise standard deviation.
  double noise_sigma = 0.15;
  /// Batches after a sudden/reoccurring event that still count as part of
  /// the shift event for ground-truth accounting.
  size_t event_window = 2;
  uint64_t seed = 42;
};

/// Class-conditional textured-image stream standing in for the appendix's
/// ImageNet-Subset ("Animals") and Flowers streams. Each class renders a
/// sinusoidal grating with class-specific frequency and orientation; a
/// DriftScript evolves phase/contrast (slight), re-randomizes textures
/// (sudden), or restores earlier texture sets (reoccurring). Images are
/// single-channel, flattened row-major; TensorShape{1, height, width}.
class ImageStreamSource : public StreamSource {
 public:
  ImageStreamSource(std::string name, const ImageStreamOptions& options,
                    DriftScript script);

  std::string name() const override { return name_; }
  size_t input_dim() const override {
    return options_.height * options_.width;
  }
  size_t num_classes() const override { return options_.num_classes; }

  TensorShape shape() const { return {1, options_.height, options_.width}; }

  Result<Batch> NextBatch(size_t batch_size) override;

 private:
  struct ClassTexture {
    double freq_x = 0.0;
    double freq_y = 0.0;
    double phase = 0.0;
    double contrast = 0.6;
    double bias = 0.5;
  };

  void RandomizeTextures();
  void EnterSegment(size_t seg_index);
  void EvolveTextures();
  void RenderImage(const ClassTexture& tex, std::span<double> out);

  std::string name_;
  ImageStreamOptions options_;
  DriftScript script_;
  Rng rng_;

  std::vector<ClassTexture> textures_;
  std::vector<std::vector<ClassTexture>> checkpoints_;

  size_t segment_index_ = 0;
  size_t batch_in_segment_ = 0;
  int64_t next_batch_index_ = 0;
  bool started_ = false;
};

/// "Animals" stream (ImageNet-Subset analogue): 8 classes of 16x16 textures
/// with sudden and reoccurring texture-regime changes.
std::unique_ptr<ImageStreamSource> MakeAnimalsSim(uint64_t seed = 42);

/// "Flowers" stream: 5 classes with smoother slight drift plus occasional
/// sudden changes.
std::unique_ptr<ImageStreamSource> MakeFlowersSim(uint64_t seed = 42);

}  // namespace freeway

#endif  // FREEWAYML_DATA_IMAGE_STREAM_H_
