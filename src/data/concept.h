#ifndef FREEWAYML_DATA_CONCEPT_H_
#define FREEWAYML_DATA_CONCEPT_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "stream/batch.h"

namespace freeway {

/// One phase of a drift script.
struct DriftSegment {
  DriftKind kind = DriftKind::kStationary;
  /// Batches this segment lasts.
  size_t num_batches = 10;
  /// Meaning depends on kind: per-batch step length (directional), jitter
  /// scale (localized), jump distance (sudden). Ignored otherwise.
  double magnitude = 0.0;
  /// For kReoccurring: which checkpoint to restore (0-based, in the order
  /// checkpoints were saved).
  int reoccur_checkpoint = -1;
  /// Checkpoint the concept state at the start of this segment, making it
  /// available to later kReoccurring segments.
  bool save_checkpoint = false;
  /// Optionally replace class priors at segment start (size num_classes);
  /// empty keeps the current priors. Models class-imbalance swings such as
  /// NSL-KDD attack waves.
  std::vector<double> new_priors;
  /// Cluster-localized drift (the cluster-specific localized-drift setting):
  /// when non-empty, the segment's concept evolution — the sudden jump at
  /// entry, the per-batch directional step, or the localized jitter —
  /// applies only to these class centroids while the rest of the mixture
  /// holds still, so a detector watching the global feature distribution
  /// sees a diluted signal proportional to the affected clusters' mass.
  /// Empty (the default) keeps the classic global drift shapes. Indices
  /// outside [0, num_classes) are ignored.
  std::vector<size_t> affected_classes;
};

/// A looping sequence of drift segments driving a GaussianConceptSource.
struct DriftScript {
  std::vector<DriftSegment> segments;
  /// Restart from segments[0] after the last segment (scripts never run dry).
  bool loop = true;
};

/// Configuration of the class-conditional Gaussian stream engine.
struct ConceptSourceOptions {
  size_t dim = 10;
  size_t num_classes = 2;
  /// Initial distance between class centroids and the concept origin;
  /// together with `noise_sigma` this sets the Bayes accuracy.
  double class_separation = 2.0;
  /// Isotropic within-class noise.
  double noise_sigma = 1.0;
  /// Initial class priors (empty = uniform).
  std::vector<double> priors;
  /// Batches after a sudden/reoccurring event that still count as part of
  /// the shift event for ground-truth accounting.
  size_t event_window = 2;
  /// Real shifts do not align with mini-batch boundaries: the paper's CEC
  /// hypothesis rests on the new distribution "already occurring at the end
  /// of the previous batch". When > 0, the last batch before a sudden /
  /// reoccurring segment draws its final `transition_fraction` of samples
  /// from the upcoming concept. 0 = hard boundary-aligned switches.
  double transition_fraction = 0.15;
  uint64_t seed = 42;
};

/// Streaming data generator: each class is an isotropic Gaussian around a
/// class centroid, and a DriftScript evolves the centroids over time. This
/// single engine, parameterized per dataset (see simulators.h), provides the
/// statistically-matched substitutes for the paper's real-world datasets.
///
/// Because class structure *is* cluster structure here, the generator
/// exercises exactly the mechanisms under test: directional/localized motion
/// stresses multi-granularity models, jumps stress CEC, and restores stress
/// historical knowledge reuse.
class GaussianConceptSource : public StreamSource {
 public:
  GaussianConceptSource(std::string name, const ConceptSourceOptions& options,
                        DriftScript script);

  std::string name() const override { return name_; }
  size_t input_dim() const override { return options_.dim; }
  size_t num_classes() const override { return options_.num_classes; }

  Result<Batch> NextBatch(size_t batch_size) override;

  /// Current class centroids (num_classes x dim); exposed for tests.
  const Matrix& centroids() const { return centroids_; }

  /// Number of concept checkpoints saved so far.
  size_t num_checkpoints() const { return checkpoints_.size(); }

 private:
  struct ConceptState {
    Matrix centroids;
    std::vector<double> priors;
  };

  /// Precomputed state of an upcoming sudden/reoccurring segment, sampled
  /// once so the transition spillover and the actual entry agree.
  struct PreparedSegment {
    bool valid = false;
    size_t seg_index = 0;
    ConceptState state;
  };

  /// Enters script segment `seg_index`, applying start-of-segment actions
  /// (checkpoint save, jump, restore, prior swap). Uses the prepared state
  /// when one matches.
  void EnterSegment(size_t seg_index);
  /// Computes the concept state that entering `seg_index` would produce,
  /// consuming the same random draws entry would.
  ConceptState ComputeEntryState(const DriftSegment& seg);
  /// Index of the segment after `seg_index`, honoring looping; returns
  /// segments.size() when the script ends.
  size_t NextSegmentIndex(size_t seg_index) const;
  /// Draws one sample of class `cls` around `centroids` into `row`.
  void SampleInto(const Matrix& centroids, int cls, std::span<double> row);

  /// Applies the per-batch concept evolution for the active segment.
  void EvolveConcept();

  std::string name_;
  ConceptSourceOptions options_;
  DriftScript script_;
  Rng rng_;

  Matrix centroids_;
  /// Anchor for localized jitter (the segment's base concept).
  Matrix base_centroids_;
  Matrix jitter_;
  std::vector<double> priors_;
  /// Per-segment unit direction for directional drift.
  std::vector<double> direction_;

  std::vector<ConceptState> checkpoints_;
  PreparedSegment prepared_;

  size_t segment_index_ = 0;
  size_t batch_in_segment_ = 0;
  int64_t next_batch_index_ = 0;
  bool started_ = false;
};

}  // namespace freeway

#endif  // FREEWAYML_DATA_CONCEPT_H_
