#ifndef FREEWAYML_DATA_SYNTHETIC_H_
#define FREEWAYML_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "stream/batch.h"

namespace freeway {

/// Options for the rotating-hyperplane generator (River-style).
struct HyperplaneOptions {
  size_t dim = 10;
  /// Features whose weights drift each batch.
  size_t drift_features = 2;
  /// Per-batch Gaussian step applied to drifting weights.
  double drift_magnitude = 0.02;
  /// Probability of flipping the drift direction of a feature per batch.
  double flip_probability = 0.05;
  /// Label-noise probability.
  double noise = 0.05;
  /// Every `sudden_every` batches the hyperplane is re-randomized (0 = never)
  /// — gives the stream genuine Pattern-B events.
  size_t sudden_every = 0;
  /// When > 0, each re-randomization also draws per-class feature offsets of
  /// this norm added to the emitted points. The classic Hyperplane's sudden
  /// concept switches are *virtual* drift (P(y|x) changes, P(x) does not) —
  /// invisible to any feature-distribution detector; the offsets model the
  /// real (P(x)-visible) component that accompanies abrupt regime changes,
  /// e.g. a traffic surge whose two classes move apart.
  double sudden_class_offset = 0.0;
  uint64_t seed = 42;
};

/// The Hyperplane benchmark: points uniform in [0,1]^d labeled by the side of
/// a slowly rotating hyperplane. The canonical slight-directional-drift
/// stream used by the paper for accuracy (Table I) and all performance
/// experiments (Fig 10, Tables III/VI).
class HyperplaneSource : public StreamSource {
 public:
  explicit HyperplaneSource(const HyperplaneOptions& options = {});

  std::string name() const override { return "Hyperplane"; }
  size_t input_dim() const override { return options_.dim; }
  size_t num_classes() const override { return 2; }

  Result<Batch> NextBatch(size_t batch_size) override;

  const std::vector<double>& weights() const { return weights_; }

 private:
  void Rerandomize();

  HyperplaneOptions options_;
  Rng rng_;
  std::vector<double> weights_;
  std::vector<double> drift_direction_;  ///< +/-1 per drifting feature.
  /// Per-class emitted-feature offsets (active when sudden_class_offset > 0).
  std::vector<std::vector<double>> class_offsets_;
  double threshold_ = 0.0;
  int64_t next_batch_index_ = 0;
};

/// Options for the SEA concepts generator.
struct SeaOptions {
  /// Batches each concept lasts before switching.
  size_t concept_length = 25;
  /// Label-noise probability (SEA traditionally uses 10%).
  double noise = 0.10;
  /// When > 0, each concept carries deterministic per-class feature offsets
  /// of this norm (derived from the concept index, so a returning theta
  /// returns in feature space too). As with Hyperplane, this turns SEA's
  /// otherwise-virtual concept switches into feature-visible shifts.
  double concept_offset_scale = 0.0;
  uint64_t seed = 42;
};

/// The SEA benchmark: 3 features uniform in [0,10], only the first two
/// relevant; label = (f1 + f2 <= theta). Theta cycles through the four
/// classic concepts {8, 9, 7, 9.5}, so every switch is a sudden shift and
/// every later visit to a theta is a reoccurring shift.
class SeaSource : public StreamSource {
 public:
  explicit SeaSource(const SeaOptions& options = {});

  std::string name() const override { return "SEA"; }
  size_t input_dim() const override { return 3; }
  size_t num_classes() const override { return 2; }

  Result<Batch> NextBatch(size_t batch_size) override;

  double current_theta() const { return kThetas[concept_index_ % 4]; }

 private:
  static constexpr double kThetas[4] = {8.0, 9.0, 7.0, 9.5};

  SeaOptions options_;
  Rng rng_;
  size_t concept_index_ = 0;
  size_t batch_in_concept_ = 0;
  int64_t next_batch_index_ = 0;
};

}  // namespace freeway

#endif  // FREEWAYML_DATA_SYNTHETIC_H_
