#ifndef FREEWAYML_STREAM_BATCH_CODEC_H_
#define FREEWAYML_STREAM_BATCH_CODEC_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "stream/batch.h"

namespace freeway {

/// The shared binary codec of the library. One audited encoder/decoder pair
/// serializes `Matrix` and `Batch` payloads everywhere bytes leave a
/// process: shard checkpoints (fault/CheckpointStore), pipeline snapshots,
/// and the network wire protocol (net/wire) all delegate here, so a batch
/// is bit-identical whether it was restored from disk or decoded off a
/// socket.

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `size` bytes.
/// `seed` chains multiple ranges: pass the previous call's return value.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// Append-only binary encoder for snapshot/checkpoint/wire payloads. All
/// integers are written in the host's byte order as fixed-width raw bytes
/// (the library targets a single architecture per deployment; the
/// CheckpointStore and wire-frame headers carry version fields for future
/// migrations). Doubles are written as their raw 8-byte representation,
/// which is what makes an encode -> decode round trip *bit-identical*: no
/// value passes through a decimal representation.
///
/// Every composite value is length-prefixed so the paired SnapshotReader
/// can bounds-check before allocating.
class SnapshotWriter {
 public:
  void WriteU32(uint32_t value) { Append(&value, sizeof(value)); }
  void WriteU64(uint64_t value) { Append(&value, sizeof(value)); }
  void WriteI64(int64_t value) { Append(&value, sizeof(value)); }
  void WriteDouble(double value) { Append(&value, sizeof(value)); }
  void WriteBool(bool value) {
    const uint8_t byte = value ? 1 : 0;
    Append(&byte, 1);
  }
  void WriteString(const std::string& value);
  void WriteDoubleVec(const std::vector<double>& values);
  void WriteIntVec(const std::vector<int>& values);
  /// Raw byte blob (e.g. an ml/serialize model snapshot).
  void WriteBlob(const std::vector<char>& bytes);
  void WriteMatrix(const Matrix& matrix);
  void WriteBatch(const Batch& batch);

  /// Section marker: a tag + format version pair that the reader validates,
  /// so a truncated or reordered payload fails fast with a clean error
  /// instead of misinterpreting bytes.
  void WriteSection(uint32_t tag, uint32_t version = 1) {
    WriteU32(tag);
    WriteU32(version);
  }

  const std::vector<char>& buffer() const { return buffer_; }
  std::vector<char> Take() { return std::move(buffer_); }

 private:
  void Append(const void* data, size_t size);

  std::vector<char> buffer_;
};

/// Bounds-checked decoder over a byte span produced by SnapshotWriter. Every
/// Read fails with a clean InvalidArgument on truncation — never reads past
/// the buffer and never trusts an embedded length that exceeds the bytes
/// actually present (so a corrupted length cannot trigger an absurd
/// allocation).
class SnapshotReader {
 public:
  explicit SnapshotReader(std::span<const char> buffer) : buffer_(buffer) {}

  Status ReadU32(uint32_t* out) { return Take(out, sizeof(*out)); }
  Status ReadU64(uint64_t* out) { return Take(out, sizeof(*out)); }
  Status ReadI64(int64_t* out) { return Take(out, sizeof(*out)); }
  Status ReadDouble(double* out) { return Take(out, sizeof(*out)); }
  Status ReadBool(bool* out);
  Status ReadString(std::string* out);
  Status ReadDoubleVec(std::vector<double>* out);
  Status ReadIntVec(std::vector<int>* out);
  Status ReadBlob(std::vector<char>* out);
  Status ReadMatrix(Matrix* out);
  Status ReadBatch(Batch* out);

  /// Reads a section marker and checks the tag matches; returns the version
  /// through `version_out` (null to require version 1).
  Status ExpectSection(uint32_t tag, uint32_t* version_out = nullptr);

  /// Fails unless every byte has been consumed — a trailing-garbage guard
  /// for top-level Restore calls.
  Status ExpectEnd() const;

  size_t remaining() const { return buffer_.size() - pos_; }

 private:
  Status Take(void* out, size_t size);
  /// Validates that `count` elements of `elem_size` bytes are present.
  Status CheckCount(uint64_t count, size_t elem_size) const;

  std::span<const char> buffer_;
  size_t pos_ = 0;
};

}  // namespace freeway

#endif  // FREEWAYML_STREAM_BATCH_CODEC_H_
