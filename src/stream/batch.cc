#include "stream/batch.h"

namespace freeway {

const char* DriftKindName(DriftKind kind) {
  switch (kind) {
    case DriftKind::kStationary:
      return "stationary";
    case DriftKind::kDirectional:
      return "directional";
    case DriftKind::kLocalized:
      return "localized";
    case DriftKind::kSudden:
      return "sudden";
    case DriftKind::kReoccurring:
      return "reoccurring";
  }
  return "?";
}

Result<Batch> ConcatBatches(const std::vector<const Batch*>& batches) {
  if (batches.empty()) {
    return Status::InvalidArgument("ConcatBatches: no batches");
  }
  const size_t dim = batches[0]->dim();
  const bool labeled = batches[0]->labeled();
  size_t total_rows = 0;
  for (const Batch* b : batches) {
    if (b->dim() != dim) {
      return Status::InvalidArgument("ConcatBatches: dimension mismatch");
    }
    if (b->labeled() != labeled) {
      return Status::InvalidArgument(
          "ConcatBatches: mixing labeled and unlabeled batches");
    }
    total_rows += b->size();
  }

  Batch out;
  out.index = batches[0]->index;
  out.features = Matrix(total_rows, dim);
  if (labeled) out.labels.reserve(total_rows);
  size_t row = 0;
  for (const Batch* b : batches) {
    for (size_t i = 0; i < b->size(); ++i) {
      out.features.SetRow(row++, b->features.Row(i));
    }
    if (labeled) {
      out.labels.insert(out.labels.end(), b->labels.begin(), b->labels.end());
    }
  }
  return out;
}

Result<Batch> SliceBatch(const Batch& batch, size_t begin, size_t end) {
  if (begin > end || end > batch.size()) {
    return Status::OutOfRange("SliceBatch: invalid range");
  }
  Batch out;
  out.index = batch.index;
  out.features = Matrix(end - begin, batch.dim());
  for (size_t i = begin; i < end; ++i) {
    out.features.SetRow(i - begin, batch.features.Row(i));
  }
  if (batch.labeled()) {
    out.labels.assign(batch.labels.begin() + static_cast<ptrdiff_t>(begin),
                      batch.labels.begin() + static_cast<ptrdiff_t>(end));
  }
  return out;
}

Result<std::vector<Batch>> TakeBatches(StreamSource* source,
                                       size_t num_batches, size_t batch_size) {
  std::vector<Batch> out;
  out.reserve(num_batches);
  for (size_t i = 0; i < num_batches; ++i) {
    FREEWAY_ASSIGN_OR_RETURN(Batch b, source->NextBatch(batch_size));
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace freeway
