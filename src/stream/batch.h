#ifndef FREEWAYML_STREAM_BATCH_H_
#define FREEWAYML_STREAM_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace freeway {

/// One mini-batch of streaming data. A batch is the unit of everything in
/// FreewayML: shift detection, inference, incremental updates, and the ASW
/// all operate batch-at-a-time (the paper uses batch size 1024 throughout).
struct Batch {
  /// Row-major feature matrix (rows = samples).
  Matrix features;
  /// Integer class labels, one per row; empty when the batch is unlabeled
  /// (pure inference traffic).
  std::vector<int> labels;
  /// Monotonically increasing position of this batch in its stream.
  int64_t index = 0;

  size_t size() const { return features.rows(); }
  size_t dim() const { return features.cols(); }
  bool labeled() const { return !labels.empty(); }

  /// Per-feature mean of the batch — its distribution representative
  /// (input to Eq. 6).
  std::vector<double> Mean() const { return features.ColumnMean(); }
};

/// Concatenates batches row-wise. All batches must share `dim` and labeled
/// status; the result takes the first batch's index.
Result<Batch> ConcatBatches(const std::vector<const Batch*>& batches);

/// Returns the subset of rows in [begin, end) as a new batch.
Result<Batch> SliceBatch(const Batch& batch, size_t begin, size_t end);

/// Taxonomy of drift behaviours, mirroring the shift patterns of Section III
/// of the paper: directional / localized slight shifts (A1/A2), sudden
/// shifts (B), and reoccurring shifts (C).
enum class DriftKind {
  kStationary,
  kDirectional,   ///< Pattern A1: concept moves steadily along one direction.
  kLocalized,     ///< Pattern A2: concept jitters within a bounded region.
  kSudden,        ///< Pattern B: concept jumps to a brand-new region.
  kReoccurring,   ///< Pattern C: a previously-seen concept is restored.
};

const char* DriftKindName(DriftKind kind);

/// Ground-truth annotation of the most recent batch a source produced, used
/// by the evaluation harness for per-pattern accounting (Table II, Figs
/// 9/11). Sources that cannot annotate leave the default (stationary).
struct BatchMeta {
  DriftKind segment_kind = DriftKind::kStationary;
  /// True on the batch where a sudden jump or a concept restore occurred
  /// (plus a short adjustment window).
  bool shift_event = false;
  /// Index of the active script segment / concept, source-defined.
  size_t segment_index = 0;
};

/// An ordered source of mini-batches. Dataset generators, drift injectors,
/// and replayed recordings all implement this interface.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  virtual std::string name() const = 0;
  virtual size_t input_dim() const = 0;
  virtual size_t num_classes() const = 0;

  /// Produces the next batch of exactly `batch_size` labeled samples.
  /// Synthetic sources are unbounded; bounded sources return OutOfRange
  /// when exhausted.
  virtual Result<Batch> NextBatch(size_t batch_size) = 0;

  /// Ground-truth drift annotation for the batch most recently returned by
  /// NextBatch.
  const BatchMeta& LastBatchMeta() const { return meta_; }

 protected:
  BatchMeta meta_;
};

/// Materializes `num_batches` consecutive batches from a source.
Result<std::vector<Batch>> TakeBatches(StreamSource* source,
                                       size_t num_batches, size_t batch_size);

}  // namespace freeway

#endif  // FREEWAYML_STREAM_BATCH_H_
