#include "stream/batch_codec.h"

#include <array>
#include <cstring>

namespace freeway {

namespace {

/// Slicing-by-8 tables: table[0] is the classic bytewise table; table[k]
/// advances a byte's contribution k extra positions, so eight lookups
/// retire eight input bytes per iteration. Identical output to the
/// bytewise loop for every input — only the traversal order changes.
std::array<std::array<uint32_t, 256>, 8> BuildCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t k = 1; k < 8; ++k) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[k][i] = c;
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> t = BuildCrcTables();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // The 8-byte fast path folds the running CRC into a little-endian load;
  // big-endian hosts take the bytewise tail loop for the whole input.
  while (size >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, bytes, 4);
    std::memcpy(&hi, bytes + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    bytes += 8;
    size -= 8;
  }
#endif
  for (size_t i = 0; i < size; ++i) {
    crc = t[0][(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void SnapshotWriter::Append(const void* data, size_t size) {
  const size_t offset = buffer_.size();
  buffer_.resize(offset + size);
  std::memcpy(buffer_.data() + offset, data, size);
}

void SnapshotWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  if (!value.empty()) Append(value.data(), value.size());
}

void SnapshotWriter::WriteDoubleVec(const std::vector<double>& values) {
  WriteU64(values.size());
  if (!values.empty()) {
    Append(values.data(), values.size() * sizeof(double));
  }
}

void SnapshotWriter::WriteIntVec(const std::vector<int>& values) {
  WriteU64(values.size());
  for (int v : values) WriteI64(v);
}

void SnapshotWriter::WriteBlob(const std::vector<char>& bytes) {
  WriteU64(bytes.size());
  if (!bytes.empty()) Append(bytes.data(), bytes.size());
}

void SnapshotWriter::WriteMatrix(const Matrix& matrix) {
  WriteU64(matrix.rows());
  WriteU64(matrix.cols());
  if (matrix.size() > 0) {
    Append(matrix.data(), matrix.size() * sizeof(double));
  }
}

void SnapshotWriter::WriteBatch(const Batch& batch) {
  WriteI64(batch.index);
  WriteMatrix(batch.features);
  WriteIntVec(batch.labels);
}

Status SnapshotReader::Take(void* out, size_t size) {
  if (size > remaining()) {
    return Status::InvalidArgument("snapshot: truncated (need " +
                                   std::to_string(size) + " bytes, have " +
                                   std::to_string(remaining()) + ")");
  }
  std::memcpy(out, buffer_.data() + pos_, size);
  pos_ += size;
  return Status::OK();
}

Status SnapshotReader::CheckCount(uint64_t count, size_t elem_size) const {
  if (count > remaining() / elem_size) {
    return Status::InvalidArgument(
        "snapshot: embedded count " + std::to_string(count) +
        " exceeds the remaining " + std::to_string(remaining()) + " bytes");
  }
  return Status::OK();
}

Status SnapshotReader::ReadBool(bool* out) {
  uint8_t byte = 0;
  RETURN_IF_ERROR(Take(&byte, 1));
  if (byte > 1) {
    return Status::InvalidArgument("snapshot: bool byte out of range");
  }
  *out = byte == 1;
  return Status::OK();
}

Status SnapshotReader::ReadString(std::string* out) {
  uint64_t size = 0;
  RETURN_IF_ERROR(ReadU64(&size));
  RETURN_IF_ERROR(CheckCount(size, 1));
  out->resize(size);
  return size > 0 ? Take(out->data(), size) : Status::OK();
}

Status SnapshotReader::ReadDoubleVec(std::vector<double>* out) {
  uint64_t size = 0;
  RETURN_IF_ERROR(ReadU64(&size));
  RETURN_IF_ERROR(CheckCount(size, sizeof(double)));
  out->resize(size);
  return size > 0 ? Take(out->data(), size * sizeof(double)) : Status::OK();
}

Status SnapshotReader::ReadIntVec(std::vector<int>* out) {
  uint64_t size = 0;
  RETURN_IF_ERROR(ReadU64(&size));
  RETURN_IF_ERROR(CheckCount(size, sizeof(int64_t)));
  out->clear();
  out->reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    int64_t v = 0;
    RETURN_IF_ERROR(ReadI64(&v));
    out->push_back(static_cast<int>(v));
  }
  return Status::OK();
}

Status SnapshotReader::ReadBlob(std::vector<char>* out) {
  uint64_t size = 0;
  RETURN_IF_ERROR(ReadU64(&size));
  RETURN_IF_ERROR(CheckCount(size, 1));
  out->resize(size);
  return size > 0 ? Take(out->data(), size) : Status::OK();
}

Status SnapshotReader::ReadMatrix(Matrix* out) {
  uint64_t rows = 0;
  uint64_t cols = 0;
  RETURN_IF_ERROR(ReadU64(&rows));
  RETURN_IF_ERROR(ReadU64(&cols));
  // Validate both factors before multiplying so a corrupted shape can
  // neither overflow uint64 nor trigger an absurd allocation.
  RETURN_IF_ERROR(CheckCount(rows, 1));
  RETURN_IF_ERROR(CheckCount(cols, 1));
  if (rows > 0) RETURN_IF_ERROR(CheckCount(rows * cols, sizeof(double)));
  std::vector<double> data(rows * cols);
  if (!data.empty()) {
    RETURN_IF_ERROR(Take(data.data(), data.size() * sizeof(double)));
  }
  ASSIGN_OR_RETURN(*out, Matrix::FromData(rows, cols, std::move(data)));
  return Status::OK();
}

Status SnapshotReader::ReadBatch(Batch* out) {
  RETURN_IF_ERROR(ReadI64(&out->index));
  RETURN_IF_ERROR(ReadMatrix(&out->features));
  RETURN_IF_ERROR(ReadIntVec(&out->labels));
  if (!out->labels.empty() && out->labels.size() != out->features.rows()) {
    return Status::InvalidArgument(
        "snapshot: batch label count does not match feature rows");
  }
  return Status::OK();
}

Status SnapshotReader::ExpectSection(uint32_t tag, uint32_t* version_out) {
  uint32_t read_tag = 0;
  uint32_t version = 0;
  RETURN_IF_ERROR(ReadU32(&read_tag));
  RETURN_IF_ERROR(ReadU32(&version));
  if (read_tag != tag) {
    return Status::InvalidArgument(
        "snapshot: section tag mismatch (expected " + std::to_string(tag) +
        ", found " + std::to_string(read_tag) + ")");
  }
  if (version_out != nullptr) {
    *version_out = version;
  } else if (version != 1) {
    return Status::InvalidArgument("snapshot: unsupported section version " +
                                   std::to_string(version));
  }
  return Status::OK();
}

Status SnapshotReader::ExpectEnd() const {
  if (remaining() != 0) {
    return Status::InvalidArgument("snapshot: " + std::to_string(remaining()) +
                                   " trailing bytes after the final section");
  }
  return Status::OK();
}

}  // namespace freeway
