#include "scenarios/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <unordered_map>

#include "common/logging.h"

namespace freeway {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// First occurrence of `"key": <number>` in a JSON body — enough to read
/// the "totals" object of the server's /stats reply, which renders before
/// the per-shard rows.
uint64_t ExtractJsonUint(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = body.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtoull(body.c_str() + at + needle.size(), nullptr, 10);
}

/// Shared tallies the client threads publish so the curve sampler can read
/// them mid-replay without touching thread-local ClientTallies.
struct SharedTallies {
  std::atomic<uint64_t> overloads{0};
  std::atomic<uint64_t> failovers{0};
  std::atomic<uint64_t> resends{0};
  std::atomic<uint64_t> labeled_sent{0};
  std::atomic<uint64_t> labeled_failed{0};
  std::atomic<uint64_t> unlabeled_sent{0};
  std::atomic<uint64_t> results{0};
};

struct ClientPlan {
  size_t tenant_index = 0;
  std::vector<const ScenarioEvent*> events;  // Arrival order.
};

void AbsorbResults(StreamClient* client,
                   std::unordered_map<int64_t, Clock::time_point>* sent_at,
                   PrequentialScorer* scorer, SharedTallies* shared) {
  for (const StreamResult& result : client->TakeResults()) {
    const auto now = Clock::now();
    double latency = 0.0;
    auto it = sent_at->find(result.batch_index);
    if (it != sent_at->end()) {
      latency = MicrosBetween(it->second, now);
      sent_at->erase(it);
    }
    scorer->Record(static_cast<size_t>(result.batch_index),
                   result.report.predictions,
                   static_cast<int>(result.report.strategy), latency);
    shared->results.fetch_add(1, std::memory_order_relaxed);
  }
}

void RunClientThread(const GeneratedScenario& scenario,
                     const LoadgenOptions& options, const ClientPlan& plan,
                     const ScenarioTenant& tenant, Clock::time_point start,
                     PrequentialScorer* scorer, SharedTallies* shared) {
  ClientOptions copts;
  copts.endpoints = options.endpoints;
  copts.tenant_id = tenant.id;
  copts.priority = tenant.priority;
  StreamClient client(copts);
  std::unordered_map<int64_t, Clock::time_point> sent_at;

  uint64_t published_overloads = 0, published_failovers = 0,
           published_resends = 0;
  const auto publish = [&] {
    const ClientTallies& t = client.tallies();
    shared->overloads += t.overloads - published_overloads;
    shared->failovers += t.failovers - published_failovers;
    shared->resends += t.resends - published_resends;
    published_overloads = t.overloads;
    published_failovers = t.failovers;
    published_resends = t.resends;
  };

  for (const ScenarioEvent* ev : plan.events) {
    if (options.time_scale > 0.0) {
      const auto target =
          start + std::chrono::microseconds(static_cast<int64_t>(
                      static_cast<double>(ev->arrival_micros) /
                      options.time_scale));
      std::this_thread::sleep_until(target);
    }
    const Batch& base = scenario.batches[ev->base_index];
    if (ev->training) {
      shared->labeled_sent.fetch_add(1, std::memory_order_relaxed);
      const Status status = client.Submit(ev->stream_id, base);
      if (!status.ok()) {
        shared->labeled_failed.fetch_add(1, std::memory_order_relaxed);
        FREEWAY_LOG(kWarning)
            << "loadgen: labeled submit failed: " << status;
      }
    } else {
      sent_at[base.index] = Clock::now();
      shared->unlabeled_sent.fetch_add(1, std::memory_order_relaxed);
      const Status status = client.Submit(ev->stream_id, UnlabeledCopy(base));
      if (!status.ok()) sent_at.erase(base.index);
    }
    client.PumpResults();
    AbsorbResults(&client, &sent_at, scorer, shared);
    publish();
  }

  // Wait for the results of batches still in flight on the server. A shed
  // unlabeled batch never answers, so this is deadline-bounded.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options.drain_timeout_millis);
  while (!sent_at.empty() && Clock::now() < deadline) {
    Result<std::vector<StreamResult>> polled = client.PollResults(250);
    if (!polled.ok()) break;
    for (const StreamResult& result : polled.value()) {
      const auto now = Clock::now();
      double latency = 0.0;
      auto it = sent_at.find(result.batch_index);
      if (it != sent_at.end()) {
        latency = MicrosBetween(it->second, now);
        sent_at.erase(it);
      }
      scorer->Record(static_cast<size_t>(result.batch_index),
                     result.report.predictions,
                     static_cast<int>(result.report.strategy), latency);
      shared->results.fetch_add(1, std::memory_order_relaxed);
    }
  }
  publish();
}

}  // namespace

Result<ScenarioReport> RunScenarioOverNetwork(const GeneratedScenario& scenario,
                                              const LoadgenOptions& options) {
  if (options.endpoints.empty()) {
    return Status::InvalidArgument("loadgen: no server endpoints");
  }
  std::vector<ScenarioTenant> tenants = scenario.spec.tenants;
  if (tenants.empty()) {
    ScenarioTenant def;
    def.streams = 4;
    tenants.push_back(def);
  }
  const size_t num_clients = std::max(options.num_clients, tenants.size());

  // Tenant identity rides the connection, so clients are assigned to
  // tenants round-robin and a tenant's events are sharded across its
  // clients by stream id — per-stream FIFO survives because one stream
  // always maps to one client.
  std::vector<size_t> tenant_of_client(num_clients);
  std::vector<std::vector<size_t>> clients_of_tenant(tenants.size());
  std::unordered_map<uint32_t, size_t> tenant_index;
  for (size_t t = 0; t < tenants.size(); ++t) tenant_index[tenants[t].id] = t;
  for (size_t c = 0; c < num_clients; ++c) {
    tenant_of_client[c] = c % tenants.size();
    clients_of_tenant[c % tenants.size()].push_back(c);
  }
  std::vector<ClientPlan> plans(num_clients);
  for (size_t c = 0; c < num_clients; ++c) {
    plans[c].tenant_index = tenant_of_client[c];
  }
  for (const ScenarioEvent& ev : scenario.events) {
    auto it = tenant_index.find(ev.tenant_id);
    const size_t t = it == tenant_index.end() ? 0 : it->second;
    const std::vector<size_t>& group = clients_of_tenant[t];
    const size_t c = group[ev.stream_id % group.size()];
    plans[c].events.push_back(&ev);
  }

  const auto start = Clock::now();
  ScenarioReport report;
  report.scenario = scenario.spec.name;
  report.mode = "network";
  report.system = "FreewayML";
  report.scenario_seconds =
      static_cast<double>(scenario.duration_micros) / 1e6;
  report.time_scale = options.time_scale;
  report.clients = num_clients;
  report.nodes = options.endpoints.size();
  PrequentialScorer scorer(&scenario, options.accuracy_window);
  SharedTallies shared;

  // Curve sampler: client tallies + the server's /stats totals, on a wall
  // cadence matched to the scaled scenario duration.
  std::atomic<bool> sampling{true};
  std::mutex curve_mutex;
  const ClientEndpoint& stats_endpoint = options.endpoints.front();
  const double wall_estimate_seconds =
      options.time_scale > 0.0
          ? report.scenario_seconds / options.time_scale
          : 0.0;
  const int64_t sample_millis = std::max<int64_t>(
      50, wall_estimate_seconds > 0.0
              ? static_cast<int64_t>(wall_estimate_seconds * 1000.0 /
                                     static_cast<double>(std::max<size_t>(
                                         1, options.curve_points)))
              : 100);
  std::thread sampler([&] {
    while (sampling.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sample_millis));
      CurveSample sample;
      sample.scenario_seconds =
          MicrosBetween(start, Clock::now()) / 1e6 *
          (options.time_scale > 0.0 ? options.time_scale : 1.0);
      Result<std::string> stats =
          HttpGet(stats_endpoint.host, stats_endpoint.port, "/stats", 1000);
      if (stats.ok()) {
        sample.enqueued = ExtractJsonUint(stats.value(), "enqueued");
        sample.processed = ExtractJsonUint(stats.value(), "processed");
        sample.shed = ExtractJsonUint(stats.value(), "shed");
        sample.rejected = ExtractJsonUint(stats.value(), "rejected");
        sample.quarantined = ExtractJsonUint(stats.value(), "quarantined");
      }
      sample.dedup_resends = shared.resends.load(std::memory_order_relaxed);
      sample.overloads = shared.overloads.load(std::memory_order_relaxed);
      sample.failovers = shared.failovers.load(std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(curve_mutex);
      report.curve.push_back(sample);
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(num_clients);
  for (size_t c = 0; c < num_clients; ++c) {
    threads.emplace_back(RunClientThread, std::cref(scenario),
                         std::cref(options), std::cref(plans[c]),
                         std::cref(tenants[plans[c].tenant_index]), start,
                         &scorer, &shared);
  }
  for (std::thread& t : threads) t.join();
  sampling.store(false, std::memory_order_release);
  sampler.join();

  // Let the server counters settle (in-flight drains to 0), then read the
  // final totals for reconciliation. With a replicated group every node
  // applies the committed stream, so any reachable node can reconcile.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options.drain_timeout_millis);
  std::string final_stats;
  bool reconciled = false;
  while (Clock::now() < deadline && !reconciled) {
    for (const ClientEndpoint& ep : options.endpoints) {
      Result<std::string> stats = HttpGet(ep.host, ep.port, "/stats", 1000);
      if (!stats.ok()) continue;
      final_stats = stats.value();
      const uint64_t enqueued = ExtractJsonUint(final_stats, "enqueued");
      const uint64_t settled = ExtractJsonUint(final_stats, "processed") +
                               ExtractJsonUint(final_stats, "shed") +
                               ExtractJsonUint(final_stats, "quarantined") +
                               ExtractJsonUint(final_stats, "undrained");
      if (enqueued == settled) {
        reconciled = true;
        break;
      }
    }
    if (!reconciled) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  if (!final_stats.empty()) {
    report.enqueued = ExtractJsonUint(final_stats, "enqueued");
    report.processed = ExtractJsonUint(final_stats, "processed");
    report.shed = ExtractJsonUint(final_stats, "shed");
    report.rejected = ExtractJsonUint(final_stats, "rejected");
    report.quarantined = ExtractJsonUint(final_stats, "quarantined");
    report.undrained = ExtractJsonUint(final_stats, "undrained");
    report.in_flight =
        report.enqueued -
        std::min(report.enqueued, report.processed + report.shed +
                                      report.quarantined + report.undrained);
  }
  report.reconciled =
      reconciled &&
      report.enqueued == report.processed + report.shed + report.quarantined +
                             report.undrained + report.in_flight;
  report.labeled_submitted = shared.labeled_sent.load();
  report.unlabeled_submitted = shared.unlabeled_sent.load();
  report.results_received = shared.results.load();
  report.zero_labeled_loss =
      report.reconciled && shared.labeled_failed.load() == 0;
  scorer.Finish(&report);
  report.wall_seconds = MicrosBetween(start, Clock::now()) / 1e6;
  return report;
}

}  // namespace freeway
