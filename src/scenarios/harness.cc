#include "scenarios/harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <unordered_map>

#include "core/learner.h"

namespace freeway {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// Nearest-rank percentile of an unsorted sample (copied, q in [0, 1]).
double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      std::min(static_cast<double>(values.size() - 1),
               std::floor(q * static_cast<double>(values.size()))));
  return values[rank];
}

/// Cohen's kappa from a flattened pred×label confusion matrix.
double KappaFrom(const std::vector<uint64_t>& confusion, size_t classes) {
  uint64_t total = 0, diag = 0;
  for (size_t p = 0; p < classes; ++p) {
    for (size_t l = 0; l < classes; ++l) {
      total += confusion[p * classes + l];
      if (p == l) diag += confusion[p * classes + l];
    }
  }
  if (total == 0) return 0.0;
  const double n = static_cast<double>(total);
  const double po = static_cast<double>(diag) / n;
  double pe = 0.0;
  for (size_t c = 0; c < classes; ++c) {
    uint64_t row = 0, col = 0;
    for (size_t l = 0; l < classes; ++l) row += confusion[c * classes + l];
    for (size_t p = 0; p < classes; ++p) col += confusion[p * classes + c];
    pe += (static_cast<double>(row) / n) * (static_cast<double>(col) / n);
  }
  if (pe >= 1.0 - 1e-12) return 0.0;
  return (po - pe) / (1.0 - pe);
}

void AppendJsonDouble(std::ostringstream* out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  *out << std::setprecision(6) << std::fixed << v
       << std::defaultfloat << std::setprecision(17);
}

}  // namespace

PrequentialScorer::PrequentialScorer(const GeneratedScenario* scenario,
                                     size_t window)
    : scenario_(scenario),
      window_(window == 0 ? 1 : window),
      num_classes_(0),
      cells_(scenario->batches.size()) {
  for (const Batch& batch : scenario_->batches) {
    for (int label : batch.labels) {
      if (label >= 0 && static_cast<size_t>(label) + 1 > num_classes_) {
        num_classes_ = static_cast<size_t>(label) + 1;
      }
    }
  }
  if (num_classes_ < 2) num_classes_ = 2;
}

void PrequentialScorer::Record(size_t base_index,
                               const std::vector<int>& predictions,
                               int mechanism, double latency_micros) {
  if (base_index >= cells_.size()) return;
  const Batch& base = scenario_->batches[base_index];
  const size_t n = std::min(predictions.size(), base.labels.size());
  if (n == 0) return;
  size_t hits = 0;
  // Confusion rows index predictions, columns labels; out-of-range values
  // clamp into the last class so a misbehaving model cannot corrupt it.
  std::vector<uint32_t> confusion(num_classes_ * num_classes_, 0);
  const auto clamp = [&](int v) {
    if (v < 0) return size_t{0};
    return std::min(static_cast<size_t>(v), num_classes_ - 1);
  };
  for (size_t i = 0; i < n; ++i) {
    if (predictions[i] == base.labels[i]) ++hits;
    ++confusion[clamp(predictions[i]) * num_classes_ + clamp(base.labels[i])];
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Cell& cell = cells_[base_index];
  cell.scored = true;
  cell.accuracy = static_cast<double>(hits) / static_cast<double>(n);
  cell.mechanism = mechanism;
  cell.latency_micros = latency_micros;
  cell.confusion = std::move(confusion);
}

void PrequentialScorer::Finish(ScenarioReport* report) {
  std::lock_guard<std::mutex> lock(mutex_);
  report->accuracy_window = window_;
  report->prequential = PrequentialResult{};
  report->windowed_accuracy.clear();
  report->windowed_kappa.clear();
  report->batch_mechanisms.clear();
  report->mechanisms.clear();

  const size_t warmup = scenario_->spec.warmup_batches;
  std::vector<uint64_t> total_confusion(num_classes_ * num_classes_, 0);
  std::vector<uint64_t> window_confusion(num_classes_ * num_classes_, 0);
  double window_acc = 0.0;
  size_t window_fill = 0;
  // Buckets 0..2 are the paper's strategies, 3 is unattributed.
  struct Bucket {
    size_t batches = 0;
    double accuracy_sum = 0.0;
    std::vector<double> latencies;
  };
  Bucket buckets[4];

  for (size_t b = 0; b < cells_.size(); ++b) {
    const Cell& cell = cells_[b];
    if (b < warmup || !cell.scored) continue;
    report->prequential.batch_accuracies.push_back(cell.accuracy);
    report->prequential.batch_kinds.push_back(
        scenario_->metas[b].segment_kind);
    report->prequential.shift_events.push_back(
        scenario_->metas[b].shift_event);
    report->batch_mechanisms.push_back(cell.mechanism);
    for (size_t k = 0; k < cell.confusion.size(); ++k) {
      total_confusion[k] += cell.confusion[k];
      window_confusion[k] += cell.confusion[k];
    }
    window_acc += cell.accuracy;
    if (++window_fill == window_) {
      report->windowed_accuracy.push_back(window_acc /
                                          static_cast<double>(window_fill));
      report->windowed_kappa.push_back(
          KappaFrom(window_confusion, num_classes_));
      window_acc = 0.0;
      window_fill = 0;
      std::fill(window_confusion.begin(), window_confusion.end(), 0);
    }
    const size_t bucket =
        (cell.mechanism >= 0 && cell.mechanism < 3) ? cell.mechanism : 3;
    buckets[bucket].batches += 1;
    buckets[bucket].accuracy_sum += cell.accuracy;
    buckets[bucket].latencies.push_back(cell.latency_micros);
  }
  if (window_fill > 0) {
    report->windowed_accuracy.push_back(window_acc /
                                        static_cast<double>(window_fill));
    report->windowed_kappa.push_back(KappaFrom(window_confusion, num_classes_));
  }

  FinalizePrequentialMetrics(&report->prequential);
  report->kappa = KappaFrom(total_confusion, num_classes_);
  report->scored_batches = report->prequential.batch_accuracies.size();

  const char* names[4] = {StrategyName(Strategy::kMultiGranularity),
                          StrategyName(Strategy::kCec),
                          StrategyName(Strategy::kKnowledgeReuse),
                          "unattributed"};
  for (size_t m = 0; m < 4; ++m) {
    if (buckets[m].batches == 0) continue;
    MechanismReport mech;
    mech.name = names[m];
    mech.batches = buckets[m].batches;
    mech.accuracy =
        buckets[m].accuracy_sum / static_cast<double>(buckets[m].batches);
    mech.latency_p50_micros = Percentile(buckets[m].latencies, 0.50);
    mech.latency_p99_micros = Percentile(buckets[m].latencies, 0.99);
    report->mechanisms.push_back(std::move(mech));
  }
}

std::string RenderScenarioJson(const ScenarioReport& r) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"scenario\": \"" << r.scenario << "\",\n";
  out << "  \"mode\": \"" << r.mode << "\",\n";
  out << "  \"system\": \"" << r.system << "\",\n";
  out << "  \"accuracy\": {\n";
  out << "    \"g_acc\": ";
  AppendJsonDouble(&out, r.prequential.g_acc);
  out << ",\n    \"stability_index\": ";
  AppendJsonDouble(&out, r.prequential.stability_index);
  out << ",\n    \"kappa\": ";
  AppendJsonDouble(&out, r.kappa);
  out << ",\n    \"scored_batches\": " << r.scored_batches;
  const PatternAccuracy& pp = r.prequential.per_pattern;
  out << ",\n    \"per_pattern\": {\"slight\": ";
  AppendJsonDouble(&out, pp.slight);
  out << ", \"sudden\": ";
  AppendJsonDouble(&out, pp.sudden);
  out << ", \"reoccurring\": ";
  AppendJsonDouble(&out, pp.reoccurring);
  out << ", \"slight_batches\": " << pp.slight_batches
      << ", \"sudden_batches\": " << pp.sudden_batches
      << ", \"reoccurring_batches\": " << pp.reoccurring_batches << "}";
  out << ",\n    \"window\": " << r.accuracy_window;
  out << ",\n    \"windowed_accuracy\": [";
  for (size_t i = 0; i < r.windowed_accuracy.size(); ++i) {
    if (i) out << ", ";
    AppendJsonDouble(&out, r.windowed_accuracy[i]);
  }
  out << "],\n    \"windowed_kappa\": [";
  for (size_t i = 0; i < r.windowed_kappa.size(); ++i) {
    if (i) out << ", ";
    AppendJsonDouble(&out, r.windowed_kappa[i]);
  }
  out << "]\n  },\n";
  out << "  \"mechanisms\": [";
  for (size_t i = 0; i < r.mechanisms.size(); ++i) {
    const MechanismReport& m = r.mechanisms[i];
    if (i) out << ",";
    out << "\n    {\"name\": \"" << m.name << "\", \"batches\": " << m.batches
        << ", \"accuracy\": ";
    AppendJsonDouble(&out, m.accuracy);
    out << ", \"latency_p50_micros\": ";
    AppendJsonDouble(&out, m.latency_p50_micros);
    out << ", \"latency_p99_micros\": ";
    AppendJsonDouble(&out, m.latency_p99_micros);
    out << "}";
  }
  out << (r.mechanisms.empty() ? "],\n" : "\n  ],\n");
  out << "  \"curve\": [";
  for (size_t i = 0; i < r.curve.size(); ++i) {
    const CurveSample& c = r.curve[i];
    if (i) out << ",";
    out << "\n    {\"t\": ";
    AppendJsonDouble(&out, c.scenario_seconds);
    out << ", \"enqueued\": " << c.enqueued << ", \"processed\": "
        << c.processed << ", \"shed\": " << c.shed << ", \"rejected\": "
        << c.rejected << ", \"quarantined\": " << c.quarantined
        << ", \"dedup_resends\": " << c.dedup_resends << ", \"overloads\": "
        << c.overloads << ", \"failovers\": " << c.failovers << "}";
  }
  out << (r.curve.empty() ? "],\n" : "\n  ],\n");
  out << "  \"reconciliation\": {\n";
  out << "    \"enqueued\": " << r.enqueued << ",\n";
  out << "    \"processed\": " << r.processed << ",\n";
  out << "    \"shed\": " << r.shed << ",\n";
  out << "    \"rejected\": " << r.rejected << ",\n";
  out << "    \"quarantined\": " << r.quarantined << ",\n";
  out << "    \"undrained\": " << r.undrained << ",\n";
  out << "    \"in_flight\": " << r.in_flight << ",\n";
  out << "    \"reconciled\": " << (r.reconciled ? "true" : "false") << ",\n";
  out << "    \"labeled_submitted\": " << r.labeled_submitted << ",\n";
  out << "    \"unlabeled_submitted\": " << r.unlabeled_submitted << ",\n";
  out << "    \"labeled_dead_letters\": " << r.labeled_dead_letters << ",\n";
  out << "    \"results_received\": " << r.results_received << ",\n";
  out << "    \"zero_labeled_loss\": "
      << (r.zero_labeled_loss ? "true" : "false") << "\n  },\n";
  out << "  \"replay\": {\"wall_seconds\": ";
  AppendJsonDouble(&out, r.wall_seconds);
  out << ", \"scenario_seconds\": ";
  AppendJsonDouble(&out, r.scenario_seconds);
  out << ", \"time_scale\": ";
  AppendJsonDouble(&out, r.time_scale);
  out << ", \"clients\": " << r.clients << ", \"workers\": " << r.workers
      << ", \"nodes\": " << r.nodes << "}\n";
  out << "}\n";
  return out.str();
}

Result<ScenarioReport> RunScenarioOnLearner(
    StreamingLearner* learner, const GeneratedScenario& scenario,
    const LearnerHarnessOptions& options) {
  if (learner == nullptr) {
    return Status::InvalidArgument("RunScenarioOnLearner: null learner");
  }
  const auto start = Clock::now();
  ScenarioReport report;
  report.scenario = scenario.spec.name;
  report.mode = "learner";
  report.system = learner->name();
  report.scenario_seconds =
      static_cast<double>(scenario.duration_micros) / 1e6;
  PrequentialScorer scorer(&scenario, options.accuracy_window);

  const std::vector<ScenarioEvent>& events = scenario.events;
  for (size_t e = 0; e < events.size(); ++e) {
    const ScenarioEvent& ev = events[e];
    const Batch& base = scenario.batches[ev.base_index];
    if (ev.training) {
      RETURN_IF_ERROR(learner->Train(base));
      continue;
    }
    // Immediate labels put the labeled copy right behind the unlabeled
    // one; couple them into one PrequentialStep so systems whose inference
    // and training share an assessment (FreewayML) behave exactly as under
    // RunPrequential.
    const bool coupled = e + 1 < events.size() && events[e + 1].training &&
                         events[e + 1].base_index == ev.base_index;
    const auto t0 = Clock::now();
    Result<std::vector<int>> predictions =
        coupled ? learner->PrequentialStep(base)
                : learner->Predict(base.features);
    RETURN_IF_ERROR(predictions.status());
    const double latency = MicrosBetween(t0, Clock::now());
    const int mechanism =
        options.mechanism_probe ? options.mechanism_probe() : -1;
    scorer.Record(ev.base_index, predictions.value(), mechanism, latency);
    if (coupled) ++e;
    ++report.unlabeled_submitted;
    ++report.results_received;
  }
  report.labeled_submitted = scenario.batches.size();
  // Direct replay: every batch reaches the learner, nothing is queued.
  report.enqueued = report.labeled_submitted + report.unlabeled_submitted;
  report.processed = report.enqueued;
  scorer.Finish(&report);
  report.wall_seconds = MicrosBetween(start, Clock::now()) / 1e6;
  return report;
}

Result<ScenarioReport> RunScenarioOnRuntime(
    const Model& prototype, const GeneratedScenario& scenario,
    const RuntimeHarnessOptions& options) {
  const auto start = Clock::now();
  ScenarioReport report;
  report.scenario = scenario.spec.name;
  report.mode = "runtime";
  report.system = "FreewayML";
  report.scenario_seconds =
      static_cast<double>(scenario.duration_micros) / 1e6;
  PrequentialScorer scorer(&scenario, options.accuracy_window);

  RuntimeOptions ropts;
  ropts.num_shards = options.num_shards;
  ropts.queue_capacity = options.queue_capacity;
  ropts.overload_policy = options.overload_policy;
  ropts.pipeline.learner = options.learner;

  std::mutex submit_mutex;
  std::unordered_map<int64_t, Clock::time_point> submit_times;
  std::atomic<uint64_t> results_received{0};
  StreamRuntime runtime(
      prototype, ropts, [&](const StreamResult& result) {
        const auto now = Clock::now();
        double latency = 0.0;
        {
          std::lock_guard<std::mutex> lock(submit_mutex);
          auto it = submit_times.find(result.batch_index);
          if (it != submit_times.end()) {
            latency = MicrosBetween(it->second, now);
            submit_times.erase(it);
          }
        }
        scorer.Record(static_cast<size_t>(result.batch_index),
                      result.report.predictions,
                      static_cast<int>(result.report.strategy), latency);
        results_received.fetch_add(1, std::memory_order_relaxed);
      });

  const size_t sample_every =
      std::max<size_t>(1, scenario.events.size() /
                              std::max<size_t>(1, options.curve_points));
  for (size_t e = 0; e < scenario.events.size(); ++e) {
    const ScenarioEvent& ev = scenario.events[e];
    const Batch& base = scenario.batches[ev.base_index];
    SubmitContext context{ev.tenant_id, ev.priority};
    if (ev.training) {
      RETURN_IF_ERROR(runtime.Submit(ev.stream_id, base, context));
      ++report.labeled_submitted;
    } else {
      {
        std::lock_guard<std::mutex> lock(submit_mutex);
        submit_times[base.index] = Clock::now();
      }
      RETURN_IF_ERROR(
          runtime.Submit(ev.stream_id, UnlabeledCopy(base), context));
      ++report.unlabeled_submitted;
    }
    if (e % sample_every == sample_every - 1) {
      const RuntimeStatsSnapshot snap = runtime.Snapshot();
      CurveSample sample;
      sample.scenario_seconds =
          static_cast<double>(ev.arrival_micros) / 1e6;
      sample.enqueued = snap.totals.enqueued;
      sample.processed = snap.totals.processed;
      sample.shed = snap.totals.shed;
      sample.rejected = snap.totals.rejected;
      sample.quarantined = snap.totals.quarantined;
      report.curve.push_back(sample);
    }
  }

  runtime.Flush();
  runtime.Shutdown();
  const RuntimeStatsSnapshot snap = runtime.Snapshot();
  report.enqueued = snap.totals.enqueued;
  report.processed = snap.totals.processed;
  report.shed = snap.totals.shed;
  report.rejected = snap.totals.rejected;
  report.quarantined = snap.totals.quarantined;
  report.undrained = snap.totals.undrained;
  report.in_flight = snap.totals.in_flight;
  report.reconciled =
      report.enqueued == report.processed + report.shed + report.quarantined +
                             report.undrained + report.in_flight;
  for (const DeadLetter& letter : runtime.TakeDeadLetters()) {
    if (letter.batch.labeled()) ++report.labeled_dead_letters;
  }
  report.results_received = results_received.load();
  report.zero_labeled_loss =
      report.reconciled && report.labeled_dead_letters == 0;
  report.workers = runtime.num_shards();
  scorer.Finish(&report);
  report.wall_seconds = MicrosBetween(start, Clock::now()) / 1e6;
  return report;
}

}  // namespace freeway
