#include "scenarios/scenario.h"

#include <algorithm>
#include <cmath>
#include <tuple>

namespace freeway {

namespace {

/// Per-kind default magnitudes, matching the strengths the figure benches
/// have historically used for each paper pattern.
double DefaultMagnitude(ScenarioDriftKind kind) {
  switch (kind) {
    case ScenarioDriftKind::kGradual: return 0.08;
    case ScenarioDriftKind::kJitter: return 0.15;
    case ScenarioDriftKind::kAbrupt: return 3.0;
    default: return 0.0;
  }
}

DriftSegment CompileSegment(const ScenarioDriftSegment& seg) {
  DriftSegment out;
  out.num_batches = seg.num_batches;
  out.save_checkpoint = seg.save_checkpoint;
  out.new_priors = seg.priors;

  // Cluster segments lower onto the classic shape named by `cluster_mode`,
  // restricted to the affected centroids; everything else maps 1:1.
  const ScenarioDriftKind shape =
      seg.kind == ScenarioDriftKind::kCluster ? seg.cluster_mode : seg.kind;
  switch (shape) {
    case ScenarioDriftKind::kStationary:
      out.kind = DriftKind::kStationary;
      break;
    case ScenarioDriftKind::kGradual:
      out.kind = DriftKind::kDirectional;
      break;
    case ScenarioDriftKind::kJitter:
      out.kind = DriftKind::kLocalized;
      break;
    case ScenarioDriftKind::kAbrupt:
      out.kind = DriftKind::kSudden;
      break;
    case ScenarioDriftKind::kRecurring:
      out.kind = DriftKind::kReoccurring;
      out.reoccur_checkpoint = seg.checkpoint;
      break;
    case ScenarioDriftKind::kCluster:
      // Unreachable: cluster_mode is validated to a concrete shape.
      out.kind = DriftKind::kSudden;
      break;
  }
  out.magnitude =
      seg.magnitude > 0.0 ? seg.magnitude : DefaultMagnitude(shape);
  out.affected_classes = seg.classes;
  return out;
}

}  // namespace

DriftScript CompileDriftScript(const ScenarioSpec& spec) {
  DriftScript script;
  script.loop = true;
  script.segments.reserve(spec.drift.size());
  for (const ScenarioDriftSegment& seg : spec.drift) {
    script.segments.push_back(CompileSegment(seg));
  }
  return script;
}

Result<std::unique_ptr<StreamSource>> MakeScenarioSource(
    const ScenarioSpec& spec) {
  if (!spec.dataset.empty()) {
    return MakeBenchmarkDataset(spec.dataset, spec.seed);
  }
  if (spec.drift.empty()) {
    return Status::InvalidArgument("scenario '" + spec.name +
                                   "': no dataset and no drift schedule");
  }
  ConceptSourceOptions options;
  options.dim = spec.dim;
  options.num_classes = spec.classes;
  options.class_separation = spec.class_separation;
  options.noise_sigma = spec.noise_sigma;
  options.transition_fraction = spec.transition_fraction;
  options.seed = spec.seed;
  return std::unique_ptr<StreamSource>(std::make_unique<GaussianConceptSource>(
      spec.name, options, CompileDriftScript(spec)));
}

Batch UnlabeledCopy(const Batch& batch) {
  Batch out;
  out.features = batch.features;
  out.index = batch.index;
  return out;
}

Result<GeneratedScenario> GenerateScenario(const ScenarioSpec& spec) {
  GeneratedScenario scenario;
  scenario.spec = spec;

  // 1. Draw the data stream. The source owns the spec seed directly, so the
  // batch contents cannot be perturbed by arrival/tenant sampling below.
  ASSIGN_OR_RETURN(std::unique_ptr<StreamSource> source,
                   MakeScenarioSource(spec));
  scenario.batches.reserve(spec.num_batches);
  scenario.metas.reserve(spec.num_batches);
  for (size_t b = 0; b < spec.num_batches; ++b) {
    ASSIGN_OR_RETURN(Batch batch, source->NextBatch(spec.batch_size));
    scenario.batches.push_back(std::move(batch));
    scenario.metas.push_back(source->LastBatchMeta());
  }

  // 2. Arrival times from a forked child generator: decorrelated from the
  // data draw, so two specs differing only in arrival produce identical
  // batches, and two seeds produce measurably different jitter.
  Rng parent(spec.seed);
  Rng arrival_rng = parent.Fork(1);
  const ArrivalSpec& a = spec.arrival;
  std::vector<uint64_t> arrivals(spec.num_batches, 0);
  double t = 0.0;  // Scenario-time seconds.
  bool in_burst = false;
  size_t phase_left = 0;
  auto draw_phase = [&]() {
    return 1 + static_cast<size_t>(
                   -a.burst_batches *
                   std::log(1.0 - arrival_rng.NextDouble()));
  };
  for (size_t i = 0; i < spec.num_batches; ++i) {
    double rate = a.rate;
    switch (a.kind) {
      case ArrivalKind::kConstant:
        break;
      case ArrivalKind::kDiurnal: {
        const double phase = 2.0 * M_PI * t / std::max(a.period_seconds, 1e-9);
        rate = a.rate * (1.0 + a.amplitude * std::sin(phase));
        rate = std::max(rate, 0.05 * a.rate);
        break;
      }
      case ArrivalKind::kBursty: {
        if (phase_left == 0) {
          in_burst = !in_burst;
          phase_left = draw_phase();
        }
        --phase_left;
        if (in_burst) rate = a.rate * a.factor;
        break;
      }
      case ArrivalKind::kFlashCrowd: {
        if (t >= a.flash_at_seconds &&
            t < a.flash_at_seconds + a.flash_duration_seconds) {
          rate = a.rate * a.factor;
        }
        break;
      }
    }
    double gap = (1.0 / rate) * (1.0 + a.jitter * arrival_rng.Uniform(-1, 1));
    gap = std::max(gap, 1e-7);
    t += gap;
    arrivals[i] = static_cast<uint64_t>(t * 1e6);
  }

  // 3. Tenant / stream attribution from its own forked generator.
  std::vector<ScenarioTenant> tenants = spec.tenants;
  if (tenants.empty()) {
    ScenarioTenant def;
    def.streams = 4;
    tenants.push_back(def);
  }
  double share_sum = 0.0;
  for (const ScenarioTenant& tenant : tenants) share_sum += tenant.share;
  Rng tenant_rng = parent.Fork(2);
  std::vector<size_t> batch_tenant(spec.num_batches, 0);
  std::vector<uint64_t> batch_stream(spec.num_batches, 0);
  for (size_t i = 0; i < spec.num_batches; ++i) {
    const double u = tenant_rng.NextDouble() * share_sum;
    size_t pick = tenants.size() - 1;
    double acc = 0.0;
    for (size_t k = 0; k < tenants.size(); ++k) {
      acc += tenants[k].share;
      if (u < acc) {
        pick = k;
        break;
      }
    }
    batch_tenant[i] = pick;
    const uint64_t sub = tenant_rng.NextBelow(tenants[pick].streams);
    batch_stream[i] = (static_cast<uint64_t>(tenants[pick].id) << 32) | sub;
  }

  // 4. Label-delay schedule: the labeled copy of batch i arrives `lag`
  // batch-slots later (adversarially stretched inside shift-event windows),
  // strictly after the inference copy of the batch it trails.
  const uint64_t mean_gap_micros =
      static_cast<uint64_t>(std::max(1e6 / a.rate, 1.0));
  const size_t n = spec.num_batches;
  scenario.events.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    size_t lag = 0;
    switch (spec.labels.kind) {
      case LabelDelayKind::kImmediate:
        break;
      case LabelDelayKind::kFixedLag:
        lag = spec.labels.lag_batches;
        break;
      case LabelDelayKind::kAdversarial:
        lag = spec.labels.lag_batches;
        if (scenario.metas[i].shift_event) {
          lag = static_cast<size_t>(
              static_cast<double>(lag) * spec.labels.adversarial_factor);
        }
        break;
    }
    uint64_t train_micros;
    if (lag == 0) {
      train_micros = arrivals[i];
    } else if (i + lag < n) {
      train_micros = arrivals[i + lag] + 1;
    } else {
      // Labels landing past the stream end trail off at the mean rate.
      train_micros =
          arrivals[n - 1] + (i + lag - (n - 1)) * mean_gap_micros + 1;
    }

    ScenarioEvent infer;
    infer.arrival_micros = arrivals[i];
    infer.base_index = i;
    infer.training = false;
    infer.stream_id = batch_stream[i];
    infer.tenant_id = tenants[batch_tenant[i]].id;
    infer.priority = tenants[batch_tenant[i]].priority;
    ScenarioEvent train = infer;
    train.arrival_micros = train_micros;
    train.training = true;
    scenario.events.push_back(infer);
    scenario.events.push_back(train);
  }
  std::sort(scenario.events.begin(), scenario.events.end(),
            [](const ScenarioEvent& x, const ScenarioEvent& y) {
              return std::tie(x.arrival_micros, x.base_index, x.training) <
                     std::tie(y.arrival_micros, y.base_index, y.training);
            });
  scenario.duration_micros = scenario.events.back().arrival_micros;
  return scenario;
}

}  // namespace freeway
