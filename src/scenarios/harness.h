#ifndef FREEWAYML_SCENARIOS_HARNESS_H_
#define FREEWAYML_SCENARIOS_HARNESS_H_

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/streaming_learner.h"
#include "eval/prequential.h"
#include "ml/model.h"
#include "runtime/stream_runtime.h"
#include "scenarios/scenario.h"

namespace freeway {

/// Accuracy + latency aggregate for one inference mechanism (the paper's
/// three strategies, plus an "unattributed" bucket for systems that do not
/// expose a selector).
struct MechanismReport {
  std::string name;
  size_t batches = 0;
  double accuracy = 0.0;
  double latency_p50_micros = 0.0;
  double latency_p99_micros = 0.0;
};

/// One point on the operational curves sampled during a replay.
struct CurveSample {
  /// Scenario-time position of the sample (seconds).
  double scenario_seconds = 0.0;
  uint64_t enqueued = 0;
  uint64_t processed = 0;
  uint64_t shed = 0;
  uint64_t rejected = 0;
  uint64_t quarantined = 0;
  /// Network mode: duplicate submissions absorbed by server dedup so far
  /// (client resend tallies).
  uint64_t dedup_resends = 0;
  /// Network mode: OVERLOAD replies and endpoint failovers so far.
  uint64_t overloads = 0;
  uint64_t failovers = 0;
};

/// Everything one scenario replay measured, renderable as
/// SCENARIO_stats.json. Accuracy fields follow the prequential protocol
/// (warmup batches train but are not scored); reconciliation fields are
/// exact because they are read after the runtime/server went quiescent.
struct ScenarioReport {
  std::string scenario;
  /// "learner" | "runtime" | "network".
  std::string mode;
  std::string system;

  PrequentialResult prequential;
  /// Cohen's kappa over all scored batches (chance-corrected accuracy —
  /// the honest metric under the class-imbalance swings scenarios drive).
  double kappa = 0.0;
  /// Non-overlapping windows of `accuracy_window` scored batches.
  size_t accuracy_window = 10;
  std::vector<double> windowed_accuracy;
  std::vector<double> windowed_kappa;
  /// Mechanism (Strategy index, -1 = unattributed) that answered each
  /// scored batch, parallel to prequential.batch_accuracies. The figure
  /// benches plot this as the strategy line.
  std::vector<int> batch_mechanisms;

  std::vector<MechanismReport> mechanisms;
  std::vector<CurveSample> curve;

  /// Runtime/server totals after quiescence.
  uint64_t enqueued = 0;
  uint64_t processed = 0;
  uint64_t shed = 0;
  uint64_t rejected = 0;
  uint64_t quarantined = 0;
  uint64_t undrained = 0;
  uint64_t in_flight = 0;
  /// enqueued == processed + shed + quarantined + undrained + in_flight.
  bool reconciled = true;

  uint64_t labeled_submitted = 0;
  uint64_t unlabeled_submitted = 0;
  /// Labeled batches preserved on the dead-letter queue (runtime mode).
  uint64_t labeled_dead_letters = 0;
  uint64_t results_received = 0;
  uint64_t scored_batches = 0;
  /// Every labeled batch was accepted and none leaked: training data is
  /// never shed/rejected by design, so a labeled batch is either processed
  /// or sits, preserved, on the dead-letter queue.
  bool zero_labeled_loss = true;

  double wall_seconds = 0.0;
  double scenario_seconds = 0.0;
  /// Network mode: scenario-time compression factor (2 = replay at 2x).
  double time_scale = 1.0;
  size_t clients = 0;
  size_t workers = 0;
  size_t nodes = 0;
};

/// Renders the report as a JSON document (stable key order).
std::string RenderScenarioJson(const ScenarioReport& report);

/// Thread-safe prequential scorekeeper shared by the three replay modes:
/// compares returned predictions against the withheld labels of the base
/// batch, bucketing by drift pattern (ground truth from the scenario) and
/// by inference mechanism. Record() may be called from any thread in any
/// order; Finish() assembles stream-order metrics.
class PrequentialScorer {
 public:
  PrequentialScorer(const GeneratedScenario* scenario, size_t window);

  /// Scores `predictions` for base batch `base_index`. `mechanism` is the
  /// Strategy index that answered (-1 = unattributed), `latency_micros`
  /// the submit→result latency of the batch.
  void Record(size_t base_index, const std::vector<int>& predictions,
              int mechanism, double latency_micros);

  /// Fills the accuracy-side fields of `report` (prequential, kappa,
  /// windows, mechanisms, scored_batches).
  void Finish(ScenarioReport* report);

 private:
  struct Cell {
    bool scored = false;
    double accuracy = 0.0;
    int mechanism = -1;
    double latency_micros = 0.0;
    /// Flattened pred×label confusion counts for kappa.
    std::vector<uint32_t> confusion;
  };

  const GeneratedScenario* scenario_;
  size_t window_;
  size_t num_classes_;
  std::mutex mutex_;
  std::vector<Cell> cells_;
};

/// Learner-direct replay knobs.
struct LearnerHarnessOptions {
  size_t accuracy_window = 10;
  /// Returns the Strategy index of the learner's last inference (e.g.
  /// FreewayAdapter::last_report().strategy), or -1 when unknown. Null
  /// leaves every batch unattributed.
  std::function<int()> mechanism_probe;
};

/// Replays the scenario straight through a StreamingLearner on the calling
/// thread, honoring the label-delay schedule (inference happens when the
/// unlabeled copy arrives, training when its labels do). With immediate
/// labels this is the classic test-then-train loop — the exact
/// PrequentialStep sequence of RunPrequential, so accuracy is bit-identical
/// to the legacy figure benches. Latency here is inference compute time.
Result<ScenarioReport> RunScenarioOnLearner(
    StreamingLearner* learner, const GeneratedScenario& scenario,
    const LearnerHarnessOptions& options = {});

/// In-process runtime replay knobs.
struct RuntimeHarnessOptions {
  size_t num_shards = 2;
  size_t queue_capacity = 64;
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  size_t accuracy_window = 10;
  /// Target number of operational curve samples over the replay.
  size_t curve_points = 32;
  LearnerOptions learner;
};

/// Replays the scenario through an in-process StreamRuntime (as fast as it
/// can submit — arrival times order events but are not slept on), scoring
/// the RESULT reports and reconciling the runtime counters afterwards.
Result<ScenarioReport> RunScenarioOnRuntime(const Model& prototype,
                                            const GeneratedScenario& scenario,
                                            const RuntimeHarnessOptions& options = {});

}  // namespace freeway

#endif  // FREEWAYML_SCENARIOS_HARNESS_H_
