#ifndef FREEWAYML_SCENARIOS_SPEC_H_
#define FREEWAYML_SCENARIOS_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "directory/admission.h"

namespace freeway {

/// Drift shapes a scenario can schedule. The names are scenario-file
/// vocabulary; each compiles onto the one shared drift implementation in
/// GaussianConceptSource (DriftScript), so there is exactly one place in
/// the tree where a drift shape is realized.
enum class ScenarioDriftKind {
  kStationary,  ///< Concept holds still.
  kGradual,     ///< Slow directional motion (paper pattern A1).
  kJitter,      ///< Bounded localized wander (paper pattern A2).
  kAbrupt,      ///< Sudden jump to a new region (paper pattern B).
  kRecurring,   ///< Restore of a checkpointed concept (paper pattern C).
  kCluster,     ///< Cluster-localized: only a subset of class clusters
                ///< drifts (the cluster-specific localized-drift setting).
};

const char* ScenarioDriftKindName(ScenarioDriftKind kind);

/// One phase of a scenario's drift schedule.
struct ScenarioDriftSegment {
  ScenarioDriftKind kind = ScenarioDriftKind::kStationary;
  /// Batches this segment lasts.
  size_t num_batches = 10;
  /// Step length (gradual), jitter scale (jitter), or jump distance
  /// (abrupt / cluster). 0 picks a per-kind default at compile time.
  double magnitude = 0.0;
  /// For recurring: which checkpoint to restore (0-based).
  int checkpoint = 0;
  /// Save a concept checkpoint at segment entry (restorable later).
  bool save_checkpoint = false;
  /// Replace class priors at segment entry (empty keeps current).
  std::vector<double> priors;
  /// Cluster-localized segments: the affected class clusters.
  std::vector<size_t> classes;
  /// Cluster-localized segments: the shape applied to the affected subset
  /// (abrupt jump, gradual walk, or jitter). Defaults to abrupt.
  ScenarioDriftKind cluster_mode = ScenarioDriftKind::kAbrupt;
};

/// Batch arrival processes the loadgen can impose.
enum class ArrivalKind {
  kConstant,    ///< Fixed rate with bounded jitter.
  kDiurnal,     ///< Sinusoidal rate over a configurable period.
  kBursty,      ///< Alternating high-rate bursts and quiet gaps.
  kFlashCrowd,  ///< Baseline rate with a sharp multiplicative spike.
};

const char* ArrivalKindName(ArrivalKind kind);

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kConstant;
  /// Baseline arrival rate, batches/second of scenario time.
  double rate = 100.0;
  /// Relative uniform jitter on every inter-arrival gap (0.1 = ±10%).
  double jitter = 0.1;
  /// Diurnal: period of one rate cycle, seconds of scenario time.
  double period_seconds = 30.0;
  /// Diurnal: rate swings by ±amplitude × rate over a period.
  double amplitude = 0.5;
  /// Bursty: mean batches per burst (geometric).
  double burst_batches = 16.0;
  /// Bursty / flash-crowd: rate multiplier inside a burst / the flash.
  double factor = 8.0;
  /// Flash-crowd: spike start and duration, seconds of scenario time.
  double flash_at_seconds = 2.0;
  double flash_duration_seconds = 2.0;
};

/// When ground-truth labels follow their batch into the system.
enum class LabelDelayKind {
  kImmediate,    ///< Test-then-train: labels right behind the batch.
  kFixedLag,     ///< Labels arrive `lag_batches` arrivals later.
  kAdversarial,  ///< Fixed lag, multiplied during shift-event windows — the
                 ///< labels are latest exactly when adaptation needs them.
};

const char* LabelDelayKindName(LabelDelayKind kind);

struct LabelDelaySpec {
  LabelDelayKind kind = LabelDelayKind::kImmediate;
  size_t lag_batches = 0;
  /// Adversarial: lag multiplier while the stream is inside a
  /// sudden/recurring event window.
  double adversarial_factor = 4.0;
};

/// One tenant in the scenario's traffic mix.
struct ScenarioTenant {
  uint32_t id = 1;
  /// Weighted-admission share (DirectoryOptions tenant weight).
  uint32_t weight = 1;
  TenantPriority priority = TenantPriority::kStandard;
  /// Fraction of scenario batches carrying this tenant's id. Shares are
  /// normalized over the tenant list at generation time.
  double share = 1.0;
  /// Logical streams this tenant's traffic is spread across.
  uint64_t streams = 1;
};

/// A fully declarative streaming scenario: what the data drifts like, how
/// fast batches arrive, when labels show up, and who the traffic belongs
/// to. Everything is derived from `seed`, so one spec is one bit-exact
/// stream regardless of host, run, or thread count.
struct ScenarioSpec {
  std::string name;
  uint64_t seed = 42;
  size_t num_batches = 120;
  size_t batch_size = 256;
  /// Leading batches excluded from accuracy metrics (still train).
  size_t warmup_batches = 8;

  /// Non-empty: the stream is a named benchmark dataset simulator
  /// (MakeBenchmarkDataset) and the inline concept fields below are
  /// ignored. Empty: the stream is a GaussianConceptSource built from the
  /// inline fields + drift schedule.
  std::string dataset;
  size_t dim = 16;
  size_t classes = 2;
  double class_separation = 2.0;
  double noise_sigma = 1.0;
  double transition_fraction = 0.15;
  std::vector<ScenarioDriftSegment> drift;

  ArrivalSpec arrival;
  LabelDelaySpec labels;
  /// Empty defaults to one standard tenant with id 1, share 1, 4 streams.
  std::vector<ScenarioTenant> tenants;
};

/// Parses the line-oriented scenario grammar (see scenarios/README in the
/// repo root, or any canned spec):
///
///   name: abrupt            # '#' starts a comment, blank lines skipped
///   seed: 7
///   batches: 120
///   drift: abrupt 25 mag=3.0 save
///   drift: recurring 20 checkpoint=0
///   drift: cluster 30 mag=3.0 classes=0,2 mode=gradual
///   arrival: flash rate=120 at=2 dur=2 factor=10
///   labels: fixed-lag lag=5
///   tenant: 1 weight=4 priority=critical share=0.5 streams=8
///
/// Unknown keys and malformed values are errors (a spec that silently
/// ignored a typo would bench the wrong scenario).
Result<ScenarioSpec> ParseScenarioSpec(const std::string& text);

/// Reads and parses a spec file.
Result<ScenarioSpec> LoadScenarioSpecFile(const std::string& path);

/// Canned scenario names, in documentation order. Each has an identical
/// committed twin under scenarios/<name>.scn.
const std::vector<std::string>& CannedScenarioNames();

/// The canned spec text for `name`; NotFound for unknown names.
Result<std::string> CannedScenarioText(const std::string& name);

/// Resolves a canned name or a spec-file path, in that order.
Result<ScenarioSpec> ResolveScenarioSpec(const std::string& name_or_path);

}  // namespace freeway

#endif  // FREEWAYML_SCENARIOS_SPEC_H_
