#ifndef FREEWAYML_SCENARIOS_SCENARIO_H_
#define FREEWAYML_SCENARIOS_SCENARIO_H_

#include <memory>
#include <vector>

#include "data/concept.h"
#include "data/simulators.h"
#include "scenarios/spec.h"
#include "stream/batch.h"

namespace freeway {

/// Compiles a scenario's drift schedule onto the shared drift engine's
/// script language. Cluster segments lower onto the classic shapes with
/// `affected_classes` restricting which centroids move, so every drift
/// shape in the tree has exactly one implementation (GaussianConceptSource).
DriftScript CompileDriftScript(const ScenarioSpec& spec);

/// Builds the scenario's data source: the named benchmark dataset when
/// `spec.dataset` is set, otherwise a GaussianConceptSource over the inline
/// concept fields + compiled drift schedule. Deterministic under spec.seed.
Result<std::unique_ptr<StreamSource>> MakeScenarioSource(
    const ScenarioSpec& spec);

/// One timed submission in a generated scenario. Events reference the base
/// batch table by index instead of carrying a copy: each base batch yields
/// an unlabeled inference event at its arrival time and a labeled training
/// event at its label-delay time, and both must ride the same logical
/// stream (the training copy updates the pipeline the inference hit).
struct ScenarioEvent {
  /// Scenario-time offset from stream start.
  uint64_t arrival_micros = 0;
  /// Index into GeneratedScenario::batches / metas.
  size_t base_index = 0;
  /// False: submit the unlabeled copy (score the returned predictions).
  /// True: submit the labeled batch (train).
  bool training = false;
  uint64_t stream_id = 0;
  uint32_t tenant_id = 0;
  TenantPriority priority = TenantPriority::kStandard;
};

/// A fully materialized scenario: the labeled base batches in stream order
/// plus the timed, tenant-attributed event tape. Bit-identical for a given
/// spec regardless of host, run, or how many threads later replay it.
struct GeneratedScenario {
  ScenarioSpec spec;
  /// Base batches in concept order, always labeled.
  std::vector<Batch> batches;
  /// Ground-truth drift annotation per base batch.
  std::vector<BatchMeta> metas;
  /// Event tape sorted by (arrival_micros, base_index, training).
  std::vector<ScenarioEvent> events;
  /// Arrival time of the last event.
  uint64_t duration_micros = 0;
};

/// Materializes the scenario: draws the data stream, lays out arrival
/// times per the arrival process, attributes each batch to a tenant/stream,
/// and schedules the labeled copy per the label-delay policy.
Result<GeneratedScenario> GenerateScenario(const ScenarioSpec& spec);

/// The unlabeled twin of a labeled batch (features and index, no labels) —
/// what the inference event actually submits.
Batch UnlabeledCopy(const Batch& batch);

}  // namespace freeway

#endif  // FREEWAYML_SCENARIOS_SCENARIO_H_
