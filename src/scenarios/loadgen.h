#ifndef FREEWAYML_SCENARIOS_LOADGEN_H_
#define FREEWAYML_SCENARIOS_LOADGEN_H_

#include <vector>

#include "net/client.h"
#include "scenarios/harness.h"

namespace freeway {

/// Network replay knobs.
struct LoadgenOptions {
  /// Server endpoint list: one entry for a single server, the full group
  /// for a replicated cluster (clients follow NOT_LEADER redirects).
  std::vector<ClientEndpoint> endpoints;
  /// Concurrent StreamClients. Raised to the tenant count when smaller:
  /// tenant identity is stamped per connection, so each tenant needs at
  /// least one client, and a tenant's streams are sharded across its
  /// clients by stream id.
  size_t num_clients = 4;
  /// Scenario-time compression: wall gap = scenario gap / time_scale.
  /// 1 replays arrivals in wall-clock time, 10 replays 10x faster, and 0
  /// submits as fast as the server accepts (no pacing).
  double time_scale = 1.0;
  size_t accuracy_window = 10;
  /// Target number of operational curve samples over the replay.
  size_t curve_points = 32;
  /// After the last submit, how long to wait for outstanding RESULT
  /// frames and for the server counters to reconcile (in-flight = 0).
  int64_t drain_timeout_millis = 15000;
};

/// Replays the scenario through N concurrent StreamClients against a live
/// server (or HA group), honoring the arrival process in scaled wall-clock
/// time. Labeled copies train the remote runtime; unlabeled copies come
/// back as RESULT frames and are scored against the withheld labels.
/// Operational curves (shed / rejected / dedup / overload / failover) are
/// sampled from the server's /stats endpoint plus the client tallies.
/// Latency is true submit→result time as a client observes it.
Result<ScenarioReport> RunScenarioOverNetwork(const GeneratedScenario& scenario,
                                              const LoadgenOptions& options);

}  // namespace freeway

#endif  // FREEWAYML_SCENARIOS_LOADGEN_H_
