#include "scenarios/spec.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace freeway {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> Tokenize(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

Result<double> ParseDouble(const std::string& tok, const std::string& ctx) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0') {
    return Status::InvalidArgument(ctx + ": expected a number, got '" + tok +
                                   "'");
  }
  return v;
}

Result<uint64_t> ParseUint(const std::string& tok, const std::string& ctx) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0' || tok.front() == '-') {
    return Status::InvalidArgument(ctx + ": expected a non-negative integer, "
                                         "got '" +
                                   tok + "'");
  }
  return static_cast<uint64_t>(v);
}

template <typename T>
Result<std::vector<T>> ParseNumberList(const std::string& tok,
                                       const std::string& ctx) {
  std::vector<T> out;
  std::string item;
  std::istringstream in(tok);
  while (std::getline(in, item, ',')) {
    if constexpr (std::is_floating_point_v<T>) {
      ASSIGN_OR_RETURN(double v, ParseDouble(item, ctx));
      out.push_back(static_cast<T>(v));
    } else {
      ASSIGN_OR_RETURN(uint64_t v, ParseUint(item, ctx));
      out.push_back(static_cast<T>(v));
    }
  }
  if (out.empty()) {
    return Status::InvalidArgument(ctx + ": empty list");
  }
  return out;
}

/// Splits "key=value" tokens; bare flags parse as {token, ""}.
struct KeyValue {
  std::string key;
  std::string value;
};

KeyValue SplitKeyValue(const std::string& tok) {
  const size_t eq = tok.find('=');
  if (eq == std::string::npos) return {tok, ""};
  return {tok.substr(0, eq), tok.substr(eq + 1)};
}

Result<ScenarioDriftKind> ParseDriftKind(const std::string& tok) {
  if (tok == "stationary") return ScenarioDriftKind::kStationary;
  if (tok == "gradual") return ScenarioDriftKind::kGradual;
  if (tok == "jitter") return ScenarioDriftKind::kJitter;
  if (tok == "abrupt") return ScenarioDriftKind::kAbrupt;
  if (tok == "recurring") return ScenarioDriftKind::kRecurring;
  if (tok == "cluster") return ScenarioDriftKind::kCluster;
  return Status::InvalidArgument("drift: unknown kind '" + tok +
                                 "' (stationary|gradual|jitter|abrupt|"
                                 "recurring|cluster)");
}

Result<ScenarioDriftSegment> ParseDriftLine(const std::string& value) {
  const std::vector<std::string> toks = Tokenize(value);
  if (toks.size() < 2) {
    return Status::InvalidArgument(
        "drift: expected '<kind> <batches> [options]', got '" + value + "'");
  }
  ScenarioDriftSegment seg;
  ASSIGN_OR_RETURN(seg.kind, ParseDriftKind(toks[0]));
  ASSIGN_OR_RETURN(uint64_t n, ParseUint(toks[1], "drift batches"));
  if (n == 0) return Status::InvalidArgument("drift: batches must be > 0");
  seg.num_batches = static_cast<size_t>(n);
  for (size_t i = 2; i < toks.size(); ++i) {
    const KeyValue kv = SplitKeyValue(toks[i]);
    if (kv.key == "save" && kv.value.empty()) {
      seg.save_checkpoint = true;
    } else if (kv.key == "mag") {
      ASSIGN_OR_RETURN(seg.magnitude, ParseDouble(kv.value, "drift mag"));
    } else if (kv.key == "checkpoint") {
      ASSIGN_OR_RETURN(uint64_t cp, ParseUint(kv.value, "drift checkpoint"));
      seg.checkpoint = static_cast<int>(cp);
    } else if (kv.key == "priors") {
      ASSIGN_OR_RETURN(seg.priors,
                       ParseNumberList<double>(kv.value, "drift priors"));
    } else if (kv.key == "classes") {
      ASSIGN_OR_RETURN(seg.classes,
                       ParseNumberList<size_t>(kv.value, "drift classes"));
    } else if (kv.key == "mode") {
      ASSIGN_OR_RETURN(seg.cluster_mode, ParseDriftKind(kv.value));
      if (seg.cluster_mode != ScenarioDriftKind::kAbrupt &&
          seg.cluster_mode != ScenarioDriftKind::kGradual &&
          seg.cluster_mode != ScenarioDriftKind::kJitter) {
        return Status::InvalidArgument(
            "drift: cluster mode must be abrupt, gradual, or jitter");
      }
    } else {
      return Status::InvalidArgument("drift: unknown option '" + toks[i] +
                                     "'");
    }
  }
  if (seg.kind == ScenarioDriftKind::kCluster && seg.classes.empty()) {
    return Status::InvalidArgument(
        "drift: cluster segments need classes=<i,j,...>");
  }
  if (seg.kind != ScenarioDriftKind::kCluster && !seg.classes.empty()) {
    return Status::InvalidArgument(
        "drift: classes= only applies to cluster segments");
  }
  return seg;
}

Result<ArrivalSpec> ParseArrivalLine(const std::string& value) {
  const std::vector<std::string> toks = Tokenize(value);
  if (toks.empty()) {
    return Status::InvalidArgument("arrival: missing kind");
  }
  ArrivalSpec a;
  if (toks[0] == "constant") {
    a.kind = ArrivalKind::kConstant;
  } else if (toks[0] == "diurnal") {
    a.kind = ArrivalKind::kDiurnal;
  } else if (toks[0] == "bursty") {
    a.kind = ArrivalKind::kBursty;
  } else if (toks[0] == "flash") {
    a.kind = ArrivalKind::kFlashCrowd;
  } else {
    return Status::InvalidArgument("arrival: unknown kind '" + toks[0] +
                                   "' (constant|diurnal|bursty|flash)");
  }
  for (size_t i = 1; i < toks.size(); ++i) {
    const KeyValue kv = SplitKeyValue(toks[i]);
    double* field = nullptr;
    if (kv.key == "rate") field = &a.rate;
    else if (kv.key == "jitter") field = &a.jitter;
    else if (kv.key == "period") field = &a.period_seconds;
    else if (kv.key == "amp") field = &a.amplitude;
    else if (kv.key == "burst") field = &a.burst_batches;
    else if (kv.key == "factor") field = &a.factor;
    else if (kv.key == "at") field = &a.flash_at_seconds;
    else if (kv.key == "dur") field = &a.flash_duration_seconds;
    else {
      return Status::InvalidArgument("arrival: unknown option '" + toks[i] +
                                     "'");
    }
    ASSIGN_OR_RETURN(*field, ParseDouble(kv.value, "arrival " + kv.key));
  }
  if (a.rate <= 0.0) {
    return Status::InvalidArgument("arrival: rate must be > 0");
  }
  return a;
}

Result<LabelDelaySpec> ParseLabelsLine(const std::string& value) {
  const std::vector<std::string> toks = Tokenize(value);
  if (toks.empty()) {
    return Status::InvalidArgument("labels: missing kind");
  }
  LabelDelaySpec l;
  if (toks[0] == "immediate") {
    l.kind = LabelDelayKind::kImmediate;
  } else if (toks[0] == "fixed-lag") {
    l.kind = LabelDelayKind::kFixedLag;
  } else if (toks[0] == "adversarial") {
    l.kind = LabelDelayKind::kAdversarial;
  } else {
    return Status::InvalidArgument("labels: unknown kind '" + toks[0] +
                                   "' (immediate|fixed-lag|adversarial)");
  }
  for (size_t i = 1; i < toks.size(); ++i) {
    const KeyValue kv = SplitKeyValue(toks[i]);
    if (kv.key == "lag") {
      ASSIGN_OR_RETURN(uint64_t lag, ParseUint(kv.value, "labels lag"));
      l.lag_batches = static_cast<size_t>(lag);
    } else if (kv.key == "factor") {
      ASSIGN_OR_RETURN(l.adversarial_factor,
                       ParseDouble(kv.value, "labels factor"));
    } else {
      return Status::InvalidArgument("labels: unknown option '" + toks[i] +
                                     "'");
    }
  }
  if (l.kind != LabelDelayKind::kImmediate && l.lag_batches == 0) {
    return Status::InvalidArgument("labels: " +
                                   std::string(LabelDelayKindName(l.kind)) +
                                   " needs lag=<batches>");
  }
  return l;
}

Result<ScenarioTenant> ParseTenantLine(const std::string& value) {
  const std::vector<std::string> toks = Tokenize(value);
  if (toks.empty()) {
    return Status::InvalidArgument("tenant: missing id");
  }
  ScenarioTenant t;
  ASSIGN_OR_RETURN(uint64_t id, ParseUint(toks[0], "tenant id"));
  t.id = static_cast<uint32_t>(id);
  for (size_t i = 1; i < toks.size(); ++i) {
    const KeyValue kv = SplitKeyValue(toks[i]);
    if (kv.key == "weight") {
      ASSIGN_OR_RETURN(uint64_t w, ParseUint(kv.value, "tenant weight"));
      t.weight = static_cast<uint32_t>(w);
    } else if (kv.key == "priority") {
      if (kv.value == "best-effort") {
        t.priority = TenantPriority::kBestEffort;
      } else if (kv.value == "standard") {
        t.priority = TenantPriority::kStandard;
      } else if (kv.value == "critical") {
        t.priority = TenantPriority::kCritical;
      } else {
        return Status::InvalidArgument(
            "tenant: unknown priority '" + kv.value +
            "' (best-effort|standard|critical)");
      }
    } else if (kv.key == "share") {
      ASSIGN_OR_RETURN(t.share, ParseDouble(kv.value, "tenant share"));
    } else if (kv.key == "streams") {
      ASSIGN_OR_RETURN(t.streams, ParseUint(kv.value, "tenant streams"));
      if (t.streams == 0) {
        return Status::InvalidArgument("tenant: streams must be > 0");
      }
    } else {
      return Status::InvalidArgument("tenant: unknown option '" + toks[i] +
                                     "'");
    }
  }
  if (t.share <= 0.0) {
    return Status::InvalidArgument("tenant: share must be > 0");
  }
  return t;
}

}  // namespace

const char* ScenarioDriftKindName(ScenarioDriftKind kind) {
  switch (kind) {
    case ScenarioDriftKind::kStationary: return "stationary";
    case ScenarioDriftKind::kGradual: return "gradual";
    case ScenarioDriftKind::kJitter: return "jitter";
    case ScenarioDriftKind::kAbrupt: return "abrupt";
    case ScenarioDriftKind::kRecurring: return "recurring";
    case ScenarioDriftKind::kCluster: return "cluster";
  }
  return "unknown";
}

const char* ArrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kConstant: return "constant";
    case ArrivalKind::kDiurnal: return "diurnal";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kFlashCrowd: return "flash";
  }
  return "unknown";
}

const char* LabelDelayKindName(LabelDelayKind kind) {
  switch (kind) {
    case LabelDelayKind::kImmediate: return "immediate";
    case LabelDelayKind::kFixedLag: return "fixed-lag";
    case LabelDelayKind::kAdversarial: return "adversarial";
  }
  return "unknown";
}

Result<ScenarioSpec> ParseScenarioSpec(const std::string& text) {
  ScenarioSpec spec;
  std::istringstream in(text);
  std::string raw;
  size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::string line = Trim(raw);
    if (line.empty()) continue;

    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("scenario line " +
                                     std::to_string(line_no) +
                                     ": expected 'key: value', got '" + line +
                                     "'");
    }
    const std::string key = Trim(line.substr(0, colon));
    const std::string value = Trim(line.substr(colon + 1));
    const std::string ctx =
        "scenario line " + std::to_string(line_no) + " (" + key + ")";

    if (key == "name") {
      spec.name = value;
    } else if (key == "seed") {
      ASSIGN_OR_RETURN(spec.seed, ParseUint(value, ctx));
    } else if (key == "batches") {
      ASSIGN_OR_RETURN(uint64_t n, ParseUint(value, ctx));
      if (n == 0) return Status::InvalidArgument(ctx + ": must be > 0");
      spec.num_batches = static_cast<size_t>(n);
    } else if (key == "batch-size" || key == "batch_size") {
      ASSIGN_OR_RETURN(uint64_t n, ParseUint(value, ctx));
      if (n == 0) return Status::InvalidArgument(ctx + ": must be > 0");
      spec.batch_size = static_cast<size_t>(n);
    } else if (key == "warmup") {
      ASSIGN_OR_RETURN(uint64_t n, ParseUint(value, ctx));
      spec.warmup_batches = static_cast<size_t>(n);
    } else if (key == "dataset") {
      spec.dataset = value;
    } else if (key == "dim") {
      ASSIGN_OR_RETURN(uint64_t n, ParseUint(value, ctx));
      if (n == 0) return Status::InvalidArgument(ctx + ": must be > 0");
      spec.dim = static_cast<size_t>(n);
    } else if (key == "classes") {
      ASSIGN_OR_RETURN(uint64_t n, ParseUint(value, ctx));
      if (n < 2) return Status::InvalidArgument(ctx + ": must be >= 2");
      spec.classes = static_cast<size_t>(n);
    } else if (key == "separation") {
      ASSIGN_OR_RETURN(spec.class_separation, ParseDouble(value, ctx));
    } else if (key == "noise") {
      ASSIGN_OR_RETURN(spec.noise_sigma, ParseDouble(value, ctx));
    } else if (key == "transition") {
      ASSIGN_OR_RETURN(spec.transition_fraction, ParseDouble(value, ctx));
    } else if (key == "drift") {
      ASSIGN_OR_RETURN(ScenarioDriftSegment seg, ParseDriftLine(value));
      spec.drift.push_back(std::move(seg));
    } else if (key == "arrival") {
      ASSIGN_OR_RETURN(spec.arrival, ParseArrivalLine(value));
    } else if (key == "labels") {
      ASSIGN_OR_RETURN(spec.labels, ParseLabelsLine(value));
    } else if (key == "tenant") {
      ASSIGN_OR_RETURN(ScenarioTenant tenant, ParseTenantLine(value));
      spec.tenants.push_back(tenant);
    } else {
      return Status::InvalidArgument("scenario line " +
                                     std::to_string(line_no) +
                                     ": unknown key '" + key + "'");
    }
  }

  if (spec.name.empty()) {
    return Status::InvalidArgument("scenario: missing 'name:'");
  }
  if (spec.dataset.empty() && spec.drift.empty()) {
    return Status::InvalidArgument(
        "scenario '" + spec.name +
        "': needs either a 'dataset:' or at least one 'drift:' segment");
  }
  if (!spec.dataset.empty() && !spec.drift.empty()) {
    return Status::InvalidArgument(
        "scenario '" + spec.name +
        "': 'dataset:' and inline 'drift:' segments are mutually exclusive");
  }
  for (const ScenarioDriftSegment& seg : spec.drift) {
    for (size_t c : seg.classes) {
      if (c >= spec.classes) {
        return Status::InvalidArgument(
            "scenario '" + spec.name + "': cluster class " +
            std::to_string(c) + " out of range (classes: " +
            std::to_string(spec.classes) + ")");
      }
    }
    if (!seg.priors.empty() && seg.priors.size() != spec.classes) {
      return Status::InvalidArgument(
          "scenario '" + spec.name + "': priors list must have " +
          std::to_string(spec.classes) + " entries");
    }
  }
  if (spec.warmup_batches >= spec.num_batches) {
    return Status::InvalidArgument("scenario '" + spec.name +
                                   "': warmup must leave scored batches");
  }
  return spec;
}

Result<ScenarioSpec> LoadScenarioSpecFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot read scenario spec: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseScenarioSpec(buf.str());
}

namespace {

struct CannedScenario {
  const char* name;
  const char* text;
};

/// The canned scenario library. Each entry has a committed twin under
/// scenarios/<name>.scn with byte-identical content (tests enforce the
/// pairing), so specs are usable both programmatically and from the CLI.
const CannedScenario kCanned[] = {
    {"abrupt",
     "# Pattern B: repeated sudden concept jumps with full recovery windows.\n"
     "name: abrupt\n"
     "seed: 7\n"
     "batches: 120\n"
     "batch-size: 256\n"
     "warmup: 8\n"
     "dim: 16\n"
     "classes: 2\n"
     "separation: 2.0\n"
     "noise: 1.0\n"
     "drift: stationary 30 save\n"
     "drift: abrupt 30 mag=3.0\n"
     "drift: abrupt 30 mag=3.0\n"
     "drift: abrupt 30 mag=3.0\n"
     "arrival: constant rate=200 jitter=0.1\n"
     "labels: immediate\n"
     "tenant: 1 weight=1 priority=standard share=1.0 streams=4\n"},
    {"gradual",
     "# Pattern A1: slow directional concept motion under a diurnal load "
     "curve.\n"
     "name: gradual\n"
     "seed: 11\n"
     "batches: 120\n"
     "batch-size: 256\n"
     "warmup: 8\n"
     "dim: 16\n"
     "classes: 2\n"
     "separation: 2.0\n"
     "noise: 1.0\n"
     "drift: stationary 20\n"
     "drift: gradual 100 mag=0.08\n"
     "arrival: diurnal rate=150 period=20 amp=0.6\n"
     "labels: immediate\n"
     "tenant: 1 weight=1 priority=standard share=1.0 streams=4\n"},
    {"recurring",
     "# Pattern C: a checkpointed concept keeps coming back, rewarding "
     "knowledge reuse.\n"
     "name: recurring\n"
     "seed: 13\n"
     "batches: 120\n"
     "batch-size: 256\n"
     "warmup: 8\n"
     "dim: 16\n"
     "classes: 2\n"
     "separation: 2.0\n"
     "noise: 1.0\n"
     "drift: stationary 25 save\n"
     "drift: abrupt 25 mag=3.0\n"
     "drift: recurring 25 checkpoint=0\n"
     "drift: abrupt 25 mag=3.0\n"
     "drift: recurring 20 checkpoint=0\n"
     "arrival: constant rate=200 jitter=0.1\n"
     "labels: immediate\n"
     "tenant: 1 weight=1 priority=standard share=1.0 streams=4\n"},
    {"cluster_localized",
     "# Cluster-localized drift (2606.22026): only a subset of class "
     "clusters\n"
     "# moves, so the global distribution shifts by a diluted amount.\n"
     "name: cluster_localized\n"
     "seed: 17\n"
     "batches: 120\n"
     "batch-size: 256\n"
     "warmup: 8\n"
     "dim: 16\n"
     "classes: 4\n"
     "separation: 2.5\n"
     "noise: 1.0\n"
     "drift: stationary 30 save\n"
     "drift: cluster 45 mag=0.12 classes=0,2 mode=gradual\n"
     "drift: cluster 45 mag=3.5 classes=1 mode=abrupt\n"
     "arrival: constant rate=200 jitter=0.1\n"
     "labels: immediate\n"
     "tenant: 1 weight=1 priority=standard share=1.0 streams=4\n"},
    {"flash_crowd",
     "# Flash-crowd arrivals over mild drift: a 10x request spike that "
     "stresses\n"
     "# shedding and weighted admission while a critical tenant must stay "
     "served.\n"
     "name: flash_crowd\n"
     "seed: 19\n"
     "batches: 120\n"
     "batch-size: 256\n"
     "warmup: 8\n"
     "dim: 16\n"
     "classes: 2\n"
     "separation: 2.0\n"
     "noise: 1.0\n"
     "drift: gradual 120 mag=0.05\n"
     "arrival: flash rate=120 at=0.25 dur=0.2 factor=10\n"
     "labels: fixed-lag lag=3\n"
     "tenant: 1 weight=4 priority=critical share=0.5 streams=4\n"
     "tenant: 2 weight=1 priority=best-effort share=0.5 streams=4\n"},
    {"adversarial_labels",
     "# Adversarial label delay: ground truth is slowest exactly inside the\n"
     "# shift-event windows, when adaptation needs it most.\n"
     "name: adversarial_labels\n"
     "seed: 23\n"
     "batches: 120\n"
     "batch-size: 256\n"
     "warmup: 8\n"
     "dim: 16\n"
     "classes: 2\n"
     "separation: 2.0\n"
     "noise: 1.0\n"
     "drift: stationary 25 save\n"
     "drift: abrupt 30 mag=3.0\n"
     "drift: recurring 30 checkpoint=0\n"
     "drift: abrupt 35 mag=3.0\n"
     "arrival: bursty rate=150 burst=12 factor=6\n"
     "labels: adversarial lag=4 factor=4\n"
     "tenant: 1 weight=1 priority=standard share=1.0 streams=4\n"},
    {"mixed",
     "# CI smoke scenario: every drift shape in ~10 wall-clock seconds, with "
     "a\n"
     "# flash-crowd spike and lagged labels. Small batches keep it fast under\n"
     "# sanitizers.\n"
     "name: mixed\n"
     "seed: 31\n"
     "batches: 60\n"
     "batch-size: 128\n"
     "warmup: 4\n"
     "dim: 12\n"
     "classes: 3\n"
     "separation: 2.2\n"
     "noise: 1.0\n"
     "drift: stationary 10 save\n"
     "drift: gradual 12 mag=0.1\n"
     "drift: abrupt 10 mag=3.0\n"
     "drift: cluster 14 mag=0.15 classes=0 mode=jitter\n"
     "drift: recurring 14 checkpoint=0\n"
     "arrival: flash rate=40 at=0.5 dur=0.4 factor=6\n"
     "labels: fixed-lag lag=2\n"
     "tenant: 1 weight=3 priority=critical share=0.6 streams=4\n"
     "tenant: 2 weight=1 priority=best-effort share=0.4 streams=4\n"},
};

}  // namespace

const std::vector<std::string>& CannedScenarioNames() {
  static const std::vector<std::string>* names = [] {
    auto* v = new std::vector<std::string>();
    for (const CannedScenario& c : kCanned) v->push_back(c.name);
    return v;
  }();
  return *names;
}

Result<std::string> CannedScenarioText(const std::string& name) {
  for (const CannedScenario& c : kCanned) {
    if (name == c.name) return std::string(c.text);
  }
  std::string known;
  for (const CannedScenario& c : kCanned) {
    if (!known.empty()) known += ", ";
    known += c.name;
  }
  return Status::NotFound("no canned scenario '" + name + "' (have: " + known +
                          ")");
}

Result<ScenarioSpec> ResolveScenarioSpec(const std::string& name_or_path) {
  Result<std::string> canned = CannedScenarioText(name_or_path);
  if (canned.ok()) return ParseScenarioSpec(canned.value());
  Result<ScenarioSpec> from_file = LoadScenarioSpecFile(name_or_path);
  if (from_file.ok()) return from_file;
  return Status::NotFound("'" + name_or_path +
                          "' is neither a canned scenario (" +
                          canned.status().message() + ") nor a readable spec "
                          "file (" + from_file.status().message() + ")");
}

}  // namespace freeway
