#include "net/wire.h"

#include <cstring>

namespace freeway {

namespace {

/// Section tags inside frame payloads (validated by SnapshotReader, so a
/// payload of the wrong type fails with a clean error instead of
/// misinterpreting bytes).
constexpr uint32_t kTagSubmit = 0x4E535542;    // 'BUSN'
constexpr uint32_t kTagResult = 0x4E534552;    // 'RESN'
constexpr uint32_t kTagAck = 0x4E4B4341;       // 'ACKN'
constexpr uint32_t kTagOverload = 0x4E56554F;  // 'OUVN'
constexpr uint32_t kTagError = 0x4E525245;     // 'ERRN'
constexpr uint32_t kTagStats = 0x4E415453;     // 'STAN'
constexpr uint32_t kTagNotLeader = 0x4E444C4E;  // 'NLDN'
constexpr uint32_t kTagRaft = 0x4E464152;      // 'RAFN'

Status CheckFrameType(const Frame& frame, FrameType expected) {
  if (frame.type != expected) {
    return Status::InvalidArgument(
        std::string("wire: expected ") + FrameTypeName(expected) +
        " frame, got " + FrameTypeName(frame.type));
  }
  return Status::OK();
}

void WriteReport(SnapshotWriter* writer, const InferenceReport& report) {
  writer->WriteU32(static_cast<uint32_t>(report.strategy));
  writer->WriteU32(static_cast<uint32_t>(report.assessment.pattern));
  writer->WriteDoubleVec(report.assessment.representation);
  writer->WriteDouble(report.assessment.distance);
  writer->WriteDouble(report.assessment.m_score);
  writer->WriteDouble(report.assessment.mu_d);
  writer->WriteDouble(report.assessment.sigma_d);
  writer->WriteDouble(report.assessment.d_h);
  writer->WriteBool(report.assessment.warmup);
  writer->WriteIntVec(report.predictions);
  writer->WriteMatrix(report.proba);
  writer->WriteDouble(report.knowledge_distance);
}

Status ReadReport(SnapshotReader* reader, InferenceReport* report) {
  uint32_t strategy = 0;
  uint32_t pattern = 0;
  RETURN_IF_ERROR(reader->ReadU32(&strategy));
  if (strategy > static_cast<uint32_t>(Strategy::kKnowledgeReuse)) {
    return Status::InvalidArgument("wire: strategy enum out of range");
  }
  report->strategy = static_cast<Strategy>(strategy);
  RETURN_IF_ERROR(reader->ReadU32(&pattern));
  if (pattern > static_cast<uint32_t>(ShiftPattern::kReoccurring)) {
    return Status::InvalidArgument("wire: shift pattern enum out of range");
  }
  report->assessment.pattern = static_cast<ShiftPattern>(pattern);
  RETURN_IF_ERROR(reader->ReadDoubleVec(&report->assessment.representation));
  RETURN_IF_ERROR(reader->ReadDouble(&report->assessment.distance));
  RETURN_IF_ERROR(reader->ReadDouble(&report->assessment.m_score));
  RETURN_IF_ERROR(reader->ReadDouble(&report->assessment.mu_d));
  RETURN_IF_ERROR(reader->ReadDouble(&report->assessment.sigma_d));
  RETURN_IF_ERROR(reader->ReadDouble(&report->assessment.d_h));
  RETURN_IF_ERROR(reader->ReadBool(&report->assessment.warmup));
  RETURN_IF_ERROR(reader->ReadIntVec(&report->predictions));
  RETURN_IF_ERROR(reader->ReadMatrix(&report->proba));
  RETURN_IF_ERROR(reader->ReadDouble(&report->knowledge_distance));
  return Status::OK();
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kSubmit:
      return "SUBMIT";
    case FrameType::kResult:
      return "RESULT";
    case FrameType::kAck:
      return "ACK";
    case FrameType::kOverload:
      return "OVERLOAD";
    case FrameType::kError:
      return "ERROR";
    case FrameType::kStatsRequest:
      return "STATS_REQUEST";
    case FrameType::kStats:
      return "STATS";
    case FrameType::kShutdown:
      return "SHUTDOWN";
    case FrameType::kVoteRequest:
      return "VOTE_REQUEST";
    case FrameType::kVoteResponse:
      return "VOTE_RESPONSE";
    case FrameType::kAppendEntries:
      return "APPEND_ENTRIES";
    case FrameType::kAppendResponse:
      return "APPEND_RESPONSE";
    case FrameType::kNotLeader:
      return "NOT_LEADER";
  }
  return "UNKNOWN";
}

std::vector<char> EncodeFrame(FrameType type,
                              const std::vector<char>& payload) {
  std::vector<char> frame(kFrameHeaderBytes + payload.size());
  char* out = frame.data();
  const uint32_t magic = kFrameMagic;
  std::memcpy(out, &magic, 4);
  out[4] = static_cast<char>(kWireVersion);
  out[5] = static_cast<char>(type);
  out[6] = 0;
  out[7] = 0;
  const uint32_t size = static_cast<uint32_t>(payload.size());
  std::memcpy(out + 8, &size, 4);
  const uint32_t crc = Crc32(payload.data(), payload.size());
  std::memcpy(out + 12, &crc, 4);
  if (!payload.empty()) {
    std::memcpy(out + kFrameHeaderBytes, payload.data(), payload.size());
  }
  return frame;
}

void FrameDecoder::Feed(const char* data, size_t size) {
  // Compact lazily: drop fully consumed bytes before appending so the
  // buffer never grows past one partial frame plus the newest read.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

Result<Frame> FrameDecoder::Next() {
  if (poisoned_) return Status::InvalidArgument(poison_message_);
  if (buffered() < kFrameHeaderBytes) {
    return Status::NotFound("wire: incomplete header");
  }
  const char* head = buffer_.data() + consumed_;
  uint32_t magic = 0;
  std::memcpy(&magic, head, 4);
  const uint8_t version = static_cast<uint8_t>(head[4]);
  const uint8_t type = static_cast<uint8_t>(head[5]);
  uint32_t payload_size = 0;
  std::memcpy(&payload_size, head + 8, 4);
  uint32_t payload_crc = 0;
  std::memcpy(&payload_crc, head + 12, 4);

  // Validate the header before trusting the length: a stream that lost
  // framing must fail here, never allocate from attacker-controlled sizes.
  std::string error;
  if (magic != kFrameMagic) {
    error = "wire: bad frame magic";
  } else if (version != kWireVersion) {
    error = "wire: unsupported protocol version " + std::to_string(version);
  } else if (type < static_cast<uint8_t>(FrameType::kSubmit) ||
             type > static_cast<uint8_t>(FrameType::kNotLeader)) {
    error = "wire: unknown frame type " + std::to_string(type);
  } else if (payload_size > kMaxFramePayload) {
    error = "wire: frame payload of " + std::to_string(payload_size) +
            " bytes exceeds the protocol maximum";
  }
  if (!error.empty()) {
    poisoned_ = true;
    poison_message_ = std::move(error);
    return Status::InvalidArgument(poison_message_);
  }

  if (buffered() < kFrameHeaderBytes + payload_size) {
    return Status::NotFound("wire: incomplete payload");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  const char* payload = head + kFrameHeaderBytes;
  if (Crc32(payload, payload_size) != payload_crc) {
    poisoned_ = true;
    poison_message_ = "wire: frame payload CRC mismatch";
    return Status::InvalidArgument(poison_message_);
  }
  frame.payload.assign(payload, payload + payload_size);
  consumed_ += kFrameHeaderBytes + payload_size;
  return frame;
}

std::vector<char> EncodeSubmit(const SubmitMessage& message) {
  SnapshotWriter writer;
  writer.WriteSection(kTagSubmit);
  writer.WriteU64(message.stream_id);
  writer.WriteU64(message.client_id);
  writer.WriteU64(message.sequence);
  writer.WriteU32(message.tenant_id);
  writer.WriteU32(message.priority);
  writer.WriteBatch(message.batch);
  return EncodeFrame(FrameType::kSubmit, writer.buffer());
}

Result<SubmitMessage> DecodeSubmit(const Frame& frame) {
  RETURN_IF_ERROR(CheckFrameType(frame, FrameType::kSubmit));
  SnapshotReader reader(frame.payload);
  SubmitMessage message;
  RETURN_IF_ERROR(reader.ExpectSection(kTagSubmit));
  RETURN_IF_ERROR(reader.ReadU64(&message.stream_id));
  RETURN_IF_ERROR(reader.ReadU64(&message.client_id));
  RETURN_IF_ERROR(reader.ReadU64(&message.sequence));
  RETURN_IF_ERROR(reader.ReadU32(&message.tenant_id));
  uint32_t priority = 0;
  RETURN_IF_ERROR(reader.ReadU32(&priority));
  if (priority > static_cast<uint32_t>(TenantPriority::kCritical)) {
    return Status::InvalidArgument("submit: priority " +
                                   std::to_string(priority) +
                                   " is not a TenantPriority");
  }
  message.priority = static_cast<uint8_t>(priority);
  RETURN_IF_ERROR(reader.ReadBatch(&message.batch));
  RETURN_IF_ERROR(reader.ExpectEnd());
  return message;
}

std::vector<char> EncodeResult(const StreamResult& result) {
  SnapshotWriter writer;
  writer.WriteSection(kTagResult);
  writer.WriteU64(result.stream_id);
  writer.WriteI64(result.batch_index);
  WriteReport(&writer, result.report);
  return EncodeFrame(FrameType::kResult, writer.buffer());
}

Result<StreamResult> DecodeResult(const Frame& frame) {
  RETURN_IF_ERROR(CheckFrameType(frame, FrameType::kResult));
  SnapshotReader reader(frame.payload);
  StreamResult result;
  RETURN_IF_ERROR(reader.ExpectSection(kTagResult));
  RETURN_IF_ERROR(reader.ReadU64(&result.stream_id));
  RETURN_IF_ERROR(reader.ReadI64(&result.batch_index));
  RETURN_IF_ERROR(ReadReport(&reader, &result.report));
  RETURN_IF_ERROR(reader.ExpectEnd());
  return result;
}

std::vector<char> EncodeAck(const AckMessage& message) {
  SnapshotWriter writer;
  writer.WriteSection(kTagAck);
  writer.WriteU64(message.stream_id);
  writer.WriteI64(message.batch_index);
  return EncodeFrame(FrameType::kAck, writer.buffer());
}

Result<AckMessage> DecodeAck(const Frame& frame) {
  RETURN_IF_ERROR(CheckFrameType(frame, FrameType::kAck));
  SnapshotReader reader(frame.payload);
  AckMessage message;
  RETURN_IF_ERROR(reader.ExpectSection(kTagAck));
  RETURN_IF_ERROR(reader.ReadU64(&message.stream_id));
  RETURN_IF_ERROR(reader.ReadI64(&message.batch_index));
  RETURN_IF_ERROR(reader.ExpectEnd());
  return message;
}

std::vector<char> EncodeOverload(const OverloadMessage& message) {
  SnapshotWriter writer;
  writer.WriteSection(kTagOverload);
  writer.WriteU64(message.stream_id);
  writer.WriteI64(message.batch_index);
  writer.WriteI64(message.retry_after_micros);
  return EncodeFrame(FrameType::kOverload, writer.buffer());
}

Result<OverloadMessage> DecodeOverload(const Frame& frame) {
  RETURN_IF_ERROR(CheckFrameType(frame, FrameType::kOverload));
  SnapshotReader reader(frame.payload);
  OverloadMessage message;
  RETURN_IF_ERROR(reader.ExpectSection(kTagOverload));
  RETURN_IF_ERROR(reader.ReadU64(&message.stream_id));
  RETURN_IF_ERROR(reader.ReadI64(&message.batch_index));
  RETURN_IF_ERROR(reader.ReadI64(&message.retry_after_micros));
  RETURN_IF_ERROR(reader.ExpectEnd());
  return message;
}

std::vector<char> EncodeError(const ErrorMessage& message) {
  SnapshotWriter writer;
  writer.WriteSection(kTagError);
  writer.WriteU64(message.stream_id);
  writer.WriteI64(message.batch_index);
  writer.WriteU32(static_cast<uint32_t>(message.code));
  writer.WriteString(message.message);
  return EncodeFrame(FrameType::kError, writer.buffer());
}

Result<ErrorMessage> DecodeError(const Frame& frame) {
  RETURN_IF_ERROR(CheckFrameType(frame, FrameType::kError));
  SnapshotReader reader(frame.payload);
  ErrorMessage message;
  RETURN_IF_ERROR(reader.ExpectSection(kTagError));
  RETURN_IF_ERROR(reader.ReadU64(&message.stream_id));
  RETURN_IF_ERROR(reader.ReadI64(&message.batch_index));
  uint32_t code = 0;
  RETURN_IF_ERROR(reader.ReadU32(&code));
  if (code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument("wire: status code out of range");
  }
  message.code = static_cast<StatusCode>(code);
  RETURN_IF_ERROR(reader.ReadString(&message.message));
  RETURN_IF_ERROR(reader.ExpectEnd());
  return message;
}

std::vector<char> EncodeStats(const std::string& json) {
  SnapshotWriter writer;
  writer.WriteSection(kTagStats);
  writer.WriteString(json);
  return EncodeFrame(FrameType::kStats, writer.buffer());
}

Result<std::string> DecodeStats(const Frame& frame) {
  RETURN_IF_ERROR(CheckFrameType(frame, FrameType::kStats));
  SnapshotReader reader(frame.payload);
  std::string json;
  RETURN_IF_ERROR(reader.ExpectSection(kTagStats));
  RETURN_IF_ERROR(reader.ReadString(&json));
  RETURN_IF_ERROR(reader.ExpectEnd());
  return json;
}

std::vector<char> EncodeNotLeader(const NotLeaderMessage& message) {
  SnapshotWriter writer;
  writer.WriteSection(kTagNotLeader);
  writer.WriteU64(message.stream_id);
  writer.WriteI64(message.batch_index);
  writer.WriteU64(message.leader_id);
  writer.WriteString(message.leader_host);
  writer.WriteU32(message.leader_port);
  return EncodeFrame(FrameType::kNotLeader, writer.buffer());
}

Result<NotLeaderMessage> DecodeNotLeader(const Frame& frame) {
  RETURN_IF_ERROR(CheckFrameType(frame, FrameType::kNotLeader));
  SnapshotReader reader(frame.payload);
  NotLeaderMessage message;
  RETURN_IF_ERROR(reader.ExpectSection(kTagNotLeader));
  RETURN_IF_ERROR(reader.ReadU64(&message.stream_id));
  RETURN_IF_ERROR(reader.ReadI64(&message.batch_index));
  RETURN_IF_ERROR(reader.ReadU64(&message.leader_id));
  RETURN_IF_ERROR(reader.ReadString(&message.leader_host));
  uint32_t port = 0;
  RETURN_IF_ERROR(reader.ReadU32(&port));
  if (port > UINT16_MAX) {
    return Status::InvalidArgument("wire: leader port out of range");
  }
  message.leader_port = static_cast<uint16_t>(port);
  RETURN_IF_ERROR(reader.ExpectEnd());
  return message;
}

std::vector<char> EncodeRaftMessage(const RaftMessage& message) {
  FrameType frame_type = FrameType::kVoteRequest;
  switch (message.type) {
    case RaftMessageType::kVoteRequest:
      frame_type = FrameType::kVoteRequest;
      break;
    case RaftMessageType::kVoteResponse:
      frame_type = FrameType::kVoteResponse;
      break;
    case RaftMessageType::kAppendEntries:
      frame_type = FrameType::kAppendEntries;
      break;
    case RaftMessageType::kAppendResponse:
      frame_type = FrameType::kAppendResponse;
      break;
  }
  SnapshotWriter writer;
  writer.WriteSection(kTagRaft);
  writer.WriteU64(message.from);
  writer.WriteU64(message.to);
  writer.WriteU64(message.term);
  writer.WriteU64(message.last_log_index);
  writer.WriteU64(message.last_log_term);
  writer.WriteBool(message.vote_granted);
  writer.WriteU64(message.prev_log_index);
  writer.WriteU64(message.prev_log_term);
  writer.WriteU64(message.leader_commit);
  writer.WriteBool(message.success);
  writer.WriteU64(message.match_index);
  writer.WriteU64(message.conflict_index);
  writer.WriteU64(message.entries.size());
  for (const RaftEntry& entry : message.entries) {
    writer.WriteU64(entry.index);
    writer.WriteU64(entry.term);
    writer.WriteBlob(entry.command);
  }
  return EncodeFrame(frame_type, writer.buffer());
}

Result<RaftMessage> DecodeRaftMessage(const Frame& frame) {
  RaftMessage message;
  switch (frame.type) {
    case FrameType::kVoteRequest:
      message.type = RaftMessageType::kVoteRequest;
      break;
    case FrameType::kVoteResponse:
      message.type = RaftMessageType::kVoteResponse;
      break;
    case FrameType::kAppendEntries:
      message.type = RaftMessageType::kAppendEntries;
      break;
    case FrameType::kAppendResponse:
      message.type = RaftMessageType::kAppendResponse;
      break;
    default:
      return Status::InvalidArgument(
          std::string("wire: ") + FrameTypeName(frame.type) +
          " is not a replication frame");
  }
  SnapshotReader reader(frame.payload);
  RETURN_IF_ERROR(reader.ExpectSection(kTagRaft));
  RETURN_IF_ERROR(reader.ReadU64(&message.from));
  RETURN_IF_ERROR(reader.ReadU64(&message.to));
  RETURN_IF_ERROR(reader.ReadU64(&message.term));
  RETURN_IF_ERROR(reader.ReadU64(&message.last_log_index));
  RETURN_IF_ERROR(reader.ReadU64(&message.last_log_term));
  RETURN_IF_ERROR(reader.ReadBool(&message.vote_granted));
  RETURN_IF_ERROR(reader.ReadU64(&message.prev_log_index));
  RETURN_IF_ERROR(reader.ReadU64(&message.prev_log_term));
  RETURN_IF_ERROR(reader.ReadU64(&message.leader_commit));
  RETURN_IF_ERROR(reader.ReadBool(&message.success));
  RETURN_IF_ERROR(reader.ReadU64(&message.match_index));
  RETURN_IF_ERROR(reader.ReadU64(&message.conflict_index));
  uint64_t entry_count = 0;
  RETURN_IF_ERROR(reader.ReadU64(&entry_count));
  // Bound the allocation by what the payload could actually hold: each
  // entry costs at least 24 bytes (index + term + blob length) on the wire.
  if (entry_count > frame.payload.size() / 24) {
    return Status::InvalidArgument("wire: raft entry count exceeds payload");
  }
  message.entries.resize(entry_count);
  for (RaftEntry& entry : message.entries) {
    RETURN_IF_ERROR(reader.ReadU64(&entry.index));
    RETURN_IF_ERROR(reader.ReadU64(&entry.term));
    RETURN_IF_ERROR(reader.ReadBlob(&entry.command));
  }
  RETURN_IF_ERROR(reader.ExpectEnd());
  return message;
}

}  // namespace freeway
