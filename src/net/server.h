#ifndef FREEWAYML_NET_SERVER_H_
#define FREEWAYML_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/wire.h"
#include "obs/metrics.h"
#include "runtime/stream_runtime.h"

namespace freeway {

/// Configuration of the TCP batch-ingest server.
struct ServerOptions {
  /// Numeric IPv4 listen address; loopback by default.
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port — recover the actual one with port().
  uint16_t port = 0;
  int listen_backlog = 64;
  /// Connections beyond this are accepted and immediately closed (the
  /// kernel backlog would otherwise queue them invisibly).
  size_t max_connections = 64;
  /// `retry_after` carried by OVERLOAD replies. Fixed advice: one drain of
  /// a typical batch is in the low milliseconds, so by default clients are
  /// told to stay away for 2 ms and then ramp their own backoff.
  int64_t overload_retry_micros = 2000;
  /// poll() timeout when nothing is happening. The self-pipe wakes the
  /// loop early for result delivery and Stop(), so this only bounds how
  /// stale the loop can be when truly idle.
  int poll_timeout_millis = 100;
  /// Wall-clock budget for flushing pending replies during graceful stop.
  int64_t shutdown_flush_millis = 2000;
  /// Observability sink for the `freeway_net_*` family; also serves as the
  /// `GET /metrics` document. When RuntimeOptions.metrics is null it is
  /// forwarded to the embedded runtime so one scrape covers both layers.
  /// Null disables instrumentation and makes /metrics return 404.
  MetricsRegistry* metrics = nullptr;
  /// Options of the embedded StreamRuntime.
  RuntimeOptions runtime;
};

/// TCP batch-ingest frontend over a StreamRuntime.
///
/// One thread runs a poll()-driven accept/read/write loop over non-blocking
/// sockets; decoded SUBMIT frames enter the runtime through TrySubmit, so
/// the event loop never blocks on a full shard queue — admission control
/// turns queue pressure into OVERLOAD(retry_after) replies and the remote
/// producer backs off (the Envoy idiom: reject at the edge, never stall
/// the data plane). Inference results surface on runtime drain threads via
/// the result callback, are handed to the loop through a mutex-guarded
/// outbox plus a self-pipe wakeup, and are written back on the connection
/// that submitted the stream — per-stream FIFO order is preserved end to
/// end because each shard has a single drain task and each connection's
/// write buffer is FIFO.
///
/// The same listener speaks minimal HTTP: a connection whose first bytes
/// are "GET " receives the Prometheus text exposition of the attached
/// registry at `/metrics` (404 otherwise) and is closed — curl and a
/// Prometheus scraper need no second port.
///
/// Threading contract: Start/Stop/Wait are called by the owner thread.
/// Everything network-facing runs on the loop thread; the runtime result
/// callback runs on drain threads and only touches the outbox. FailPoint
/// sites "net.accept", "net.read", and "net.write" let chaos tests sever
/// connections at each stage of the loop.
class StreamServer {
 public:
  StreamServer(const Model& prototype, ServerOptions options);
  /// Calls Stop().
  ~StreamServer();

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  /// Binds, listens, and starts the loop thread. Fails on bind errors
  /// (address in use, bad address). Not restartable after Stop().
  Status Start();

  /// Graceful stop: stops accepting, shuts the runtime down (processing
  /// everything already admitted), flushes pending replies within
  /// shutdown_flush_millis, closes all connections, joins the loop thread.
  /// Idempotent; safe to call even if Start() was never called.
  void Stop();

  /// Blocks until the loop thread exits — either Stop() or a client's
  /// SHUTDOWN frame. No-op when the server never started.
  void Wait();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (after Start()).
  uint16_t port() const { return port_; }

  /// The embedded runtime — for stats snapshots and tests. Submit-side use
  /// must go through the network path.
  StreamRuntime* runtime() { return runtime_.get(); }

 private:
  struct Connection {
    int fd = -1;
    FrameDecoder decoder;
    /// Encoded-but-unwritten reply bytes ([out_pos, size) pending).
    std::vector<char> outbuf;
    size_t out_pos = 0;
    /// First bytes decide the grammar: wire frames or HTTP.
    bool protocol_decided = false;
    bool http = false;
    std::vector<char> http_buf;
    bool close_after_flush = false;
  };

  /// freeway_net_* handles; null while options_.metrics is null.
  struct NetMetrics {
    Counter* accepted = nullptr;
    Counter* closed = nullptr;
    Gauge* active = nullptr;
    Counter* frames_in = nullptr;
    Counter* frames_out = nullptr;
    Counter* submits = nullptr;
    Counter* acks = nullptr;
    Counter* results = nullptr;
    Counter* overloads = nullptr;
    Counter* errors_sent = nullptr;
    Counter* decode_errors = nullptr;
    Counter* torn_frames = nullptr;
    Counter* results_dropped = nullptr;
    Counter* http_requests = nullptr;
    Histogram* frame_bytes = nullptr;
    Histogram* request_seconds = nullptr;
  };

  void Loop();
  void AcceptPending();
  /// Reads everything available on `fd`; may close the connection.
  void HandleReadable(int fd);
  /// Routes buffered bytes: protocol sniffing, then frame or HTTP handling.
  void ProcessBuffered(int fd, const char* data, size_t size);
  void ProcessFrames(int fd);
  void HandleFrame(int fd, const Frame& frame);
  void HandleSubmit(int fd, const Frame& frame);
  void HandleHttp(int fd);
  /// Appends an encoded frame to the connection's write buffer and flushes
  /// as much as the socket accepts right now.
  void QueueFrame(int fd, std::vector<char> encoded);
  void FlushWrites(int fd);
  void CloseConnection(int fd);
  /// Moves results from the outbox onto their connections' write buffers.
  void DrainOutbox();
  /// Runtime result callback (drain threads): outbox append + wakeup.
  void OnResult(const StreamResult& result);
  void WakeLoop();
  void GracefulStop();

  ServerOptions options_;
  NetMetrics metrics_;
  std::unique_ptr<StreamRuntime> runtime_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;

  std::thread loop_thread_;
  std::mutex lifecycle_mutex_;  ///< Serializes Start/Stop/Wait joins.
  bool started_ = false;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  // Loop-thread state.
  std::map<int, std::unique_ptr<Connection>> conns_;
  /// stream_id → fd of the connection that most recently submitted it.
  std::unordered_map<uint64_t, int> routes_;
  /// (stream_id, batch_index) → admission time of unlabeled batches, for
  /// the request-latency histogram. Entries whose batch is shed or whose
  /// connection vanishes are dropped on delivery-lookup misses.
  std::map<std::pair<uint64_t, int64_t>,
           std::chrono::steady_clock::time_point>
      pending_latency_;

  std::mutex outbox_mutex_;
  std::vector<StreamResult> outbox_;
};

}  // namespace freeway

#endif  // FREEWAYML_NET_SERVER_H_
