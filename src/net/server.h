#ifndef FREEWAYML_NET_SERVER_H_
#define FREEWAYML_NET_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ingest/dedup.h"
#include "ingest/ingest_log.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "replication/replicator.h"
#include "runtime/stream_runtime.h"

namespace freeway {

/// Durable-ingest knobs of the server (see IngestLog). Disabled, the
/// server still dedups tracked submits in memory, but the watermark table
/// dies with the process — exactly-once then only holds across connection
/// drops, not restarts.
struct IngestOptions {
  /// Master switch for the write-ahead batch log.
  bool enabled = false;
  /// Directory of the log segments. Required when enabled.
  std::string log_dir;
  uint64_t segment_max_bytes = 4u << 20;
  /// fsync every appended record before it is acknowledged. Off by
  /// default: the durability unit is then the OS page cache (survives the
  /// process, not the host).
  bool fsync = false;
  /// At graceful stop, rotate and drop every sealed segment: everything
  /// admitted has been processed (and checkpointed when fault tolerance is
  /// on), so only the watermark snapshot in the fresh head segment is
  /// still needed. Leave off to keep the full batch history for
  /// examples/replay_log-style offline replay.
  bool truncate_at_stop = false;
  /// Sealed segments to retain past the checkpoint-covered anchor during
  /// steady-state truncation (the periodic sweep driven by
  /// ServerOptions::maintenance_interval_millis). 0 prunes everything the
  /// checkpoints cover; larger values keep a bounded recent-history window
  /// for offline replay tooling.
  size_t retention_segments = 0;
};

/// Configuration of the TCP batch-ingest server.
struct ServerOptions {
  /// Numeric IPv4 listen address; loopback by default.
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port — recover the actual one with port().
  uint16_t port = 0;
  int listen_backlog = 64;
  /// Reactor (event-loop worker) threads. 0 resolves from the
  /// FREEWAY_NET_WORKERS environment variable, defaulting to 1. Each worker
  /// runs its own poll() loop over its own listener (SO_REUSEPORT accept
  /// sharding, or dups of one listener where the kernel lacks it) and owns
  /// every connection it accepts for that connection's whole life.
  size_t num_workers = 0;
  /// Connections beyond this (across all workers) are accepted and
  /// immediately closed (the kernel backlog would otherwise queue them
  /// invisibly).
  size_t max_connections = 64;
  /// `retry_after` carried by OVERLOAD replies. Fixed advice: one drain of
  /// a typical batch is in the low milliseconds, so by default clients are
  /// told to stay away for 2 ms and then ramp their own backoff.
  int64_t overload_retry_micros = 2000;
  /// poll() timeout when nothing is happening. The per-worker self-pipe
  /// wakes a loop early for result delivery and Stop(), so this only
  /// bounds how stale an idle loop can be.
  int poll_timeout_millis = 100;
  /// Wall-clock budget for flushing pending replies during graceful stop.
  int64_t shutdown_flush_millis = 2000;
  /// Observability sink for the `freeway_net_*` family; also serves as the
  /// `GET /metrics` document. When RuntimeOptions.metrics is null it is
  /// forwarded to the embedded runtime so one scrape covers both layers.
  /// Null disables instrumentation and makes /metrics return 404.
  MetricsRegistry* metrics = nullptr;
  /// Durable write-ahead batch log + watermark persistence.
  IngestOptions ingest;
  /// Raft replication across a cluster of StreamServers (requires
  /// ingest.enabled — the replicated state machine IS the ingest log).
  /// See ReplicationOptions; disabled by default.
  ReplicationOptions replication;
  /// Cadence of worker 0's maintenance sweep: checkpoint-anchored ingest
  /// log truncation, and (replicated mode, leader only) dead-letter and
  /// truncate-mark proposals.
  int64_t maintenance_interval_millis = 500;
  /// Options of the embedded StreamRuntime.
  RuntimeOptions runtime;
};

/// TCP batch-ingest frontend over a StreamRuntime.
///
/// Multi-reactor (Envoy listener-per-worker style): N worker threads each
/// run a poll()-driven accept/read/write loop. Accepts are sharded across
/// workers by SO_REUSEPORT (each worker binds its own listener on the
/// shared port; kernels without SO_REUSEPORT fall back to every worker
/// polling a dup of one listener, where accept() naturally arbitrates).
/// A connection is pinned for life to the worker that accepted it: decoder
/// state, write buffers, stream routes, and latency bookkeeping are
/// worker-local, so no connection state is ever shared across threads.
///
/// Decoded SUBMIT frames enter the runtime through TrySubmit, so an event
/// loop never blocks on a full shard queue — admission control turns queue
/// pressure into OVERLOAD(retry_after) replies and the remote producer
/// backs off (the Envoy idiom: reject at the edge, never stall the data
/// plane).
///
/// Admission is exactly-once for tracked submits (wire v3 non-zero
/// (client_id, sequence)): a sequence at or below the client's watermark
/// in the shared DedupIndex is re-ACKed without touching the runtime, so a
/// resend whose first copy was admitted — the connection died carrying the
/// ACK — cannot reach the learner twice. With IngestOptions.enabled the
/// order is log-first: the batch is appended to the durable IngestLog
/// *before* the watermark advances and TrySubmit runs; a rejected
/// admission (OVERLOAD/ERROR) retreats the watermark and appends a revert
/// record naming the cancelled LSN, so the log replays to exactly the
/// admitted set and the watermark table survives restarts. Inference results surface on runtime drain threads via the
/// result callback; a sharded stream→worker route table directs each
/// result to the owning worker's outbox, and that worker's self-pipe wakes
/// its loop to write the RESULT on the connection that submitted the
/// stream. Per-stream FIFO order is preserved end to end because each
/// runtime shard has a single drain task and each connection's write
/// buffer is FIFO.
///
/// With ReplicationOptions.enabled the server is one member of a raft
/// cluster and the admission path changes shape: a SUBMIT reaching a
/// follower is answered NOT_LEADER(leader_hint); on the leader the batch
/// is *proposed* to the replicator instead of being logged directly, and
/// the ACK is deferred — it is written only after the entry is
/// majority-replicated and applied (ingest-logged, watermark-advanced,
/// runtime-enqueued) on this node, so an ACKed batch survives the loss of
/// any minority of machines. Followers apply the same committed entries in
/// the same order into their own IngestLog + DedupIndex + runtime, which
/// keeps the per-node logs bit-identical and lets any follower take over
/// as leader with the exact admitted history. Peer raft traffic arrives on
/// the same listeners as client traffic (frame types VOTE_REQUEST …
/// APPEND_RESPONSE) and is handed to the replicator; deferred ACKs travel
/// back to the owning worker through a per-worker frame outbox keyed by
/// connection id (fds are recycled, ids are not).
///
/// Every worker's listener speaks minimal HTTP: a connection whose first
/// bytes are "GET " receives the Prometheus text exposition of the
/// attached registry at `/metrics`, the runtime stats JSON at `/stats`
/// (404 otherwise), and is closed — curl and a Prometheus scraper need no
/// second port, regardless of which worker the kernel routes them to.
///
/// Threading contract: Start/Stop/Wait are called by the owner thread.
/// Everything network-facing runs on worker loop threads; the runtime
/// result callback runs on drain threads and only touches the route table
/// and per-worker outboxes. Graceful stop is coordinated: every worker
/// first closes its listener, then worker 0 shuts the runtime down
/// (draining admitted batches into the outboxes) while the others keep
/// flushing replies, and each worker finally flushes its own connections
/// within the shutdown budget. FailPoint sites "net.accept", "net.read",
/// and "net.write" let chaos tests sever connections at each stage on any
/// worker.
class StreamServer {
 public:
  StreamServer(const Model& prototype, ServerOptions options);
  /// Calls Stop().
  ~StreamServer();

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  /// Binds the per-worker listeners and starts the worker threads. Fails
  /// on bind errors (address in use, bad address). Not restartable after
  /// Stop().
  Status Start();

  /// Graceful stop: stops accepting, shuts the runtime down (processing
  /// everything already admitted), flushes pending replies within
  /// shutdown_flush_millis, closes all connections, joins every worker.
  /// Idempotent; safe to call even if Start() was never called.
  void Stop();

  /// Blocks until the worker threads exit — either Stop() or a client's
  /// SHUTDOWN frame. No-op when the server never started.
  void Wait();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (after Start()). All workers share it.
  uint16_t port() const { return port_; }

  /// Worker threads actually running (after Start()).
  size_t num_workers() const { return workers_.size(); }

  /// True when accept sharding runs on SO_REUSEPORT; false on the
  /// dup-listener fallback.
  bool reuseport_sharding() const { return reuseport_sharding_; }

  /// The embedded runtime — for stats snapshots and tests. Submit-side use
  /// must go through the network path.
  StreamRuntime* runtime() { return runtime_.get(); }

  /// The durable batch log; null while IngestOptions.enabled is false or
  /// before Start(). Tests and offline tooling replay it.
  IngestLog* ingest_log() { return ingest_log_.get(); }

  /// The per-client watermark table (always live, log or not).
  DedupIndex* dedup_index() { return &dedup_; }

  /// The raft replicator; null while ReplicationOptions.enabled is false
  /// or before Start(). Tests read roles/terms/commit indexes through it.
  Replicator* replicator() { return replicator_.get(); }

 private:
  struct Connection {
    int fd = -1;
    /// Stable identity for deferred replies (replication ACKs): fds are
    /// recycled by the kernel the moment a connection closes, so an ACK
    /// that matured after a close must miss, not hit a stranger.
    uint64_t id = 0;
    FrameDecoder decoder;
    /// Encoded-but-unwritten reply bytes ([out_pos, size) pending).
    std::vector<char> outbuf;
    size_t out_pos = 0;
    /// First bytes decide the grammar: wire frames or HTTP.
    bool protocol_decided = false;
    bool http = false;
    std::vector<char> http_buf;
    bool close_after_flush = false;
  };

  /// One reactor: a listener, a self-pipe, and every piece of connection
  /// state for the connections it accepted. Only `outbox` (+ its mutex)
  /// is ever touched by other threads.
  struct Worker {
    size_t index = 0;
    int listen_fd = -1;
    int wake_read_fd = -1;
    int wake_write_fd = -1;
    std::thread thread;

    // Loop-thread state.
    std::map<int, std::unique_ptr<Connection>> conns;
    /// Connection-id allocator + reverse index (loop thread only).
    uint64_t next_conn_id = 1;
    std::unordered_map<uint64_t, int> fd_by_conn_id;
    /// stream_id → fd of the connection that most recently submitted it
    /// on this worker.
    std::unordered_map<uint64_t, int> routes;
    /// (stream_id, batch_index) → admission time of unlabeled batches, for
    /// the request-latency histogram.
    std::map<std::pair<uint64_t, int64_t>,
             std::chrono::steady_clock::time_point>
        pending_latency;

    /// Results handed off from runtime drain threads, plus pre-encoded
    /// frames (deferred replication ACKs from the applier thread) destined
    /// for specific connections by id.
    std::mutex outbox_mutex;
    std::vector<StreamResult> outbox;
    std::vector<std::pair<uint64_t, std::vector<char>>> frame_outbox;

    /// freeway_net_worker_* handles; null while metrics are detached.
    Counter* connections = nullptr;
    Counter* frames = nullptr;
    Counter* loop_iterations = nullptr;
  };

  /// freeway_net_* handles; null while options_.metrics is null.
  struct NetMetrics {
    Counter* accepted = nullptr;
    Counter* closed = nullptr;
    Gauge* active = nullptr;
    Counter* frames_in = nullptr;
    Counter* frames_out = nullptr;
    Counter* submits = nullptr;
    Counter* acks = nullptr;
    Counter* results = nullptr;
    Counter* overloads = nullptr;
    Counter* errors_sent = nullptr;
    Counter* decode_errors = nullptr;
    /// Tracked submits re-ACKed from the watermark table instead of being
    /// re-enqueued — each one is a duplicate delivery that dedup absorbed.
    Counter* duplicates = nullptr;
    /// IngestLog append/revert failures surfaced as ERROR replies.
    Counter* ingest_log_errors = nullptr;
    /// SUBMITs answered NOT_LEADER (replicated mode, non-leader node).
    Counter* not_leader = nullptr;
    Counter* torn_frames = nullptr;
    Counter* results_dropped = nullptr;
    Counter* http_requests = nullptr;
    Histogram* frame_bytes = nullptr;
    Histogram* request_seconds = nullptr;
  };

  /// Sharded stream_id → worker-index table: written by workers on SUBMIT,
  /// read by drain threads delivering results. Sharding keeps the
  /// submit-path lock nearly uncontended.
  static constexpr size_t kRouteShards = 16;
  struct RouteShard {
    std::mutex mutex;
    std::unordered_map<uint64_t, size_t> worker_of;
  };

  void Loop(Worker& w);
  void AcceptPending(Worker& w);
  /// Reads everything available on `fd`; may close the connection.
  void HandleReadable(Worker& w, int fd);
  /// Routes buffered bytes: protocol sniffing, then frame or HTTP handling.
  void ProcessBuffered(Worker& w, int fd, const char* data, size_t size);
  void ProcessFrames(Worker& w, int fd);
  void HandleFrame(Worker& w, int fd, const Frame& frame);
  void HandleSubmit(Worker& w, int fd, const Frame& frame);
  /// Replicated-mode SUBMIT path: NOT_LEADER redirect / dedup re-ACK /
  /// apply-lag overload gate / propose with deferred ACK.
  void HandleSubmitReplicated(Worker& w, int fd, SubmitMessage message);
  /// Replicator apply callback (applier thread, every node): feeds one
  /// committed command into IngestLog + DedupIndex + runtime.
  void ApplyReplicated(const ReplicatedCommand& command);
  /// Replicator ack callback (applier thread, leader): hands the encoded
  /// ACK to the owning worker's frame outbox.
  void DeliverAck(const Replicator::AckToken& token);
  void HandleHttp(Worker& w, int fd);
  /// Appends an encoded frame to the connection's write buffer and flushes
  /// as much as the socket accepts right now.
  void QueueFrame(Worker& w, int fd, std::vector<char> encoded);
  void FlushWrites(Worker& w, int fd);
  void CloseConnection(Worker& w, int fd);
  /// Moves results from the worker's outbox onto its connections' write
  /// buffers.
  void DrainOutbox(Worker& w);
  /// Runtime result callback (drain threads): route lookup + owning
  /// worker's outbox append + that worker's wakeup.
  void OnResult(const StreamResult& result);
  void WakeWorker(Worker& w);
  void WakeAllWorkers();
  /// Publishes `stream_id → w` for result handoff.
  void RouteStreamTo(uint64_t stream_id, size_t worker_index);
  /// FaultToleranceOptions::on_checkpoint sink (drain threads): shard
  /// `shard` has consumed `consumed` batches, all covered by a checkpoint.
  void OnShardCheckpoint(size_t shard, uint64_t consumed);
  /// The highest LSN every shard's checkpoints cover (0 = nothing covered).
  uint64_t CoveredLsn();
  /// Worker 0, every maintenance_interval_millis: checkpoint-anchored log
  /// truncation (direct in single-node mode, via a replicated truncate
  /// mark from the leader in replicated mode) + dead-letter replication.
  void MaintenanceSweep();
  /// Coordinated teardown tail of Loop(): accept-closed barrier, runtime
  /// drain on worker 0, then per-worker reply flush and close.
  void GracefulStop(Worker& w);
  /// Best-effort reply flush within the shutdown budget, then closes every
  /// connection of `w`.
  void FlushAndCloseAll(Worker& w);

  ServerOptions options_;
  NetMetrics metrics_;
  std::unique_ptr<StreamRuntime> runtime_;
  /// Exactly-once state. The dedup index is shared by all workers (its
  /// shards serialize per client); the log serializes appends internally.
  DedupIndex dedup_;
  std::unique_ptr<IngestLog> ingest_log_;
  std::unique_ptr<Replicator> replicator_;

  /// Checkpoint-anchored truncation bookkeeping. Per shard, the LSNs of
  /// admitted-but-not-yet-checkpoint-covered batches in shard-queue order
  /// (as (ordinal, lsn) pairs against the shard's consumed count). In
  /// single-node mode workers hold this mutex *across* TrySubmit so
  /// ordinal order equals queue order; in replicated mode the single
  /// applier thread is the only submitter, so it locks only around the
  /// bookkeeping itself (never across its blocking Submit — drain threads
  /// take this mutex in OnShardCheckpoint, and a drain thread blocked here
  /// while the applier waits for queue space would deadlock).
  /// Coverage tracking only runs when checkpoints can ever anchor a
  /// truncation (ingest + fault tolerance both on) — otherwise the
  /// outstanding deques would grow without a consumer.
  /// Recursive because a workerless global ThreadPool (single-core hosts)
  /// runs drain tasks inline inside TrySubmit: the admission path holds
  /// this mutex across TrySubmit, whose inline drain may checkpoint and
  /// re-enter OnShardCheckpoint on the same thread.
  bool coverage_enabled_ = false;
  std::recursive_mutex coverage_mutex_;
  std::vector<std::deque<std::pair<uint64_t, uint64_t>>> shard_outstanding_;
  std::vector<uint64_t> shard_admitted_;
  std::vector<uint64_t> shard_consumed_;
  /// LSNs appended but whose admission outcome is still pending — plugs
  /// the cross-worker window between IngestLog::Append and the admission
  /// bookkeeping, during which a sweep must not treat the LSN as covered.
  std::set<uint64_t> unresolved_lsns_;
  /// Highest LSN noted as admitted or covered (revert pairs, duplicates).
  uint64_t highest_noted_lsn_ = 0;
  /// Anchor of the last successful truncation (worker 0 / applier only).
  std::atomic<uint64_t> truncated_lsn_{0};
  std::chrono::steady_clock::time_point last_maintenance_{};

  std::vector<std::unique_ptr<Worker>> workers_;
  bool reuseport_sharding_ = false;
  uint16_t port_ = 0;

  std::array<RouteShard, kRouteShards> route_table_;
  std::atomic<size_t> active_connections_{0};

  std::mutex lifecycle_mutex_;  ///< Serializes Start/Stop/Wait joins.
  bool started_ = false;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  /// Graceful-stop coordination: workers that closed their listeners, the
  /// "runtime fully drained" flag worker 0 raises, and the count of loops
  /// that exited (the last one clears running_).
  std::atomic<size_t> accept_closed_{0};
  std::atomic<bool> drained_{false};
  std::atomic<size_t> workers_exited_{0};
};

}  // namespace freeway

#endif  // FREEWAYML_NET_SERVER_H_
