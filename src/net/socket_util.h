#ifndef FREEWAYML_NET_SOCKET_UTIL_H_
#define FREEWAYML_NET_SOCKET_UTIL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace freeway {
namespace net {

/// Thin Status-returning wrappers over the POSIX socket calls the serving
/// layer uses. Addresses are numeric IPv4 (dotted quad) — the layer
/// targets loopback and VPC-internal listeners, so no resolver dependency.

/// Creates a non-blocking listening TCP socket bound to `address:port`
/// (port 0 picks an ephemeral port; recover it with LocalPort). SO_REUSEADDR
/// is set so tests can rebind quickly. With `reuse_port` the socket is
/// additionally marked SO_REUSEPORT *before* binding, so several listeners
/// can share one port and the kernel shards incoming connections across
/// them (the multi-reactor accept path); a kernel without SO_REUSEPORT
/// support makes this fail with NotImplemented, which callers treat as
/// "use the dup-listener fallback".
Result<int> CreateListenSocket(const std::string& address, uint16_t port,
                               int backlog, bool reuse_port = false);

/// Duplicates a socket fd (the shared-listener fallback when SO_REUSEPORT
/// sharding is unavailable: every worker polls its own dup of one
/// listener). The dup shares the underlying socket, so the listen state
/// dies when the last dup is closed.
Result<int> DuplicateSocket(int fd);

/// The locally bound port of a socket (resolves ephemeral binds).
Result<uint16_t> LocalPort(int fd);

/// Blocking connect to `host:port` with a timeout; returns a *blocking*
/// connected fd. TCP_NODELAY is set: frames are latency-sensitive and
/// already batched by the caller.
Result<int> ConnectSocket(const std::string& host, uint16_t port,
                          int64_t timeout_millis);

Status SetNonBlocking(int fd, bool nonblocking);

/// Writes the whole buffer to a blocking fd, resuming on EINTR / partial
/// writes. Fails with IoError on a broken connection.
Status SendAll(int fd, const char* data, size_t size);

/// Waits until `fd` is readable. Ok = readable; Unavailable = timeout;
/// IoError = poll failure or socket error/hangup.
Status WaitReadable(int fd, int64_t timeout_millis);

/// EINTR-safe close.
void CloseFd(int fd);

}  // namespace net
}  // namespace freeway

#endif  // FREEWAYML_NET_SOCKET_UTIL_H_
