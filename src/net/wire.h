#ifndef FREEWAYML_NET_WIRE_H_
#define FREEWAYML_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "replication/raft.h"
#include "runtime/stream_runtime.h"
#include "stream/batch.h"
#include "stream/batch_codec.h"

namespace freeway {

/// Versioned length-prefixed binary wire protocol of the network serving
/// layer. Every message is one frame:
///
///   u32 magic 'FWNP' | u8 version | u8 type | u16 reserved(0)
///   u32 payload size | u32 payload CRC-32 | payload bytes
///
/// The 16-byte header is validated field-by-field before the payload is
/// trusted: wrong magic/version/type or a size above kMaxFramePayload
/// rejects the stream outright (the connection is corrupt, not slow), and
/// the CRC is re-verified once the payload is complete, so a flipped bit
/// in transit can never reach the payload decoders. Payloads are encoded
/// with the shared stream/batch_codec (SnapshotWriter/SnapshotReader) —
/// the same audited codec the checkpoint store uses, so a Batch or Matrix
/// is bit-identical whether it crossed the wire or a restart.
///
/// Protocol flow (client → server requests, server → client replies):
///   SUBMIT(stream_id, Batch)        → ACK(stream_id, batch_index)
///                                   | OVERLOAD(stream_id, batch_index,
///                                              retry_after_micros)
///                                   | ERROR(stream_id, batch_index, status)
///   RESULT(StreamResult)            server-push, one per unlabeled batch
///   STATS_REQUEST()                 → STATS(json)
///   SHUTDOWN()                      → ACK, then graceful server stop
///
/// Replication flow (v4, node ↔ node and server → client):
///   VOTE_REQUEST / VOTE_RESPONSE / APPEND_ENTRIES / APPEND_RESPONSE
///       carry one RaftMessage each between cluster peers;
///   NOT_LEADER(leader_hint)         answers a SUBMIT sent to a follower —
///       the client re-targets the hinted endpoint and resends.
///
/// A connection whose first four bytes are "GET " is not speaking this
/// protocol: StreamServer hands it to the HTTP responder (`GET /metrics`
/// Prometheus exposition). The frame magic is chosen so the two grammars
/// can never be confused.

enum class FrameType : uint8_t {
  kSubmit = 1,
  kResult = 2,
  kAck = 3,
  kOverload = 4,
  kError = 5,
  kStatsRequest = 6,
  kStats = 7,
  kShutdown = 8,
  /// v4 replication frames: one RaftMessage per frame between peers.
  kVoteRequest = 9,
  kVoteResponse = 10,
  kAppendEntries = 11,
  kAppendResponse = 12,
  /// v4: answer to a SUBMIT that reached a non-leader node.
  kNotLeader = 13,
};

const char* FrameTypeName(FrameType type);

/// 'FWNP' read little-endian from the first four bytes.
inline constexpr uint32_t kFrameMagic = 0x504E5746u;
/// v2 added tenant_id + priority to SUBMIT (multi-tenant stream
/// directory); v3 added the client-assigned (client_id, sequence) pair
/// that drives exactly-once dedup on the server; v4 added the replication
/// frames (raft consensus between peers, NOT_LEADER redirects to clients).
/// The protocol is versioned per connection, not per message, so each bump
/// is a clean break: older peers are rejected at the header.
inline constexpr uint8_t kWireVersion = 4;
inline constexpr size_t kFrameHeaderBytes = 16;
/// Upper bound an honest peer never hits (a 1024×1024-feature double batch
/// is ~8 MiB); anything larger is treated as corruption, not a request to
/// allocate.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

/// One decoded frame: the type plus its raw (CRC-verified) payload.
struct Frame {
  FrameType type = FrameType::kAck;
  std::vector<char> payload;
};

/// Encodes a complete frame (header + payload) ready to write to a socket.
std::vector<char> EncodeFrame(FrameType type,
                              const std::vector<char>& payload = {});

/// Incremental frame parser for a byte stream. Feed() appends received
/// bytes; Next() pops complete frames. A malformed header or CRC mismatch
/// poisons the decoder permanently (every later Next() returns the same
/// error) because a byte stream that lost framing cannot be resynchronized
/// — the connection must be dropped.
class FrameDecoder {
 public:
  void Feed(const char* data, size_t size);

  /// Ok: the next complete frame. NotFound: need more bytes (not an
  /// error). InvalidArgument: the stream is corrupt; close the connection.
  Result<Frame> Next();

  /// Bytes buffered but not yet consumed by a complete frame. Non-zero at
  /// connection EOF means the peer died mid-frame (a torn frame).
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<char> buffer_;
  size_t consumed_ = 0;
  bool poisoned_ = false;
  std::string poison_message_;
};

// --- Typed payloads ------------------------------------------------------

struct SubmitMessage {
  uint64_t stream_id = 0;
  /// Exactly-once identity (wire v3): the submitting client's stable id
  /// and the 1-based sequence it assigned to this *batch* (a resend of the
  /// same batch reuses the sequence). The server's dedup table re-ACKs any
  /// sequence at or below the client's watermark without re-enqueueing.
  /// Both 0 marks an untracked submit with the legacy at-least-once
  /// semantics.
  uint64_t client_id = 0;
  uint64_t sequence = 0;
  /// Tenant identity + priority band the server feeds into weighted
  /// admission (see SubmitContext). Zero / standard — the v1 behaviour —
  /// when the client does not set them.
  uint32_t tenant_id = 0;
  /// Encoded as the TenantPriority numeric value; decode rejects values
  /// outside the enum so a corrupt byte cannot invent a priority band.
  uint8_t priority = 1;
  Batch batch;
};

/// ACK / OVERLOAD / ERROR all reference the submit they answer.
struct AckMessage {
  uint64_t stream_id = 0;
  int64_t batch_index = 0;
};

struct OverloadMessage {
  uint64_t stream_id = 0;
  int64_t batch_index = 0;
  /// Server's advice: retry no sooner than this. Clients combine it with
  /// their own exponential backoff.
  int64_t retry_after_micros = 0;
};

struct ErrorMessage {
  uint64_t stream_id = 0;
  int64_t batch_index = 0;
  StatusCode code = StatusCode::kInternal;
  std::string message;

  Status ToStatus() const { return Status(code, message); }
};

std::vector<char> EncodeSubmit(const SubmitMessage& message);
Result<SubmitMessage> DecodeSubmit(const Frame& frame);

std::vector<char> EncodeResult(const StreamResult& result);
Result<StreamResult> DecodeResult(const Frame& frame);

std::vector<char> EncodeAck(const AckMessage& message);
Result<AckMessage> DecodeAck(const Frame& frame);

std::vector<char> EncodeOverload(const OverloadMessage& message);
Result<OverloadMessage> DecodeOverload(const Frame& frame);

std::vector<char> EncodeError(const ErrorMessage& message);
Result<ErrorMessage> DecodeError(const Frame& frame);

/// STATS payload: a JSON document (RuntimeStatsSnapshot::ToJson).
std::vector<char> EncodeStats(const std::string& json);
Result<std::string> DecodeStats(const Frame& frame);

/// Redirect reply to a SUBMIT that reached a follower (or a node with no
/// elected leader yet — then leader_id is 0 and the hint fields are empty,
/// and the client should rotate endpoints and back off).
struct NotLeaderMessage {
  uint64_t stream_id = 0;
  int64_t batch_index = 0;
  /// The leader this node currently believes in (0 = unknown).
  uint64_t leader_id = 0;
  std::string leader_host;
  uint16_t leader_port = 0;
};

std::vector<char> EncodeNotLeader(const NotLeaderMessage& message);
Result<NotLeaderMessage> DecodeNotLeader(const Frame& frame);

/// Encodes one consensus message as a complete frame; the frame type is
/// chosen from `message.type`. AppendEntries payloads carry the full entry
/// list (index, term, command bytes per entry).
std::vector<char> EncodeRaftMessage(const RaftMessage& message);
/// Decodes any of the four replication frame types.
Result<RaftMessage> DecodeRaftMessage(const Frame& frame);

}  // namespace freeway

#endif  // FREEWAYML_NET_WIRE_H_
