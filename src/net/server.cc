#include "net/server.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.h"
#include "fault/failpoint.h"
#include "net/socket_util.h"

namespace freeway {

namespace {

constexpr size_t kReadChunk = 64 * 1024;
/// An HTTP request line + headers larger than this is not a scraper.
constexpr size_t kMaxHttpRequest = 8 * 1024;

bool StartsWithGet(const std::vector<char>& buf) {
  return buf.size() >= 4 && std::memcmp(buf.data(), "GET ", 4) == 0;
}

}  // namespace

StreamServer::StreamServer(const Model& prototype, ServerOptions options)
    : options_(std::move(options)) {
  if (options_.runtime.metrics == nullptr) {
    options_.runtime.metrics = options_.metrics;
  }
  if (options_.metrics != nullptr) {
    MetricsRegistry* registry = options_.metrics;
    metrics_.accepted = registry->GetCounter(
        "freeway_net_connections_total{event=\"accepted\"}");
    metrics_.closed = registry->GetCounter(
        "freeway_net_connections_total{event=\"closed\"}");
    metrics_.active = registry->GetGauge("freeway_net_active_connections");
    metrics_.frames_in =
        registry->GetCounter("freeway_net_frames_total{dir=\"in\"}");
    metrics_.frames_out =
        registry->GetCounter("freeway_net_frames_total{dir=\"out\"}");
    metrics_.submits = registry->GetCounter("freeway_net_submits_total");
    metrics_.acks = registry->GetCounter("freeway_net_acks_total");
    metrics_.results = registry->GetCounter("freeway_net_results_total");
    metrics_.overloads = registry->GetCounter("freeway_net_overloads_total");
    metrics_.errors_sent = registry->GetCounter("freeway_net_errors_total");
    metrics_.decode_errors =
        registry->GetCounter("freeway_net_decode_errors_total");
    metrics_.torn_frames =
        registry->GetCounter("freeway_net_torn_frames_total");
    metrics_.results_dropped =
        registry->GetCounter("freeway_net_results_dropped_total");
    metrics_.http_requests =
        registry->GetCounter("freeway_net_http_requests_total");
    metrics_.frame_bytes = registry->GetHistogram(
        "freeway_net_frame_bytes", Histogram::DefaultSizeBounds());
    metrics_.request_seconds =
        registry->GetHistogram("freeway_net_request_seconds");
  }
  runtime_ = std::make_unique<StreamRuntime>(
      prototype, options_.runtime,
      [this](const StreamResult& result) { OnResult(result); });
}

StreamServer::~StreamServer() {
  Stop();
  // The wake pipe outlives the loop so that late WakeLoop() calls (result
  // callbacks racing a graceful stop, Stop() itself) always hit a valid
  // fd; with the loop joined it is finally safe to close.
  net::CloseFd(wake_read_fd_);
  net::CloseFd(wake_write_fd_);
  wake_read_fd_ = -1;
  wake_write_fd_ = -1;
}

Status StreamServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_) return Status::FailedPrecondition("server already started");
  if (stop_requested_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server is stopped");
  }
  ASSIGN_OR_RETURN(listen_fd_,
                   net::CreateListenSocket(options_.bind_address,
                                           options_.port,
                                           options_.listen_backlog));
  ASSIGN_OR_RETURN(port_, net::LocalPort(listen_fd_));
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  net::SetNonBlocking(wake_read_fd_, true).CheckOk();
  net::SetNonBlocking(wake_write_fd_, true).CheckOk();
  started_ = true;
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void StreamServer::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  stop_requested_.store(true, std::memory_order_release);
  if (!started_) {
    // Never started: still quiesce the runtime so queued batches (from
    // direct runtime()->Submit use in tests) are processed.
    runtime_->Shutdown();
    return;
  }
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
}

void StreamServer::Wait() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (loop_thread_.joinable()) loop_thread_.join();
}

void StreamServer::OnResult(const StreamResult& result) {
  {
    std::lock_guard<std::mutex> lock(outbox_mutex_);
    outbox_.push_back(result);
  }
  WakeLoop();
}

void StreamServer::WakeLoop() {
  if (wake_write_fd_ < 0) return;
  const char byte = 1;
  // Non-blocking: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
}

void StreamServer::Loop() {
  std::vector<pollfd> pollfds;
  std::vector<int> conn_fds;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfds.clear();
    conn_fds.clear();
    pollfds.push_back({listen_fd_, POLLIN, 0});
    pollfds.push_back({wake_read_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : conns_) {
      short events = POLLIN;
      if (conn->out_pos < conn->outbuf.size()) events |= POLLOUT;
      pollfds.push_back({fd, events, 0});
      conn_fds.push_back(fd);
    }
    const int ready =
        ::poll(pollfds.data(), pollfds.size(), options_.poll_timeout_millis);
    if (ready < 0 && errno != EINTR) {
      FREEWAY_LOG(kWarning) << "server poll failed: " << std::strerror(errno);
      break;
    }
    if (stop_requested_.load(std::memory_order_acquire)) break;
    if ((pollfds[1].revents & POLLIN) != 0) {
      char drain[256];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    DrainOutbox();
    if ((pollfds[0].revents & POLLIN) != 0) AcceptPending();
    for (size_t i = 0; i < conn_fds.size(); ++i) {
      const int fd = conn_fds[i];
      const short revents = pollfds[i + 2].revents;
      if (conns_.find(fd) == conns_.end()) continue;  // Closed this round.
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) HandleReadable(fd);
      if (conns_.find(fd) == conns_.end()) continue;
      if ((revents & POLLOUT) != 0) FlushWrites(fd);
    }
  }
  GracefulStop();
}

void StreamServer::AcceptPending() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      FREEWAY_LOG(kWarning) << "accept failed: " << std::strerror(errno);
      return;
    }
    if (metrics_.accepted != nullptr) metrics_.accepted->Inc();
    Status injected = failpoint::Check("net.accept");
    if (!injected.ok() || conns_.size() >= options_.max_connections) {
      if (injected.ok()) {
        FREEWAY_LOG(kWarning) << "connection limit ("
                          << options_.max_connections << ") reached";
      }
      net::CloseFd(fd);
      if (metrics_.closed != nullptr) metrics_.closed->Inc();
      continue;
    }
    if (!net::SetNonBlocking(fd, true).ok()) {
      net::CloseFd(fd);
      if (metrics_.closed != nullptr) metrics_.closed->Inc();
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conns_.emplace(fd, std::move(conn));
    if (metrics_.active != nullptr) metrics_.active->Inc();
  }
}

void StreamServer::HandleReadable(int fd) {
  char chunk[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      ProcessBuffered(fd, chunk, static_cast<size_t>(n));
      if (conns_.find(fd) == conns_.end()) return;  // Closed while parsing.
      continue;
    }
    if (n == 0) {
      CloseConnection(fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConnection(fd);
    return;
  }
}

void StreamServer::ProcessBuffered(int fd, const char* data, size_t size) {
  Connection& conn = *conns_.at(fd);
  if (!conn.protocol_decided) {
    conn.http_buf.insert(conn.http_buf.end(), data, data + size);
    if (conn.http_buf.size() < 4) return;
    conn.protocol_decided = true;
    conn.http = StartsWithGet(conn.http_buf);
    if (!conn.http) {
      conn.decoder.Feed(conn.http_buf.data(), conn.http_buf.size());
      conn.http_buf.clear();
      conn.http_buf.shrink_to_fit();
      ProcessFrames(fd);
    } else {
      HandleHttp(fd);
    }
    return;
  }
  if (conn.http) {
    conn.http_buf.insert(conn.http_buf.end(), data, data + size);
    HandleHttp(fd);
  } else {
    conn.decoder.Feed(data, size);
    ProcessFrames(fd);
  }
}

void StreamServer::ProcessFrames(int fd) {
  while (true) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Result<Frame> frame = it->second->decoder.Next();
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kNotFound) return;
      // Corrupt stream: framing is unrecoverable, drop the connection.
      if (metrics_.decode_errors != nullptr) metrics_.decode_errors->Inc();
      FREEWAY_LOG(kWarning) << "closing connection " << fd << ": "
                        << frame.status();
      CloseConnection(fd);
      return;
    }
    // Injected network failure, checked per decoded frame rather than per
    // readable event: the recv loop above chases fast loopback peers past
    // EAGAIN, so read-event counts are timing-dependent while frame counts
    // are exact. The connection dies with this frame parsed but not yet
    // dispatched — exactly as if the peer's packets stopped arriving.
    if (!failpoint::Check("net.read").ok()) {
      CloseConnection(fd);
      return;
    }
    if (metrics_.frames_in != nullptr) {
      metrics_.frames_in->Inc();
      metrics_.frame_bytes->Observe(
          static_cast<double>(kFrameHeaderBytes + frame->payload.size()));
    }
    HandleFrame(fd, *frame);
  }
}

void StreamServer::HandleFrame(int fd, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kSubmit:
      HandleSubmit(fd, frame);
      return;
    case FrameType::kStatsRequest:
      QueueFrame(fd, EncodeStats(runtime_->Snapshot().ToJson()));
      return;
    case FrameType::kShutdown: {
      QueueFrame(fd, EncodeAck({0, 0}));
      if (metrics_.acks != nullptr) metrics_.acks->Inc();
      stop_requested_.store(true, std::memory_order_release);
      return;
    }
    default: {
      // Clients must not send server-to-client frame types.
      ErrorMessage error;
      error.code = StatusCode::kInvalidArgument;
      error.message = std::string("unexpected frame type ") +
                      FrameTypeName(frame.type);
      if (metrics_.errors_sent != nullptr) metrics_.errors_sent->Inc();
      QueueFrame(fd, EncodeError(error));
      return;
    }
  }
}

void StreamServer::HandleSubmit(int fd, const Frame& frame) {
  if (metrics_.submits != nullptr) metrics_.submits->Inc();
  Result<SubmitMessage> message = DecodeSubmit(frame);
  if (!message.ok()) {
    // The frame passed CRC but its payload is malformed — a client bug,
    // not line noise. Report it on the connection and keep serving.
    if (metrics_.decode_errors != nullptr) metrics_.decode_errors->Inc();
    ErrorMessage error;
    error.code = message.status().code();
    error.message = message.status().message();
    if (metrics_.errors_sent != nullptr) metrics_.errors_sent->Inc();
    QueueFrame(fd, EncodeError(error));
    return;
  }
  const uint64_t stream_id = message->stream_id;
  const int64_t batch_index = message->batch.index;
  const bool unlabeled = !message->batch.labeled();
  routes_[stream_id] = fd;
  Status admitted =
      runtime_->TrySubmit(stream_id, std::move(message->batch));
  if (admitted.ok()) {
    if (unlabeled && metrics_.request_seconds != nullptr) {
      pending_latency_[{stream_id, batch_index}] =
          std::chrono::steady_clock::now();
    }
    if (metrics_.acks != nullptr) metrics_.acks->Inc();
    QueueFrame(fd, EncodeAck({stream_id, batch_index}));
    return;
  }
  if (admitted.code() == StatusCode::kUnavailable) {
    // Admission control: the shard queue is full and the loop must not
    // block — reply OVERLOAD so backpressure propagates to the producer.
    if (metrics_.overloads != nullptr) metrics_.overloads->Inc();
    OverloadMessage overload;
    overload.stream_id = stream_id;
    overload.batch_index = batch_index;
    overload.retry_after_micros = options_.overload_retry_micros;
    QueueFrame(fd, EncodeOverload(overload));
    return;
  }
  ErrorMessage error;
  error.stream_id = stream_id;
  error.batch_index = batch_index;
  error.code = admitted.code();
  error.message = admitted.message();
  if (metrics_.errors_sent != nullptr) metrics_.errors_sent->Inc();
  QueueFrame(fd, EncodeError(error));
}

void StreamServer::HandleHttp(int fd) {
  Connection& conn = *conns_.at(fd);
  const std::string request(conn.http_buf.begin(), conn.http_buf.end());
  if (request.find("\r\n\r\n") == std::string::npos) {
    if (conn.http_buf.size() > kMaxHttpRequest) CloseConnection(fd);
    return;  // Headers not complete yet.
  }
  if (metrics_.http_requests != nullptr) metrics_.http_requests->Inc();
  const bool metrics_path = request.rfind("GET /metrics", 0) == 0;
  std::string body;
  std::string status_line;
  if (metrics_path && options_.metrics != nullptr) {
    body = options_.metrics->ToPrometheusText();
    status_line = "HTTP/1.1 200 OK";
  } else {
    body = "not found\n";
    status_line = "HTTP/1.1 404 Not Found";
  }
  std::string response = status_line +
                         "\r\nContent-Type: text/plain; version=0.0.4"
                         "\r\nConnection: close"
                         "\r\nContent-Length: " +
                         std::to_string(body.size()) + "\r\n\r\n" + body;
  conn.close_after_flush = true;
  QueueFrame(fd, std::vector<char>(response.begin(), response.end()));
}

void StreamServer::QueueFrame(int fd, std::vector<char> encoded) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  if (!conn.http && metrics_.frames_out != nullptr) {
    metrics_.frames_out->Inc();
    metrics_.frame_bytes->Observe(static_cast<double>(encoded.size()));
  }
  conn.outbuf.insert(conn.outbuf.end(), encoded.begin(), encoded.end());
  FlushWrites(fd);
}

void StreamServer::FlushWrites(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  Status injected = failpoint::Check("net.write");
  if (!injected.ok()) {
    CloseConnection(fd);
    return;
  }
  while (conn.out_pos < conn.outbuf.size()) {
    const ssize_t n = ::send(fd, conn.outbuf.data() + conn.out_pos,
                             conn.outbuf.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_pos += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // POLLOUT resumes.
    if (errno == EINTR) continue;
    CloseConnection(fd);
    return;
  }
  conn.outbuf.clear();
  conn.out_pos = 0;
  if (conn.close_after_flush) CloseConnection(fd);
}

void StreamServer::CloseConnection(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  if (!conn.http && conn.decoder.buffered() > 0) {
    // The peer vanished mid-frame; the partial bytes are discarded (the
    // client re-sends unacknowledged batches on its new connection).
    if (metrics_.torn_frames != nullptr) metrics_.torn_frames->Inc();
  }
  net::CloseFd(fd);
  conns_.erase(it);
  if (metrics_.closed != nullptr) metrics_.closed->Inc();
  if (metrics_.active != nullptr) metrics_.active->Dec();
}

void StreamServer::DrainOutbox() {
  std::vector<StreamResult> results;
  {
    std::lock_guard<std::mutex> lock(outbox_mutex_);
    results.swap(outbox_);
  }
  for (StreamResult& result : results) {
    auto route = routes_.find(result.stream_id);
    if (route == routes_.end() || conns_.find(route->second) == conns_.end()) {
      if (metrics_.results_dropped != nullptr) {
        metrics_.results_dropped->Inc();
      }
      continue;
    }
    if (metrics_.request_seconds != nullptr) {
      auto pending =
          pending_latency_.find({result.stream_id, result.batch_index});
      if (pending != pending_latency_.end()) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - pending->second;
        metrics_.request_seconds->Observe(elapsed.count());
        pending_latency_.erase(pending);
      }
    }
    if (metrics_.results != nullptr) metrics_.results->Inc();
    QueueFrame(route->second, EncodeResult(result));
  }
}

void StreamServer::GracefulStop() {
  // 1. Stop accepting.
  net::CloseFd(listen_fd_);
  listen_fd_ = -1;
  // 2. Quiesce the runtime: everything admitted is processed and its
  // results land in the outbox (drain threads are still allowed to wake
  // the now-defunct pipe; that is harmless).
  runtime_->Shutdown();
  DrainOutbox();
  // 3. Best-effort flush of pending replies within the budget.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.shutdown_flush_millis);
  while (std::chrono::steady_clock::now() < deadline) {
    std::vector<pollfd> pollfds;
    std::vector<int> fds;
    for (const auto& [fd, conn] : conns_) {
      if (conn->out_pos < conn->outbuf.size()) {
        pollfds.push_back({fd, POLLOUT, 0});
        fds.push_back(fd);
      }
    }
    if (pollfds.empty()) break;
    const int ready = ::poll(pollfds.data(), pollfds.size(), 50);
    if (ready < 0 && errno != EINTR) break;
    for (size_t i = 0; i < fds.size(); ++i) {
      if ((pollfds[i].revents & (POLLOUT | POLLHUP | POLLERR)) != 0) {
        FlushWrites(fds[i]);
      }
    }
  }
  // 4. Tear down every connection; the wake pipe stays open until the
  // destructor (late wakeups must never hit a closed/reused fd).
  while (!conns_.empty()) CloseConnection(conns_.begin()->first);
  running_.store(false, std::memory_order_release);
}

}  // namespace freeway
