#include "net/server.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.h"
#include "fault/failpoint.h"
#include "net/socket_util.h"

namespace freeway {

namespace {

constexpr size_t kReadChunk = 64 * 1024;
/// An HTTP request line + headers larger than this is not a scraper.
constexpr size_t kMaxHttpRequest = 8 * 1024;
/// Sanity cap on FREEWAY_NET_WORKERS / ServerOptions::num_workers.
constexpr size_t kMaxWorkers = 256;

bool StartsWithGet(const std::vector<char>& buf) {
  return buf.size() >= 4 && std::memcmp(buf.data(), "GET ", 4) == 0;
}

/// Worker-thread count: explicit option, else FREEWAY_NET_WORKERS, else 1.
size_t ResolveWorkerCount(size_t option_value) {
  size_t workers = option_value;
  if (workers == 0) {
    if (const char* env = std::getenv("FREEWAY_NET_WORKERS")) {
      const long parsed = std::atol(env);
      if (parsed >= 1) {
        workers = static_cast<size_t>(parsed);
      } else {
        FREEWAY_LOG(kWarning) << "ignoring FREEWAY_NET_WORKERS='" << env
                              << "' (want a positive integer)";
      }
    }
  }
  if (workers == 0) workers = 1;
  if (workers > kMaxWorkers) {
    FREEWAY_LOG(kWarning) << "clamping server workers from " << workers
                          << " to " << kMaxWorkers;
    workers = kMaxWorkers;
  }
  return workers;
}

}  // namespace

StreamServer::StreamServer(const Model& prototype, ServerOptions options)
    : options_(std::move(options)) {
  if (options_.runtime.metrics == nullptr) {
    options_.runtime.metrics = options_.metrics;
  }
  if (options_.metrics != nullptr) {
    MetricsRegistry* registry = options_.metrics;
    metrics_.accepted = registry->GetCounter(
        "freeway_net_connections_total{event=\"accepted\"}");
    metrics_.closed = registry->GetCounter(
        "freeway_net_connections_total{event=\"closed\"}");
    metrics_.active = registry->GetGauge("freeway_net_active_connections");
    metrics_.frames_in =
        registry->GetCounter("freeway_net_frames_total{dir=\"in\"}");
    metrics_.frames_out =
        registry->GetCounter("freeway_net_frames_total{dir=\"out\"}");
    metrics_.submits = registry->GetCounter("freeway_net_submits_total");
    metrics_.acks = registry->GetCounter("freeway_net_acks_total");
    metrics_.results = registry->GetCounter("freeway_net_results_total");
    metrics_.overloads = registry->GetCounter("freeway_net_overloads_total");
    metrics_.errors_sent = registry->GetCounter("freeway_net_errors_total");
    metrics_.decode_errors =
        registry->GetCounter("freeway_net_decode_errors_total");
    metrics_.duplicates =
        registry->GetCounter("freeway_net_duplicates_total");
    metrics_.ingest_log_errors =
        registry->GetCounter("freeway_net_ingest_log_errors_total");
    metrics_.not_leader =
        registry->GetCounter("freeway_net_not_leader_total");
    metrics_.torn_frames =
        registry->GetCounter("freeway_net_torn_frames_total");
    metrics_.results_dropped =
        registry->GetCounter("freeway_net_results_dropped_total");
    metrics_.http_requests =
        registry->GetCounter("freeway_net_http_requests_total");
    metrics_.frame_bytes = registry->GetHistogram(
        "freeway_net_frame_bytes", Histogram::DefaultSizeBounds());
    metrics_.request_seconds =
        registry->GetHistogram("freeway_net_request_seconds");
  }
  // Chain onto any user checkpoint hook: shard checkpoints are what anchor
  // steady-state ingest log truncation. Installed before the runtime is
  // constructed because the runtime copies its options; the handler guards
  // against firing before the coverage vectors below are sized (the
  // runtime's constructor seeds initial checkpoints).
  auto user_on_checkpoint = options_.runtime.fault.on_checkpoint;
  options_.runtime.fault.on_checkpoint =
      [this, user_on_checkpoint](size_t shard, uint64_t consumed) {
        if (user_on_checkpoint) user_on_checkpoint(shard, consumed);
        OnShardCheckpoint(shard, consumed);
      };
  runtime_ = std::make_unique<StreamRuntime>(
      prototype, options_.runtime,
      [this](const StreamResult& result) { OnResult(result); });
  coverage_enabled_ =
      options_.ingest.enabled && options_.runtime.fault.enabled;
  {
    std::lock_guard<std::recursive_mutex> lock(coverage_mutex_);
    const size_t shards = runtime_->num_shards();
    shard_outstanding_.resize(shards);
    shard_admitted_.assign(shards, 0);
    shard_consumed_.assign(shards, 0);
  }
}

StreamServer::~StreamServer() {
  Stop();
  // The wake pipes outlive the loops so that late WakeWorker() calls
  // (result callbacks racing a graceful stop, Stop() itself) always hit a
  // valid fd; with every loop joined it is finally safe to close them.
  for (auto& worker : workers_) {
    net::CloseFd(worker->wake_read_fd);
    net::CloseFd(worker->wake_write_fd);
    worker->wake_read_fd = -1;
    worker->wake_write_fd = -1;
  }
}

Status StreamServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_) return Status::FailedPrecondition("server already started");
  if (stop_requested_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server is stopped");
  }
  const size_t num_workers = ResolveWorkerCount(options_.num_workers);
  if (options_.replication.enabled && !options_.ingest.enabled) {
    return Status::InvalidArgument(
        "replication requires ingest.enabled: the replicated state machine "
        "is the ingest log");
  }

  // Durable ingest comes up before any socket exists: opening the log
  // replays it into the dedup index, so the very first SUBMIT already sees
  // the pre-restart watermarks. A log that cannot open fails Start —
  // serving without the promised durability would be silent data loss.
  if (options_.ingest.enabled) {
    IngestLogOptions log_options;
    log_options.directory = options_.ingest.log_dir;
    log_options.segment_max_bytes = options_.ingest.segment_max_bytes;
    log_options.fsync = options_.ingest.fsync;
    log_options.metrics = options_.metrics;
    ingest_log_ = std::make_unique<IngestLog>(log_options);
    Status opened = ingest_log_->Open(&dedup_);
    if (!opened.ok()) {
      ingest_log_.reset();
      return opened;
    }
  }

  // Listener set-up. With several workers the first choice is SO_REUSEPORT
  // sharding: every worker binds its own listener on the shared port and
  // the kernel spreads incoming connections across them. Where the kernel
  // refuses (NotImplemented), each worker instead polls a dup of one
  // listener and accept() arbitrates — no sharding, but identical
  // semantics.
  std::vector<int> listen_fds;
  auto cleanup = [&listen_fds] {
    for (int fd : listen_fds) net::CloseFd(fd);
  };
  reuseport_sharding_ = num_workers > 1;
  Result<int> first = net::CreateListenSocket(
      options_.bind_address, options_.port, options_.listen_backlog,
      reuseport_sharding_);
  if (!first.ok() && reuseport_sharding_ &&
      first.status().code() == StatusCode::kNotImplemented) {
    reuseport_sharding_ = false;
    first = net::CreateListenSocket(options_.bind_address, options_.port,
                                    options_.listen_backlog, false);
  }
  RETURN_IF_ERROR(first.status());
  listen_fds.push_back(*first);
  Result<uint16_t> port = net::LocalPort(listen_fds[0]);
  if (!port.ok()) {
    cleanup();
    return port.status();
  }
  port_ = *port;
  for (size_t i = 1; i < num_workers; ++i) {
    Result<int> fd =
        reuseport_sharding_
            ? net::CreateListenSocket(options_.bind_address, port_,
                                      options_.listen_backlog, true)
            : net::DuplicateSocket(listen_fds[0]);
    if (!fd.ok()) {
      cleanup();
      return fd.status();
    }
    listen_fds.push_back(*fd);
  }

  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = i;
    worker->listen_fd = listen_fds[i];
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      Status status =
          Status::IoError(std::string("pipe: ") + std::strerror(errno));
      cleanup();
      for (auto& w : workers_) {
        net::CloseFd(w->wake_read_fd);
        net::CloseFd(w->wake_write_fd);
      }
      workers_.clear();
      return status;
    }
    worker->wake_read_fd = pipe_fds[0];
    worker->wake_write_fd = pipe_fds[1];
    net::SetNonBlocking(worker->wake_read_fd, true).CheckOk();
    net::SetNonBlocking(worker->wake_write_fd, true).CheckOk();
    if (options_.metrics != nullptr) {
      const std::string label = "{worker=\"" + std::to_string(i) + "\"}";
      worker->connections = options_.metrics->GetCounter(
          "freeway_net_worker_connections_total" + label);
      worker->frames = options_.metrics->GetCounter(
          "freeway_net_worker_frames_total" + label);
      worker->loop_iterations = options_.metrics->GetCounter(
          "freeway_net_worker_loop_iterations_total" + label);
    }
    workers_.push_back(std::move(worker));
  }

  // Consensus comes up last among the fallible steps (listeners are bound,
  // so peers dialing this node connect and queue in the backlog until the
  // worker threads start below). Passing the recovered IngestLog length as
  // the applied count is the restart exactly-once contract: in replicated
  // operation every kBatch apply appends exactly one record and reverts
  // never happen, so last_lsn() counts precisely the batch commands this
  // node already applied.
  if (options_.replication.enabled) {
    ReplicationOptions replication = options_.replication;
    if (replication.metrics == nullptr) replication.metrics = options_.metrics;
    replicator_ = std::make_unique<Replicator>(
        replication,
        [this](const ReplicatedCommand& command) { ApplyReplicated(command); },
        [this](const Replicator::AckToken& token) { DeliverAck(token); });
    Status consensus = replicator_->Start(ingest_log_->last_lsn());
    if (!consensus.ok()) {
      replicator_.reset();
      cleanup();
      for (auto& w : workers_) {
        net::CloseFd(w->wake_read_fd);
        net::CloseFd(w->wake_write_fd);
      }
      workers_.clear();
      ingest_log_.reset();
      return consensus;
    }
  }

  started_ = true;
  running_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { Loop(*w); });
  }
  return Status::OK();
}

void StreamServer::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  stop_requested_.store(true, std::memory_order_release);
  if (!started_) {
    // Never started: still quiesce the runtime so queued batches (from
    // direct runtime()->Submit use in tests) are processed.
    runtime_->Shutdown();
    return;
  }
  // Consensus stops first: the applier thread finishes its in-flight apply
  // (the runtime's drains are still live to free queue space for it) and no
  // new entries commit while the workers wind down.
  if (replicator_ != nullptr) replicator_->Stop();
  WakeAllWorkers();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void StreamServer::Wait() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void StreamServer::RouteStreamTo(uint64_t stream_id, size_t worker_index) {
  RouteShard& shard = route_table_[stream_id % kRouteShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.worker_of[stream_id] = worker_index;
}

void StreamServer::OnResult(const StreamResult& result) {
  size_t worker_index = 0;
  bool routed = false;
  {
    RouteShard& shard = route_table_[result.stream_id % kRouteShards];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.worker_of.find(result.stream_id);
    if (it != shard.worker_of.end()) {
      worker_index = it->second;
      routed = true;
    }
  }
  if (!routed || worker_index >= workers_.size()) {
    // No worker ever saw this stream (direct runtime()->Submit use) or the
    // server never started; there is no connection to write to.
    if (metrics_.results_dropped != nullptr) metrics_.results_dropped->Inc();
    return;
  }
  Worker& w = *workers_[worker_index];
  {
    std::lock_guard<std::mutex> lock(w.outbox_mutex);
    w.outbox.push_back(result);
  }
  WakeWorker(w);
}

void StreamServer::WakeWorker(Worker& w) {
  if (w.wake_write_fd < 0) return;
  const char byte = 1;
  // Non-blocking: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t ignored = ::write(w.wake_write_fd, &byte, 1);
}

void StreamServer::WakeAllWorkers() {
  for (auto& worker : workers_) WakeWorker(*worker);
}

void StreamServer::Loop(Worker& w) {
  std::vector<pollfd> pollfds;
  std::vector<int> conn_fds;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (w.loop_iterations != nullptr) w.loop_iterations->Inc();
    pollfds.clear();
    conn_fds.clear();
    pollfds.push_back({w.listen_fd, POLLIN, 0});
    pollfds.push_back({w.wake_read_fd, POLLIN, 0});
    for (const auto& [fd, conn] : w.conns) {
      short events = POLLIN;
      if (conn->out_pos < conn->outbuf.size()) events |= POLLOUT;
      pollfds.push_back({fd, events, 0});
      conn_fds.push_back(fd);
    }
    const int ready =
        ::poll(pollfds.data(), pollfds.size(), options_.poll_timeout_millis);
    if (ready < 0 && errno != EINTR) {
      FREEWAY_LOG(kWarning) << "server poll failed: " << std::strerror(errno);
      break;
    }
    if (stop_requested_.load(std::memory_order_acquire)) break;
    if ((pollfds[1].revents & POLLIN) != 0) {
      char drain[256];
      while (::read(w.wake_read_fd, drain, sizeof(drain)) > 0) {
      }
    }
    DrainOutbox(w);
    if (w.index == 0 &&
        (ingest_log_ != nullptr || replicator_ != nullptr)) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_maintenance_ >=
          std::chrono::milliseconds(options_.maintenance_interval_millis)) {
        last_maintenance_ = now;
        MaintenanceSweep();
      }
    }
    if ((pollfds[0].revents & POLLIN) != 0) AcceptPending(w);
    for (size_t i = 0; i < conn_fds.size(); ++i) {
      const int fd = conn_fds[i];
      const short revents = pollfds[i + 2].revents;
      if (w.conns.find(fd) == w.conns.end()) continue;  // Closed this round.
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) HandleReadable(w, fd);
      if (w.conns.find(fd) == w.conns.end()) continue;
      if ((revents & POLLOUT) != 0) FlushWrites(w, fd);
    }
  }
  GracefulStop(w);
}

void StreamServer::AcceptPending(Worker& w) {
  while (true) {
    const int fd = ::accept(w.listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      FREEWAY_LOG(kWarning) << "accept failed: " << std::strerror(errno);
      return;
    }
    if (metrics_.accepted != nullptr) metrics_.accepted->Inc();
    if (w.connections != nullptr) w.connections->Inc();
    Status injected = failpoint::Check("net.accept");
    if (!injected.ok() ||
        active_connections_.load(std::memory_order_acquire) >=
            options_.max_connections) {
      if (injected.ok()) {
        FREEWAY_LOG(kWarning) << "connection limit ("
                          << options_.max_connections << ") reached";
      }
      net::CloseFd(fd);
      if (metrics_.closed != nullptr) metrics_.closed->Inc();
      continue;
    }
    if (!net::SetNonBlocking(fd, true).ok()) {
      net::CloseFd(fd);
      if (metrics_.closed != nullptr) metrics_.closed->Inc();
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = w.next_conn_id++;
    w.fd_by_conn_id[conn->id] = fd;
    w.conns.emplace(fd, std::move(conn));
    active_connections_.fetch_add(1, std::memory_order_acq_rel);
    if (metrics_.active != nullptr) metrics_.active->Inc();
  }
}

void StreamServer::HandleReadable(Worker& w, int fd) {
  char chunk[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      ProcessBuffered(w, fd, chunk, static_cast<size_t>(n));
      if (w.conns.find(fd) == w.conns.end()) return;  // Closed while parsing.
      continue;
    }
    if (n == 0) {
      CloseConnection(w, fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConnection(w, fd);
    return;
  }
}

void StreamServer::ProcessBuffered(Worker& w, int fd, const char* data,
                                   size_t size) {
  Connection& conn = *w.conns.at(fd);
  if (!conn.protocol_decided) {
    conn.http_buf.insert(conn.http_buf.end(), data, data + size);
    if (conn.http_buf.size() < 4) return;
    conn.protocol_decided = true;
    conn.http = StartsWithGet(conn.http_buf);
    if (!conn.http) {
      conn.decoder.Feed(conn.http_buf.data(), conn.http_buf.size());
      conn.http_buf.clear();
      conn.http_buf.shrink_to_fit();
      ProcessFrames(w, fd);
    } else {
      HandleHttp(w, fd);
    }
    return;
  }
  if (conn.http) {
    conn.http_buf.insert(conn.http_buf.end(), data, data + size);
    HandleHttp(w, fd);
  } else {
    conn.decoder.Feed(data, size);
    ProcessFrames(w, fd);
  }
}

void StreamServer::ProcessFrames(Worker& w, int fd) {
  while (true) {
    auto it = w.conns.find(fd);
    if (it == w.conns.end()) return;
    Result<Frame> frame = it->second->decoder.Next();
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kNotFound) return;
      // Corrupt stream: framing is unrecoverable, drop the connection.
      if (metrics_.decode_errors != nullptr) metrics_.decode_errors->Inc();
      FREEWAY_LOG(kWarning) << "closing connection " << fd << ": "
                        << frame.status();
      CloseConnection(w, fd);
      return;
    }
    // Injected network failure, checked per decoded frame rather than per
    // readable event: the recv loop above chases fast loopback peers past
    // EAGAIN, so read-event counts are timing-dependent while frame counts
    // are exact. The connection dies with this frame parsed but not yet
    // dispatched — exactly as if the peer's packets stopped arriving.
    if (!failpoint::Check("net.read").ok()) {
      CloseConnection(w, fd);
      return;
    }
    if (metrics_.frames_in != nullptr) {
      metrics_.frames_in->Inc();
      metrics_.frame_bytes->Observe(
          static_cast<double>(kFrameHeaderBytes + frame->payload.size()));
    }
    if (w.frames != nullptr) w.frames->Inc();
    HandleFrame(w, fd, *frame);
  }
}

void StreamServer::HandleFrame(Worker& w, int fd, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kSubmit:
      HandleSubmit(w, fd, frame);
      return;
    case FrameType::kStatsRequest:
      QueueFrame(w, fd, EncodeStats(runtime_->Snapshot().ToJson()));
      return;
    case FrameType::kShutdown: {
      QueueFrame(w, fd, EncodeAck({0, 0}));
      if (metrics_.acks != nullptr) metrics_.acks->Inc();
      stop_requested_.store(true, std::memory_order_release);
      WakeAllWorkers();
      return;
    }
    case FrameType::kVoteRequest:
    case FrameType::kVoteResponse:
    case FrameType::kAppendEntries:
    case FrameType::kAppendResponse: {
      // Peer consensus traffic multiplexed onto the client port. Responses
      // travel back over this node's own outbound link to the sender, so
      // nothing is queued on `fd` here.
      if (replicator_ == nullptr) {
        ErrorMessage error;
        error.code = StatusCode::kFailedPrecondition;
        error.message = std::string("replication is not enabled (") +
                        FrameTypeName(frame.type) + ")";
        if (metrics_.errors_sent != nullptr) metrics_.errors_sent->Inc();
        QueueFrame(w, fd, EncodeError(error));
        return;
      }
      Result<RaftMessage> message = DecodeRaftMessage(frame);
      if (!message.ok()) {
        if (metrics_.decode_errors != nullptr) metrics_.decode_errors->Inc();
        FREEWAY_LOG(kWarning) << "closing connection " << fd
                              << ": bad raft frame: " << message.status();
        CloseConnection(w, fd);
        return;
      }
      replicator_->Deliver(*message);
      return;
    }
    default: {
      // Clients must not send server-to-client frame types.
      ErrorMessage error;
      error.code = StatusCode::kInvalidArgument;
      error.message = std::string("unexpected frame type ") +
                      FrameTypeName(frame.type);
      if (metrics_.errors_sent != nullptr) metrics_.errors_sent->Inc();
      QueueFrame(w, fd, EncodeError(error));
      return;
    }
  }
}

void StreamServer::HandleSubmit(Worker& w, int fd, const Frame& frame) {
  if (metrics_.submits != nullptr) metrics_.submits->Inc();
  Result<SubmitMessage> message = DecodeSubmit(frame);
  if (!message.ok()) {
    // The frame passed CRC but its payload is malformed — a client bug,
    // not line noise. Report it on the connection and keep serving.
    if (metrics_.decode_errors != nullptr) metrics_.decode_errors->Inc();
    ErrorMessage error;
    error.code = message.status().code();
    error.message = message.status().message();
    if (metrics_.errors_sent != nullptr) metrics_.errors_sent->Inc();
    QueueFrame(w, fd, EncodeError(error));
    return;
  }
  if (replicator_ != nullptr) {
    HandleSubmitReplicated(w, fd, std::move(*message));
    return;
  }
  const uint64_t stream_id = message->stream_id;
  const int64_t batch_index = message->batch.index;
  const bool unlabeled = !message->batch.labeled();
  // Route publication must precede admission: the drain thread may deliver
  // the result before TrySubmit even returns. It also precedes the dedup
  // check on purpose — a resend arrives on a *new* connection, and results
  // of the originally-admitted batch should follow the client there.
  w.routes[stream_id] = fd;
  RouteStreamTo(stream_id, w.index);

  // Exactly-once admission. A tracked sequence at or below the client's
  // watermark was already admitted (its ACK died with the old connection):
  // answer it again, touch nothing. Safe without further locking because
  // one client's submits are serial by contract.
  const uint64_t client_id = message->client_id;
  const uint64_t sequence = message->sequence;
  const bool tracked = client_id != 0 && sequence != 0;
  if (tracked && dedup_.IsDuplicate(client_id, sequence)) {
    if (metrics_.duplicates != nullptr) metrics_.duplicates->Inc();
    if (metrics_.acks != nullptr) metrics_.acks->Inc();
    QueueFrame(w, fd, EncodeAck({stream_id, batch_index}));
    return;
  }

  // Log-first: the record must be durable before the watermark advances,
  // else a crash between ACK and append would ack a batch the restarted
  // server never saw. A failed append is reported as ERROR and the client
  // retries against an unadvanced watermark.
  uint64_t lsn = 0;
  if (ingest_log_ != nullptr) {
    IngestRecord record;
    record.client_id = client_id;
    record.sequence = sequence;
    record.stream_id = stream_id;
    record.tenant_id = message->tenant_id;
    record.priority = message->priority;
    record.batch = std::move(message->batch);
    Result<uint64_t> appended = ingest_log_->Append(record);
    message->batch = std::move(record.batch);
    if (!appended.ok()) {
      if (metrics_.ingest_log_errors != nullptr) {
        metrics_.ingest_log_errors->Inc();
      }
      ErrorMessage error;
      error.stream_id = stream_id;
      error.batch_index = batch_index;
      error.code = appended.status().code();
      error.message = appended.status().message();
      if (metrics_.errors_sent != nullptr) metrics_.errors_sent->Inc();
      QueueFrame(w, fd, EncodeError(error));
      return;
    }
    lsn = *appended;
    if (coverage_enabled_) {
      // The LSN exists but its admission outcome doesn't yet: keep the
      // truncation sweep from treating it as checkpoint-covered meanwhile.
      std::lock_guard<std::recursive_mutex> lock(coverage_mutex_);
      unresolved_lsns_.insert(lsn);
    }
  }
  if (tracked) dedup_.Advance(client_id, sequence);

  SubmitContext context;
  context.tenant_id = message->tenant_id;
  context.priority = static_cast<TenantPriority>(message->priority);
  Status admitted;
  if (lsn != 0 && coverage_enabled_) {
    // Admission and its coverage note share the lock so the per-shard
    // ordinal order equals the shard-queue order. TrySubmit never blocks,
    // but on a workerless global pool it drains the shard inline —
    // including a reentrant checkpoint — which is why the mutex is
    // recursive and why the entry pushed below may already be consumed.
    std::lock_guard<std::recursive_mutex> lock(coverage_mutex_);
    admitted = runtime_->TrySubmit(stream_id, std::move(message->batch),
                                   context);
    unresolved_lsns_.erase(lsn);
    highest_noted_lsn_ = std::max(highest_noted_lsn_, lsn);
    if (admitted.ok()) {
      const size_t shard = runtime_->ShardOf(stream_id);
      auto& outstanding = shard_outstanding_[shard];
      outstanding.emplace_back(++shard_admitted_[shard], lsn);
      // Inline-drain case: the batch was processed (and checkpointed)
      // inside TrySubmit, before its entry existed to be popped there.
      while (!outstanding.empty() &&
             outstanding.front().first <= shard_consumed_[shard]) {
        outstanding.pop_front();
      }
    }
  } else {
    admitted =
        runtime_->TrySubmit(stream_id, std::move(message->batch), context);
  }
  if (!admitted.ok()) {
    // The logged record will never be processed: retreat the watermark so
    // the client's retry is not swallowed as a duplicate, and append a
    // revert naming the cancelled LSN so offline replay skips it too.
    if (tracked) dedup_.Revert(client_id, sequence);
    if (lsn != 0) {
      Result<uint64_t> reverted =
          ingest_log_->AppendRevert(lsn, client_id, sequence);
      if (!reverted.ok() && metrics_.ingest_log_errors != nullptr) {
        metrics_.ingest_log_errors->Inc();
      }
      if (coverage_enabled_ && reverted.ok()) {
        // Cancelled pair: both LSNs are covered the moment they exist.
        std::lock_guard<std::recursive_mutex> lock(coverage_mutex_);
        highest_noted_lsn_ = std::max(highest_noted_lsn_, *reverted);
      }
    }
  }
  if (admitted.ok()) {
    if (unlabeled && metrics_.request_seconds != nullptr) {
      w.pending_latency[{stream_id, batch_index}] =
          std::chrono::steady_clock::now();
    }
    if (metrics_.acks != nullptr) metrics_.acks->Inc();
    QueueFrame(w, fd, EncodeAck({stream_id, batch_index}));
    return;
  }
  if (admitted.code() == StatusCode::kUnavailable) {
    // Admission control: the shard queue is full and the loop must not
    // block — reply OVERLOAD so backpressure propagates to the producer.
    if (metrics_.overloads != nullptr) metrics_.overloads->Inc();
    OverloadMessage overload;
    overload.stream_id = stream_id;
    overload.batch_index = batch_index;
    overload.retry_after_micros = options_.overload_retry_micros;
    QueueFrame(w, fd, EncodeOverload(overload));
    return;
  }
  ErrorMessage error;
  error.stream_id = stream_id;
  error.batch_index = batch_index;
  error.code = admitted.code();
  error.message = admitted.message();
  if (metrics_.errors_sent != nullptr) metrics_.errors_sent->Inc();
  QueueFrame(w, fd, EncodeError(error));
}

void StreamServer::HandleHttp(Worker& w, int fd) {
  Connection& conn = *w.conns.at(fd);
  const std::string request(conn.http_buf.begin(), conn.http_buf.end());
  if (request.find("\r\n\r\n") == std::string::npos) {
    if (conn.http_buf.size() > kMaxHttpRequest) CloseConnection(w, fd);
    return;  // Headers not complete yet.
  }
  if (metrics_.http_requests != nullptr) metrics_.http_requests->Inc();
  std::string body;
  std::string status_line;
  std::string content_type = "text/plain; version=0.0.4";
  if (request.rfind("GET /metrics", 0) == 0 && options_.metrics != nullptr) {
    body = options_.metrics->ToPrometheusText();
    status_line = "HTTP/1.1 200 OK";
  } else if (request.rfind("GET /stats", 0) == 0) {
    body = runtime_->Snapshot().ToJson();
    content_type = "application/json";
    status_line = "HTTP/1.1 200 OK";
  } else {
    body = "not found\n";
    status_line = "HTTP/1.1 404 Not Found";
  }
  std::string response = status_line + "\r\nContent-Type: " + content_type +
                         "\r\nConnection: close"
                         "\r\nContent-Length: " +
                         std::to_string(body.size()) + "\r\n\r\n" + body;
  conn.close_after_flush = true;
  QueueFrame(w, fd, std::vector<char>(response.begin(), response.end()));
}

void StreamServer::QueueFrame(Worker& w, int fd, std::vector<char> encoded) {
  auto it = w.conns.find(fd);
  if (it == w.conns.end()) return;
  Connection& conn = *it->second;
  if (!conn.http && metrics_.frames_out != nullptr) {
    metrics_.frames_out->Inc();
    metrics_.frame_bytes->Observe(static_cast<double>(encoded.size()));
  }
  conn.outbuf.insert(conn.outbuf.end(), encoded.begin(), encoded.end());
  FlushWrites(w, fd);
}

void StreamServer::FlushWrites(Worker& w, int fd) {
  auto it = w.conns.find(fd);
  if (it == w.conns.end()) return;
  Connection& conn = *it->second;
  Status injected = failpoint::Check("net.write");
  if (!injected.ok()) {
    CloseConnection(w, fd);
    return;
  }
  while (conn.out_pos < conn.outbuf.size()) {
    const ssize_t n = ::send(fd, conn.outbuf.data() + conn.out_pos,
                             conn.outbuf.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_pos += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // POLLOUT resumes.
    if (errno == EINTR) continue;
    CloseConnection(w, fd);
    return;
  }
  conn.outbuf.clear();
  conn.out_pos = 0;
  if (conn.close_after_flush) CloseConnection(w, fd);
}

void StreamServer::CloseConnection(Worker& w, int fd) {
  auto it = w.conns.find(fd);
  if (it == w.conns.end()) return;
  Connection& conn = *it->second;
  if (!conn.http && conn.decoder.buffered() > 0) {
    // The peer vanished mid-frame; the partial bytes are discarded (the
    // client re-sends unacknowledged batches on its new connection).
    if (metrics_.torn_frames != nullptr) metrics_.torn_frames->Inc();
  }
  w.fd_by_conn_id.erase(conn.id);
  net::CloseFd(fd);
  w.conns.erase(it);
  active_connections_.fetch_sub(1, std::memory_order_acq_rel);
  if (metrics_.closed != nullptr) metrics_.closed->Inc();
  if (metrics_.active != nullptr) metrics_.active->Dec();
}

void StreamServer::DrainOutbox(Worker& w) {
  std::vector<StreamResult> results;
  std::vector<std::pair<uint64_t, std::vector<char>>> frames;
  {
    std::lock_guard<std::mutex> lock(w.outbox_mutex);
    results.swap(w.outbox);
    frames.swap(w.frame_outbox);
  }
  for (auto& [conn_id, encoded] : frames) {
    auto target = w.fd_by_conn_id.find(conn_id);
    if (target == w.fd_by_conn_id.end()) {
      // The connection died while its entry replicated. The client resends
      // on a new connection and the watermark re-ACKs it there.
      if (metrics_.results_dropped != nullptr) metrics_.results_dropped->Inc();
      continue;
    }
    QueueFrame(w, target->second, std::move(encoded));
  }
  for (StreamResult& result : results) {
    auto route = w.routes.find(result.stream_id);
    if (route == w.routes.end() ||
        w.conns.find(route->second) == w.conns.end()) {
      if (metrics_.results_dropped != nullptr) {
        metrics_.results_dropped->Inc();
      }
      continue;
    }
    if (metrics_.request_seconds != nullptr) {
      auto pending =
          w.pending_latency.find({result.stream_id, result.batch_index});
      if (pending != w.pending_latency.end()) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - pending->second;
        metrics_.request_seconds->Observe(elapsed.count());
        w.pending_latency.erase(pending);
      }
    }
    if (metrics_.results != nullptr) metrics_.results->Inc();
    QueueFrame(w, route->second, EncodeResult(result));
  }
}

void StreamServer::HandleSubmitReplicated(Worker& w, int fd,
                                          SubmitMessage message) {
  const uint64_t stream_id = message.stream_id;
  const int64_t batch_index = message.batch.index;
  // Route publication still precedes everything: results (and the deferred
  // ACK, by connection id) follow the client's newest connection.
  w.routes[stream_id] = fd;
  RouteStreamTo(stream_id, w.index);

  auto redirect = [&] {
    NotLeaderMessage reply;
    reply.stream_id = stream_id;
    reply.batch_index = batch_index;
    reply.leader_id = replicator_->leader_id();
    if (reply.leader_id != 0) {
      Result<ReplicationPeer> hint = replicator_->PeerOf(reply.leader_id);
      if (hint.ok()) {
        reply.leader_host = hint->host;
        reply.leader_port = hint->port;
      }
    }
    if (metrics_.not_leader != nullptr) metrics_.not_leader->Inc();
    QueueFrame(w, fd, EncodeNotLeader(reply));
  };
  if (!replicator_->IsLeader()) {
    redirect();
    return;
  }

  // A tracked sequence at or below the watermark was already committed and
  // applied (watermarks only advance at apply, which happens after majority
  // replication): its ACK died with the old connection, so answer again.
  const uint64_t client_id = message.client_id;
  const uint64_t sequence = message.sequence;
  const bool tracked = client_id != 0 && sequence != 0;
  if (tracked && dedup_.IsDuplicate(client_id, sequence)) {
    if (metrics_.duplicates != nullptr) metrics_.duplicates->Inc();
    if (metrics_.acks != nullptr) metrics_.acks->Inc();
    QueueFrame(w, fd, EncodeAck({stream_id, batch_index}));
    return;
  }

  // Admission gate: the propose→apply backlog is the replicated analogue of
  // a full shard queue, so it turns into OVERLOAD at the edge too.
  if (replicator_->PendingLoad() >= options_.replication.max_apply_lag) {
    if (metrics_.overloads != nullptr) metrics_.overloads->Inc();
    OverloadMessage overload;
    overload.stream_id = stream_id;
    overload.batch_index = batch_index;
    overload.retry_after_micros = options_.overload_retry_micros;
    QueueFrame(w, fd, EncodeOverload(overload));
    return;
  }

  IngestRecord record;
  record.client_id = client_id;
  record.sequence = sequence;
  record.stream_id = stream_id;
  record.tenant_id = message.tenant_id;
  record.priority = message.priority;
  record.batch = std::move(message.batch);
  Replicator::AckToken token;
  token.worker_index = w.index;
  token.conn_id = w.conns.at(fd)->id;
  token.stream_id = stream_id;
  token.batch_index = batch_index;
  token.client_id = client_id;
  token.sequence = sequence;
  Status proposed = replicator_->ProposeBatch(record, token);
  if (!proposed.ok()) {
    // Leadership moved between the check above and the propose.
    redirect();
    return;
  }
  // Deferred ACK: nothing is written now. The ack callback fires on the
  // applier thread once the entry is majority-replicated AND applied here,
  // and DeliverAck routes it back to this connection by id.
}

void StreamServer::ApplyReplicated(const ReplicatedCommand& command) {
  switch (command.kind) {
    case CommandKind::kNoop:
      return;
    case CommandKind::kBatch: {
      // The determinism contract: every node applies every committed batch
      // unconditionally, in commit order — log append, watermark advance,
      // runtime enqueue. No admission decision happens here (that was the
      // leader's propose-time gate), so the per-node ingest logs stay
      // bit-identical and reverts never occur in replicated operation.
      uint64_t lsn = 0;
      while (true) {
        Result<uint64_t> appended = ingest_log_->Append(command.record);
        if (appended.ok()) {
          lsn = *appended;
          break;
        }
        if (metrics_.ingest_log_errors != nullptr) {
          metrics_.ingest_log_errors->Inc();
        }
        if (stop_requested_.load(std::memory_order_acquire)) {
          // Dropped on the floor deliberately: the entry stays in the raft
          // log and re-applies on restart (it never reached last_lsn()).
          return;
        }
        FREEWAY_LOG(kWarning)
            << "replicated apply: ingest append failed, retrying: "
            << appended.status();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      if (command.record.client_id != 0 && command.record.sequence != 0) {
        dedup_.Advance(command.record.client_id, command.record.sequence);
      }
      const size_t shard = runtime_->ShardOf(command.record.stream_id);
      if (coverage_enabled_) {
        // Note coverage before the blocking Submit (the single applier
        // thread is the only submitter, so ordinal order still matches
        // queue order) and never hold the mutex across it: drain threads
        // take this mutex in OnShardCheckpoint, and a drain thread blocked
        // here while Submit waits for queue space would deadlock.
        std::lock_guard<std::recursive_mutex> lock(coverage_mutex_);
        shard_outstanding_[shard].emplace_back(++shard_admitted_[shard], lsn);
        highest_noted_lsn_ = std::max(highest_noted_lsn_, lsn);
      }
      SubmitContext context;
      context.tenant_id = command.record.tenant_id;
      context.priority = static_cast<TenantPriority>(command.record.priority);
      Batch batch = command.record.batch;
      Status submitted =
          runtime_->Submit(command.record.stream_id, std::move(batch),
                           context);
      if (!submitted.ok()) {
        // Only reachable when the runtime is shutting down underneath us.
        FREEWAY_LOG(kWarning)
            << "replicated apply: runtime rejected committed batch: "
            << submitted;
      }
      return;
    }
    case CommandKind::kDeadLetter:
      // The replicator already folded it into its cluster-wide DLQ view.
      return;
    case CommandKind::kTruncateMark: {
      // The leader's coverage claim, bounded by what THIS node's
      // checkpoints cover (a lagging follower must not drop history its
      // own runtime hasn't consumed yet).
      const uint64_t effective = std::min(command.truncate_lsn, CoveredLsn());
      if (effective <= truncated_lsn_.load(std::memory_order_acquire)) {
        return;
      }
      Status rotated = ingest_log_->Rotate();
      if (!rotated.ok()) {
        FREEWAY_LOG(kWarning) << "ingest log rotation failed: " << rotated;
        return;
      }
      Status truncated = ingest_log_->TruncateBefore(
          effective, options_.ingest.retention_segments);
      if (!truncated.ok()) {
        FREEWAY_LOG(kWarning) << "ingest log truncation failed: " << truncated;
        return;
      }
      truncated_lsn_.store(effective, std::memory_order_release);
      return;
    }
  }
}

void StreamServer::DeliverAck(const Replicator::AckToken& token) {
  if (token.worker_index >= workers_.size()) return;
  Worker& w = *workers_[token.worker_index];
  {
    std::lock_guard<std::mutex> lock(w.outbox_mutex);
    w.frame_outbox.emplace_back(
        token.conn_id, EncodeAck({token.stream_id, token.batch_index}));
  }
  if (metrics_.acks != nullptr) metrics_.acks->Inc();
  WakeWorker(w);
}

void StreamServer::OnShardCheckpoint(size_t shard, uint64_t consumed) {
  std::lock_guard<std::recursive_mutex> lock(coverage_mutex_);
  if (shard >= shard_outstanding_.size()) return;  // Pre-sizing seed write.
  shard_consumed_[shard] = std::max(shard_consumed_[shard], consumed);
  auto& outstanding = shard_outstanding_[shard];
  while (!outstanding.empty() &&
         outstanding.front().first <= shard_consumed_[shard]) {
    outstanding.pop_front();
  }
}

uint64_t StreamServer::CoveredLsn() {
  std::lock_guard<std::recursive_mutex> lock(coverage_mutex_);
  uint64_t lowest_pending = UINT64_MAX;
  for (const auto& outstanding : shard_outstanding_) {
    if (!outstanding.empty()) {
      lowest_pending = std::min(lowest_pending, outstanding.front().second);
    }
  }
  if (!unresolved_lsns_.empty()) {
    lowest_pending = std::min(lowest_pending, *unresolved_lsns_.begin());
  }
  if (lowest_pending == UINT64_MAX) return highest_noted_lsn_;
  return lowest_pending - 1;
}

void StreamServer::MaintenanceSweep() {
  if (replicator_ != nullptr) {
    if (!replicator_->IsLeader()) return;
    // Quarantined batches become replicated state so the dead-letter queue
    // survives the leader.
    for (DeadLetter& letter : runtime_->TakeDeadLetters()) {
      ReplicatedCommand command;
      command.kind = CommandKind::kDeadLetter;
      command.dead_letter = std::move(letter);
      Status proposed = replicator_->ProposeCommand(command);
      if (!proposed.ok()) {
        FREEWAY_LOG(kWarning) << "dead-letter replication failed: "
                              << proposed;
      }
    }
    // Truncation is itself a replicated command: every node (this one
    // included) rotates + truncates at apply, clamped to its own coverage.
    if (!coverage_enabled_) return;
    const uint64_t anchor = CoveredLsn();
    if (anchor > truncated_lsn_.load(std::memory_order_acquire)) {
      ReplicatedCommand mark;
      mark.kind = CommandKind::kTruncateMark;
      mark.truncate_lsn = anchor;
      Status proposed = replicator_->ProposeCommand(mark);
      if (!proposed.ok()) {
        FREEWAY_LOG(kWarning) << "truncate-mark proposal failed: " << proposed;
      }
    }
    return;
  }
  if (ingest_log_ == nullptr || !coverage_enabled_) return;
  const uint64_t anchor = CoveredLsn();
  if (anchor <= truncated_lsn_.load(std::memory_order_acquire)) return;
  Status rotated = ingest_log_->Rotate();
  if (!rotated.ok()) {
    FREEWAY_LOG(kWarning) << "ingest log rotation failed: " << rotated;
    return;
  }
  Status truncated = ingest_log_->TruncateBefore(
      anchor, options_.ingest.retention_segments);
  if (!truncated.ok()) {
    FREEWAY_LOG(kWarning) << "ingest log truncation failed: " << truncated;
    return;
  }
  truncated_lsn_.store(anchor, std::memory_order_release);
}

void StreamServer::GracefulStop(Worker& w) {
  // 1. Every worker stops accepting. With dup-listener sharding the
  // underlying socket only stops listening once the last dup closes, which
  // is exactly the barrier below.
  net::CloseFd(w.listen_fd);
  w.listen_fd = -1;
  accept_closed_.fetch_add(1, std::memory_order_acq_rel);

  if (w.index == 0) {
    // 2. Worker 0 coordinates: wait until no worker can accept, then
    // quiesce the runtime. Everything admitted is processed and its
    // results land in the per-worker outboxes; the other workers keep
    // servicing their outboxes and sockets below while this blocks.
    while (accept_closed_.load(std::memory_order_acquire) <
           workers_.size()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Replication must quiesce before the runtime: the applier may be
    // blocked in a Submit that only completes while drains are running.
    // Idempotent with the owner's Stop() (a SHUTDOWN frame reaches here
    // without the owner ever calling Stop()).
    if (replicator_ != nullptr) replicator_->Stop();
    runtime_->Shutdown();
    if (ingest_log_ != nullptr && options_.ingest.truncate_at_stop) {
      // Everything admitted is now processed (and checkpointed when fault
      // tolerance is on). Rotate so the fresh head segment snapshots the
      // final watermarks, then drop the sealed history behind the anchor.
      const uint64_t anchor = ingest_log_->last_lsn();
      Status rotated = ingest_log_->Rotate();
      if (rotated.ok()) {
        Status truncated = ingest_log_->TruncateBefore(anchor);
        if (!truncated.ok()) {
          FREEWAY_LOG(kWarning)
              << "ingest log truncation failed: " << truncated;
        }
      } else {
        FREEWAY_LOG(kWarning) << "ingest log rotation failed: " << rotated;
      }
    }
    drained_.store(true, std::memory_order_release);
    WakeAllWorkers();
  } else {
    // 2'. Stay responsive (deliver results, flush replies) until worker 0
    // reports the runtime fully drained.
    std::vector<pollfd> pollfds;
    std::vector<int> fds;
    while (!drained_.load(std::memory_order_acquire)) {
      pollfds.clear();
      fds.clear();
      pollfds.push_back({w.wake_read_fd, POLLIN, 0});
      for (const auto& [fd, conn] : w.conns) {
        if (conn->out_pos < conn->outbuf.size()) {
          pollfds.push_back({fd, POLLOUT, 0});
          fds.push_back(fd);
        }
      }
      const int ready = ::poll(pollfds.data(), pollfds.size(), 20);
      if (ready < 0 && errno != EINTR) break;
      if ((pollfds[0].revents & POLLIN) != 0) {
        char drain[256];
        while (::read(w.wake_read_fd, drain, sizeof(drain)) > 0) {
        }
      }
      DrainOutbox(w);
      for (size_t i = 0; i < fds.size(); ++i) {
        if ((pollfds[i + 1].revents & (POLLOUT | POLLHUP | POLLERR)) != 0) {
          FlushWrites(w, fds[i]);
        }
      }
    }
  }

  // 3. Final result delivery + best-effort reply flush, then teardown.
  DrainOutbox(w);
  FlushAndCloseAll(w);
  const size_t exited =
      workers_exited_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (exited == workers_.size()) {
    running_.store(false, std::memory_order_release);
  }
}

void StreamServer::FlushAndCloseAll(Worker& w) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.shutdown_flush_millis);
  while (std::chrono::steady_clock::now() < deadline) {
    std::vector<pollfd> pollfds;
    std::vector<int> fds;
    for (const auto& [fd, conn] : w.conns) {
      if (conn->out_pos < conn->outbuf.size()) {
        pollfds.push_back({fd, POLLOUT, 0});
        fds.push_back(fd);
      }
    }
    if (pollfds.empty()) break;
    const int ready = ::poll(pollfds.data(), pollfds.size(), 50);
    if (ready < 0 && errno != EINTR) break;
    for (size_t i = 0; i < fds.size(); ++i) {
      if ((pollfds[i].revents & (POLLOUT | POLLHUP | POLLERR)) != 0) {
        FlushWrites(w, fds[i]);
      }
    }
  }
  // The wake pipes stay open until the destructor (late wakeups must never
  // hit a closed/reused fd).
  while (!w.conns.empty()) CloseConnection(w, w.conns.begin()->first);
}

}  // namespace freeway
