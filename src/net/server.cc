#include "net/server.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.h"
#include "fault/failpoint.h"
#include "net/socket_util.h"

namespace freeway {

namespace {

constexpr size_t kReadChunk = 64 * 1024;
/// An HTTP request line + headers larger than this is not a scraper.
constexpr size_t kMaxHttpRequest = 8 * 1024;
/// Sanity cap on FREEWAY_NET_WORKERS / ServerOptions::num_workers.
constexpr size_t kMaxWorkers = 256;

bool StartsWithGet(const std::vector<char>& buf) {
  return buf.size() >= 4 && std::memcmp(buf.data(), "GET ", 4) == 0;
}

/// Worker-thread count: explicit option, else FREEWAY_NET_WORKERS, else 1.
size_t ResolveWorkerCount(size_t option_value) {
  size_t workers = option_value;
  if (workers == 0) {
    if (const char* env = std::getenv("FREEWAY_NET_WORKERS")) {
      const long parsed = std::atol(env);
      if (parsed >= 1) {
        workers = static_cast<size_t>(parsed);
      } else {
        FREEWAY_LOG(kWarning) << "ignoring FREEWAY_NET_WORKERS='" << env
                              << "' (want a positive integer)";
      }
    }
  }
  if (workers == 0) workers = 1;
  if (workers > kMaxWorkers) {
    FREEWAY_LOG(kWarning) << "clamping server workers from " << workers
                          << " to " << kMaxWorkers;
    workers = kMaxWorkers;
  }
  return workers;
}

}  // namespace

StreamServer::StreamServer(const Model& prototype, ServerOptions options)
    : options_(std::move(options)) {
  if (options_.runtime.metrics == nullptr) {
    options_.runtime.metrics = options_.metrics;
  }
  if (options_.metrics != nullptr) {
    MetricsRegistry* registry = options_.metrics;
    metrics_.accepted = registry->GetCounter(
        "freeway_net_connections_total{event=\"accepted\"}");
    metrics_.closed = registry->GetCounter(
        "freeway_net_connections_total{event=\"closed\"}");
    metrics_.active = registry->GetGauge("freeway_net_active_connections");
    metrics_.frames_in =
        registry->GetCounter("freeway_net_frames_total{dir=\"in\"}");
    metrics_.frames_out =
        registry->GetCounter("freeway_net_frames_total{dir=\"out\"}");
    metrics_.submits = registry->GetCounter("freeway_net_submits_total");
    metrics_.acks = registry->GetCounter("freeway_net_acks_total");
    metrics_.results = registry->GetCounter("freeway_net_results_total");
    metrics_.overloads = registry->GetCounter("freeway_net_overloads_total");
    metrics_.errors_sent = registry->GetCounter("freeway_net_errors_total");
    metrics_.decode_errors =
        registry->GetCounter("freeway_net_decode_errors_total");
    metrics_.duplicates =
        registry->GetCounter("freeway_net_duplicates_total");
    metrics_.ingest_log_errors =
        registry->GetCounter("freeway_net_ingest_log_errors_total");
    metrics_.torn_frames =
        registry->GetCounter("freeway_net_torn_frames_total");
    metrics_.results_dropped =
        registry->GetCounter("freeway_net_results_dropped_total");
    metrics_.http_requests =
        registry->GetCounter("freeway_net_http_requests_total");
    metrics_.frame_bytes = registry->GetHistogram(
        "freeway_net_frame_bytes", Histogram::DefaultSizeBounds());
    metrics_.request_seconds =
        registry->GetHistogram("freeway_net_request_seconds");
  }
  runtime_ = std::make_unique<StreamRuntime>(
      prototype, options_.runtime,
      [this](const StreamResult& result) { OnResult(result); });
}

StreamServer::~StreamServer() {
  Stop();
  // The wake pipes outlive the loops so that late WakeWorker() calls
  // (result callbacks racing a graceful stop, Stop() itself) always hit a
  // valid fd; with every loop joined it is finally safe to close them.
  for (auto& worker : workers_) {
    net::CloseFd(worker->wake_read_fd);
    net::CloseFd(worker->wake_write_fd);
    worker->wake_read_fd = -1;
    worker->wake_write_fd = -1;
  }
}

Status StreamServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_) return Status::FailedPrecondition("server already started");
  if (stop_requested_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server is stopped");
  }
  const size_t num_workers = ResolveWorkerCount(options_.num_workers);

  // Durable ingest comes up before any socket exists: opening the log
  // replays it into the dedup index, so the very first SUBMIT already sees
  // the pre-restart watermarks. A log that cannot open fails Start —
  // serving without the promised durability would be silent data loss.
  if (options_.ingest.enabled) {
    IngestLogOptions log_options;
    log_options.directory = options_.ingest.log_dir;
    log_options.segment_max_bytes = options_.ingest.segment_max_bytes;
    log_options.fsync = options_.ingest.fsync;
    log_options.metrics = options_.metrics;
    ingest_log_ = std::make_unique<IngestLog>(log_options);
    Status opened = ingest_log_->Open(&dedup_);
    if (!opened.ok()) {
      ingest_log_.reset();
      return opened;
    }
  }

  // Listener set-up. With several workers the first choice is SO_REUSEPORT
  // sharding: every worker binds its own listener on the shared port and
  // the kernel spreads incoming connections across them. Where the kernel
  // refuses (NotImplemented), each worker instead polls a dup of one
  // listener and accept() arbitrates — no sharding, but identical
  // semantics.
  std::vector<int> listen_fds;
  auto cleanup = [&listen_fds] {
    for (int fd : listen_fds) net::CloseFd(fd);
  };
  reuseport_sharding_ = num_workers > 1;
  Result<int> first = net::CreateListenSocket(
      options_.bind_address, options_.port, options_.listen_backlog,
      reuseport_sharding_);
  if (!first.ok() && reuseport_sharding_ &&
      first.status().code() == StatusCode::kNotImplemented) {
    reuseport_sharding_ = false;
    first = net::CreateListenSocket(options_.bind_address, options_.port,
                                    options_.listen_backlog, false);
  }
  RETURN_IF_ERROR(first.status());
  listen_fds.push_back(*first);
  Result<uint16_t> port = net::LocalPort(listen_fds[0]);
  if (!port.ok()) {
    cleanup();
    return port.status();
  }
  port_ = *port;
  for (size_t i = 1; i < num_workers; ++i) {
    Result<int> fd =
        reuseport_sharding_
            ? net::CreateListenSocket(options_.bind_address, port_,
                                      options_.listen_backlog, true)
            : net::DuplicateSocket(listen_fds[0]);
    if (!fd.ok()) {
      cleanup();
      return fd.status();
    }
    listen_fds.push_back(*fd);
  }

  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = i;
    worker->listen_fd = listen_fds[i];
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      Status status =
          Status::IoError(std::string("pipe: ") + std::strerror(errno));
      cleanup();
      for (auto& w : workers_) {
        net::CloseFd(w->wake_read_fd);
        net::CloseFd(w->wake_write_fd);
      }
      workers_.clear();
      return status;
    }
    worker->wake_read_fd = pipe_fds[0];
    worker->wake_write_fd = pipe_fds[1];
    net::SetNonBlocking(worker->wake_read_fd, true).CheckOk();
    net::SetNonBlocking(worker->wake_write_fd, true).CheckOk();
    if (options_.metrics != nullptr) {
      const std::string label = "{worker=\"" + std::to_string(i) + "\"}";
      worker->connections = options_.metrics->GetCounter(
          "freeway_net_worker_connections_total" + label);
      worker->frames = options_.metrics->GetCounter(
          "freeway_net_worker_frames_total" + label);
      worker->loop_iterations = options_.metrics->GetCounter(
          "freeway_net_worker_loop_iterations_total" + label);
    }
    workers_.push_back(std::move(worker));
  }

  started_ = true;
  running_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { Loop(*w); });
  }
  return Status::OK();
}

void StreamServer::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  stop_requested_.store(true, std::memory_order_release);
  if (!started_) {
    // Never started: still quiesce the runtime so queued batches (from
    // direct runtime()->Submit use in tests) are processed.
    runtime_->Shutdown();
    return;
  }
  WakeAllWorkers();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void StreamServer::Wait() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void StreamServer::RouteStreamTo(uint64_t stream_id, size_t worker_index) {
  RouteShard& shard = route_table_[stream_id % kRouteShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.worker_of[stream_id] = worker_index;
}

void StreamServer::OnResult(const StreamResult& result) {
  size_t worker_index = 0;
  bool routed = false;
  {
    RouteShard& shard = route_table_[result.stream_id % kRouteShards];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.worker_of.find(result.stream_id);
    if (it != shard.worker_of.end()) {
      worker_index = it->second;
      routed = true;
    }
  }
  if (!routed || worker_index >= workers_.size()) {
    // No worker ever saw this stream (direct runtime()->Submit use) or the
    // server never started; there is no connection to write to.
    if (metrics_.results_dropped != nullptr) metrics_.results_dropped->Inc();
    return;
  }
  Worker& w = *workers_[worker_index];
  {
    std::lock_guard<std::mutex> lock(w.outbox_mutex);
    w.outbox.push_back(result);
  }
  WakeWorker(w);
}

void StreamServer::WakeWorker(Worker& w) {
  if (w.wake_write_fd < 0) return;
  const char byte = 1;
  // Non-blocking: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t ignored = ::write(w.wake_write_fd, &byte, 1);
}

void StreamServer::WakeAllWorkers() {
  for (auto& worker : workers_) WakeWorker(*worker);
}

void StreamServer::Loop(Worker& w) {
  std::vector<pollfd> pollfds;
  std::vector<int> conn_fds;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (w.loop_iterations != nullptr) w.loop_iterations->Inc();
    pollfds.clear();
    conn_fds.clear();
    pollfds.push_back({w.listen_fd, POLLIN, 0});
    pollfds.push_back({w.wake_read_fd, POLLIN, 0});
    for (const auto& [fd, conn] : w.conns) {
      short events = POLLIN;
      if (conn->out_pos < conn->outbuf.size()) events |= POLLOUT;
      pollfds.push_back({fd, events, 0});
      conn_fds.push_back(fd);
    }
    const int ready =
        ::poll(pollfds.data(), pollfds.size(), options_.poll_timeout_millis);
    if (ready < 0 && errno != EINTR) {
      FREEWAY_LOG(kWarning) << "server poll failed: " << std::strerror(errno);
      break;
    }
    if (stop_requested_.load(std::memory_order_acquire)) break;
    if ((pollfds[1].revents & POLLIN) != 0) {
      char drain[256];
      while (::read(w.wake_read_fd, drain, sizeof(drain)) > 0) {
      }
    }
    DrainOutbox(w);
    if ((pollfds[0].revents & POLLIN) != 0) AcceptPending(w);
    for (size_t i = 0; i < conn_fds.size(); ++i) {
      const int fd = conn_fds[i];
      const short revents = pollfds[i + 2].revents;
      if (w.conns.find(fd) == w.conns.end()) continue;  // Closed this round.
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) HandleReadable(w, fd);
      if (w.conns.find(fd) == w.conns.end()) continue;
      if ((revents & POLLOUT) != 0) FlushWrites(w, fd);
    }
  }
  GracefulStop(w);
}

void StreamServer::AcceptPending(Worker& w) {
  while (true) {
    const int fd = ::accept(w.listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      FREEWAY_LOG(kWarning) << "accept failed: " << std::strerror(errno);
      return;
    }
    if (metrics_.accepted != nullptr) metrics_.accepted->Inc();
    if (w.connections != nullptr) w.connections->Inc();
    Status injected = failpoint::Check("net.accept");
    if (!injected.ok() ||
        active_connections_.load(std::memory_order_acquire) >=
            options_.max_connections) {
      if (injected.ok()) {
        FREEWAY_LOG(kWarning) << "connection limit ("
                          << options_.max_connections << ") reached";
      }
      net::CloseFd(fd);
      if (metrics_.closed != nullptr) metrics_.closed->Inc();
      continue;
    }
    if (!net::SetNonBlocking(fd, true).ok()) {
      net::CloseFd(fd);
      if (metrics_.closed != nullptr) metrics_.closed->Inc();
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    w.conns.emplace(fd, std::move(conn));
    active_connections_.fetch_add(1, std::memory_order_acq_rel);
    if (metrics_.active != nullptr) metrics_.active->Inc();
  }
}

void StreamServer::HandleReadable(Worker& w, int fd) {
  char chunk[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      ProcessBuffered(w, fd, chunk, static_cast<size_t>(n));
      if (w.conns.find(fd) == w.conns.end()) return;  // Closed while parsing.
      continue;
    }
    if (n == 0) {
      CloseConnection(w, fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConnection(w, fd);
    return;
  }
}

void StreamServer::ProcessBuffered(Worker& w, int fd, const char* data,
                                   size_t size) {
  Connection& conn = *w.conns.at(fd);
  if (!conn.protocol_decided) {
    conn.http_buf.insert(conn.http_buf.end(), data, data + size);
    if (conn.http_buf.size() < 4) return;
    conn.protocol_decided = true;
    conn.http = StartsWithGet(conn.http_buf);
    if (!conn.http) {
      conn.decoder.Feed(conn.http_buf.data(), conn.http_buf.size());
      conn.http_buf.clear();
      conn.http_buf.shrink_to_fit();
      ProcessFrames(w, fd);
    } else {
      HandleHttp(w, fd);
    }
    return;
  }
  if (conn.http) {
    conn.http_buf.insert(conn.http_buf.end(), data, data + size);
    HandleHttp(w, fd);
  } else {
    conn.decoder.Feed(data, size);
    ProcessFrames(w, fd);
  }
}

void StreamServer::ProcessFrames(Worker& w, int fd) {
  while (true) {
    auto it = w.conns.find(fd);
    if (it == w.conns.end()) return;
    Result<Frame> frame = it->second->decoder.Next();
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kNotFound) return;
      // Corrupt stream: framing is unrecoverable, drop the connection.
      if (metrics_.decode_errors != nullptr) metrics_.decode_errors->Inc();
      FREEWAY_LOG(kWarning) << "closing connection " << fd << ": "
                        << frame.status();
      CloseConnection(w, fd);
      return;
    }
    // Injected network failure, checked per decoded frame rather than per
    // readable event: the recv loop above chases fast loopback peers past
    // EAGAIN, so read-event counts are timing-dependent while frame counts
    // are exact. The connection dies with this frame parsed but not yet
    // dispatched — exactly as if the peer's packets stopped arriving.
    if (!failpoint::Check("net.read").ok()) {
      CloseConnection(w, fd);
      return;
    }
    if (metrics_.frames_in != nullptr) {
      metrics_.frames_in->Inc();
      metrics_.frame_bytes->Observe(
          static_cast<double>(kFrameHeaderBytes + frame->payload.size()));
    }
    if (w.frames != nullptr) w.frames->Inc();
    HandleFrame(w, fd, *frame);
  }
}

void StreamServer::HandleFrame(Worker& w, int fd, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kSubmit:
      HandleSubmit(w, fd, frame);
      return;
    case FrameType::kStatsRequest:
      QueueFrame(w, fd, EncodeStats(runtime_->Snapshot().ToJson()));
      return;
    case FrameType::kShutdown: {
      QueueFrame(w, fd, EncodeAck({0, 0}));
      if (metrics_.acks != nullptr) metrics_.acks->Inc();
      stop_requested_.store(true, std::memory_order_release);
      WakeAllWorkers();
      return;
    }
    default: {
      // Clients must not send server-to-client frame types.
      ErrorMessage error;
      error.code = StatusCode::kInvalidArgument;
      error.message = std::string("unexpected frame type ") +
                      FrameTypeName(frame.type);
      if (metrics_.errors_sent != nullptr) metrics_.errors_sent->Inc();
      QueueFrame(w, fd, EncodeError(error));
      return;
    }
  }
}

void StreamServer::HandleSubmit(Worker& w, int fd, const Frame& frame) {
  if (metrics_.submits != nullptr) metrics_.submits->Inc();
  Result<SubmitMessage> message = DecodeSubmit(frame);
  if (!message.ok()) {
    // The frame passed CRC but its payload is malformed — a client bug,
    // not line noise. Report it on the connection and keep serving.
    if (metrics_.decode_errors != nullptr) metrics_.decode_errors->Inc();
    ErrorMessage error;
    error.code = message.status().code();
    error.message = message.status().message();
    if (metrics_.errors_sent != nullptr) metrics_.errors_sent->Inc();
    QueueFrame(w, fd, EncodeError(error));
    return;
  }
  const uint64_t stream_id = message->stream_id;
  const int64_t batch_index = message->batch.index;
  const bool unlabeled = !message->batch.labeled();
  // Route publication must precede admission: the drain thread may deliver
  // the result before TrySubmit even returns. It also precedes the dedup
  // check on purpose — a resend arrives on a *new* connection, and results
  // of the originally-admitted batch should follow the client there.
  w.routes[stream_id] = fd;
  RouteStreamTo(stream_id, w.index);

  // Exactly-once admission. A tracked sequence at or below the client's
  // watermark was already admitted (its ACK died with the old connection):
  // answer it again, touch nothing. Safe without further locking because
  // one client's submits are serial by contract.
  const uint64_t client_id = message->client_id;
  const uint64_t sequence = message->sequence;
  const bool tracked = client_id != 0 && sequence != 0;
  if (tracked && dedup_.IsDuplicate(client_id, sequence)) {
    if (metrics_.duplicates != nullptr) metrics_.duplicates->Inc();
    if (metrics_.acks != nullptr) metrics_.acks->Inc();
    QueueFrame(w, fd, EncodeAck({stream_id, batch_index}));
    return;
  }

  // Log-first: the record must be durable before the watermark advances,
  // else a crash between ACK and append would ack a batch the restarted
  // server never saw. A failed append is reported as ERROR and the client
  // retries against an unadvanced watermark.
  uint64_t lsn = 0;
  if (ingest_log_ != nullptr) {
    IngestRecord record;
    record.client_id = client_id;
    record.sequence = sequence;
    record.stream_id = stream_id;
    record.tenant_id = message->tenant_id;
    record.priority = message->priority;
    record.batch = std::move(message->batch);
    Result<uint64_t> appended = ingest_log_->Append(record);
    message->batch = std::move(record.batch);
    if (!appended.ok()) {
      if (metrics_.ingest_log_errors != nullptr) {
        metrics_.ingest_log_errors->Inc();
      }
      ErrorMessage error;
      error.stream_id = stream_id;
      error.batch_index = batch_index;
      error.code = appended.status().code();
      error.message = appended.status().message();
      if (metrics_.errors_sent != nullptr) metrics_.errors_sent->Inc();
      QueueFrame(w, fd, EncodeError(error));
      return;
    }
    lsn = *appended;
  }
  if (tracked) dedup_.Advance(client_id, sequence);

  SubmitContext context;
  context.tenant_id = message->tenant_id;
  context.priority = static_cast<TenantPriority>(message->priority);
  Status admitted =
      runtime_->TrySubmit(stream_id, std::move(message->batch), context);
  if (!admitted.ok()) {
    // The logged record will never be processed: retreat the watermark so
    // the client's retry is not swallowed as a duplicate, and append a
    // revert naming the cancelled LSN so offline replay skips it too.
    if (tracked) dedup_.Revert(client_id, sequence);
    if (lsn != 0) {
      Result<uint64_t> reverted =
          ingest_log_->AppendRevert(lsn, client_id, sequence);
      if (!reverted.ok() && metrics_.ingest_log_errors != nullptr) {
        metrics_.ingest_log_errors->Inc();
      }
    }
  }
  if (admitted.ok()) {
    if (unlabeled && metrics_.request_seconds != nullptr) {
      w.pending_latency[{stream_id, batch_index}] =
          std::chrono::steady_clock::now();
    }
    if (metrics_.acks != nullptr) metrics_.acks->Inc();
    QueueFrame(w, fd, EncodeAck({stream_id, batch_index}));
    return;
  }
  if (admitted.code() == StatusCode::kUnavailable) {
    // Admission control: the shard queue is full and the loop must not
    // block — reply OVERLOAD so backpressure propagates to the producer.
    if (metrics_.overloads != nullptr) metrics_.overloads->Inc();
    OverloadMessage overload;
    overload.stream_id = stream_id;
    overload.batch_index = batch_index;
    overload.retry_after_micros = options_.overload_retry_micros;
    QueueFrame(w, fd, EncodeOverload(overload));
    return;
  }
  ErrorMessage error;
  error.stream_id = stream_id;
  error.batch_index = batch_index;
  error.code = admitted.code();
  error.message = admitted.message();
  if (metrics_.errors_sent != nullptr) metrics_.errors_sent->Inc();
  QueueFrame(w, fd, EncodeError(error));
}

void StreamServer::HandleHttp(Worker& w, int fd) {
  Connection& conn = *w.conns.at(fd);
  const std::string request(conn.http_buf.begin(), conn.http_buf.end());
  if (request.find("\r\n\r\n") == std::string::npos) {
    if (conn.http_buf.size() > kMaxHttpRequest) CloseConnection(w, fd);
    return;  // Headers not complete yet.
  }
  if (metrics_.http_requests != nullptr) metrics_.http_requests->Inc();
  std::string body;
  std::string status_line;
  std::string content_type = "text/plain; version=0.0.4";
  if (request.rfind("GET /metrics", 0) == 0 && options_.metrics != nullptr) {
    body = options_.metrics->ToPrometheusText();
    status_line = "HTTP/1.1 200 OK";
  } else if (request.rfind("GET /stats", 0) == 0) {
    body = runtime_->Snapshot().ToJson();
    content_type = "application/json";
    status_line = "HTTP/1.1 200 OK";
  } else {
    body = "not found\n";
    status_line = "HTTP/1.1 404 Not Found";
  }
  std::string response = status_line + "\r\nContent-Type: " + content_type +
                         "\r\nConnection: close"
                         "\r\nContent-Length: " +
                         std::to_string(body.size()) + "\r\n\r\n" + body;
  conn.close_after_flush = true;
  QueueFrame(w, fd, std::vector<char>(response.begin(), response.end()));
}

void StreamServer::QueueFrame(Worker& w, int fd, std::vector<char> encoded) {
  auto it = w.conns.find(fd);
  if (it == w.conns.end()) return;
  Connection& conn = *it->second;
  if (!conn.http && metrics_.frames_out != nullptr) {
    metrics_.frames_out->Inc();
    metrics_.frame_bytes->Observe(static_cast<double>(encoded.size()));
  }
  conn.outbuf.insert(conn.outbuf.end(), encoded.begin(), encoded.end());
  FlushWrites(w, fd);
}

void StreamServer::FlushWrites(Worker& w, int fd) {
  auto it = w.conns.find(fd);
  if (it == w.conns.end()) return;
  Connection& conn = *it->second;
  Status injected = failpoint::Check("net.write");
  if (!injected.ok()) {
    CloseConnection(w, fd);
    return;
  }
  while (conn.out_pos < conn.outbuf.size()) {
    const ssize_t n = ::send(fd, conn.outbuf.data() + conn.out_pos,
                             conn.outbuf.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_pos += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // POLLOUT resumes.
    if (errno == EINTR) continue;
    CloseConnection(w, fd);
    return;
  }
  conn.outbuf.clear();
  conn.out_pos = 0;
  if (conn.close_after_flush) CloseConnection(w, fd);
}

void StreamServer::CloseConnection(Worker& w, int fd) {
  auto it = w.conns.find(fd);
  if (it == w.conns.end()) return;
  Connection& conn = *it->second;
  if (!conn.http && conn.decoder.buffered() > 0) {
    // The peer vanished mid-frame; the partial bytes are discarded (the
    // client re-sends unacknowledged batches on its new connection).
    if (metrics_.torn_frames != nullptr) metrics_.torn_frames->Inc();
  }
  net::CloseFd(fd);
  w.conns.erase(it);
  active_connections_.fetch_sub(1, std::memory_order_acq_rel);
  if (metrics_.closed != nullptr) metrics_.closed->Inc();
  if (metrics_.active != nullptr) metrics_.active->Dec();
}

void StreamServer::DrainOutbox(Worker& w) {
  std::vector<StreamResult> results;
  {
    std::lock_guard<std::mutex> lock(w.outbox_mutex);
    results.swap(w.outbox);
  }
  for (StreamResult& result : results) {
    auto route = w.routes.find(result.stream_id);
    if (route == w.routes.end() ||
        w.conns.find(route->second) == w.conns.end()) {
      if (metrics_.results_dropped != nullptr) {
        metrics_.results_dropped->Inc();
      }
      continue;
    }
    if (metrics_.request_seconds != nullptr) {
      auto pending =
          w.pending_latency.find({result.stream_id, result.batch_index});
      if (pending != w.pending_latency.end()) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - pending->second;
        metrics_.request_seconds->Observe(elapsed.count());
        w.pending_latency.erase(pending);
      }
    }
    if (metrics_.results != nullptr) metrics_.results->Inc();
    QueueFrame(w, route->second, EncodeResult(result));
  }
}

void StreamServer::GracefulStop(Worker& w) {
  // 1. Every worker stops accepting. With dup-listener sharding the
  // underlying socket only stops listening once the last dup closes, which
  // is exactly the barrier below.
  net::CloseFd(w.listen_fd);
  w.listen_fd = -1;
  accept_closed_.fetch_add(1, std::memory_order_acq_rel);

  if (w.index == 0) {
    // 2. Worker 0 coordinates: wait until no worker can accept, then
    // quiesce the runtime. Everything admitted is processed and its
    // results land in the per-worker outboxes; the other workers keep
    // servicing their outboxes and sockets below while this blocks.
    while (accept_closed_.load(std::memory_order_acquire) <
           workers_.size()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    runtime_->Shutdown();
    if (ingest_log_ != nullptr && options_.ingest.truncate_at_stop) {
      // Everything admitted is now processed (and checkpointed when fault
      // tolerance is on). Rotate so the fresh head segment snapshots the
      // final watermarks, then drop the sealed history behind the anchor.
      const uint64_t anchor = ingest_log_->last_lsn();
      Status rotated = ingest_log_->Rotate();
      if (rotated.ok()) {
        Status truncated = ingest_log_->TruncateBefore(anchor);
        if (!truncated.ok()) {
          FREEWAY_LOG(kWarning)
              << "ingest log truncation failed: " << truncated;
        }
      } else {
        FREEWAY_LOG(kWarning) << "ingest log rotation failed: " << rotated;
      }
    }
    drained_.store(true, std::memory_order_release);
    WakeAllWorkers();
  } else {
    // 2'. Stay responsive (deliver results, flush replies) until worker 0
    // reports the runtime fully drained.
    std::vector<pollfd> pollfds;
    std::vector<int> fds;
    while (!drained_.load(std::memory_order_acquire)) {
      pollfds.clear();
      fds.clear();
      pollfds.push_back({w.wake_read_fd, POLLIN, 0});
      for (const auto& [fd, conn] : w.conns) {
        if (conn->out_pos < conn->outbuf.size()) {
          pollfds.push_back({fd, POLLOUT, 0});
          fds.push_back(fd);
        }
      }
      const int ready = ::poll(pollfds.data(), pollfds.size(), 20);
      if (ready < 0 && errno != EINTR) break;
      if ((pollfds[0].revents & POLLIN) != 0) {
        char drain[256];
        while (::read(w.wake_read_fd, drain, sizeof(drain)) > 0) {
        }
      }
      DrainOutbox(w);
      for (size_t i = 0; i < fds.size(); ++i) {
        if ((pollfds[i + 1].revents & (POLLOUT | POLLHUP | POLLERR)) != 0) {
          FlushWrites(w, fds[i]);
        }
      }
    }
  }

  // 3. Final result delivery + best-effort reply flush, then teardown.
  DrainOutbox(w);
  FlushAndCloseAll(w);
  const size_t exited =
      workers_exited_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (exited == workers_.size()) {
    running_.store(false, std::memory_order_release);
  }
}

void StreamServer::FlushAndCloseAll(Worker& w) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.shutdown_flush_millis);
  while (std::chrono::steady_clock::now() < deadline) {
    std::vector<pollfd> pollfds;
    std::vector<int> fds;
    for (const auto& [fd, conn] : w.conns) {
      if (conn->out_pos < conn->outbuf.size()) {
        pollfds.push_back({fd, POLLOUT, 0});
        fds.push_back(fd);
      }
    }
    if (pollfds.empty()) break;
    const int ready = ::poll(pollfds.data(), pollfds.size(), 50);
    if (ready < 0 && errno != EINTR) break;
    for (size_t i = 0; i < fds.size(); ++i) {
      if ((pollfds[i].revents & (POLLOUT | POLLHUP | POLLERR)) != 0) {
        FlushWrites(w, fds[i]);
      }
    }
  }
  // The wake pipes stay open until the destructor (late wakeups must never
  // hit a closed/reused fd).
  while (!w.conns.empty()) CloseConnection(w, w.conns.begin()->first);
}

}  // namespace freeway
