#include "net/socket_util.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace freeway {
namespace net {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> MakeAddress(const std::string& address, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + address);
  }
  return addr;
}

}  // namespace

Result<int> CreateListenSocket(const std::string& address, uint16_t port,
                               int backlog, bool reuse_port) {
  ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddress(address, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port) {
#ifdef SO_REUSEPORT
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      Status status = Status::NotImplemented(
          std::string("SO_REUSEPORT unsupported: ") + std::strerror(errno));
      CloseFd(fd);
      return status;
    }
#else
    CloseFd(fd);
    return Status::NotImplemented("SO_REUSEPORT not defined on this platform");
#endif
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = ErrnoStatus("bind " + address + ":" +
                                std::to_string(port));
    CloseFd(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    Status status = ErrnoStatus("listen");
    CloseFd(fd);
    return status;
  }
  Status nonblocking = SetNonBlocking(fd, true);
  if (!nonblocking.ok()) {
    CloseFd(fd);
    return nonblocking;
  }
  return fd;
}

Result<int> DuplicateSocket(int fd) {
  const int dup_fd = ::dup(fd);
  if (dup_fd < 0) return ErrnoStatus("dup");
  return dup_fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<int> ConnectSocket(const std::string& host, uint16_t port,
                          int64_t timeout_millis) {
  ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddress(host, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  // Connect non-blocking so the timeout is enforceable, then flip the fd
  // back to blocking for the client's synchronous read/write calls.
  Status status = SetNonBlocking(fd, true);
  if (status.ok()) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      if (errno != EINPROGRESS) {
        status = ErrnoStatus("connect " + host + ":" + std::to_string(port));
      } else {
        pollfd pfd{fd, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_millis));
        if (ready == 0) {
          status = Status::Unavailable("connect timed out after " +
                                       std::to_string(timeout_millis) +
                                       " ms");
        } else if (ready < 0) {
          status = ErrnoStatus("poll");
        } else {
          int error = 0;
          socklen_t len = sizeof(error);
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len);
          if (error != 0) {
            status = Status::IoError("connect " + host + ":" +
                                     std::to_string(port) + ": " +
                                     std::strerror(error));
          }
        }
      }
    }
  }
  if (status.ok()) status = SetNonBlocking(fd, false);
  if (!status.ok()) {
    CloseFd(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SetNonBlocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) != 0) return ErrnoStatus("fcntl(F_SETFL)");
  return Status::OK();
}

Status SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WaitReadable(int fd, int64_t timeout_millis) {
  pollfd pfd{fd, POLLIN, 0};
  while (true) {
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_millis));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    if (ready == 0) return Status::Unavailable("read timed out");
    if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) {
      return Status::IoError("socket error");
    }
    // POLLHUP still allows draining buffered bytes; report readable and
    // let recv() observe the orderly EOF.
    return Status::OK();
  }
}

void CloseFd(int fd) {
  if (fd < 0) return;
  while (::close(fd) != 0 && errno == EINTR) {
  }
}

}  // namespace net
}  // namespace freeway
