#include "net/client.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "common/logging.h"
#include "fault/failpoint.h"
#include "net/socket_util.h"

namespace freeway {

namespace {
constexpr size_t kReadChunk = 64 * 1024;

int64_t MillisLeft(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count();
}

/// Process-unique nonzero client id: clock + pid entropy through a
/// splitmix64 finalizer, salted by a process-wide counter so clients
/// constructed in the same tick still differ.
uint64_t AutoClientId() {
  static std::atomic<uint64_t> counter{0};
  uint64_t x = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  x ^= static_cast<uint64_t>(::getpid()) << 32;
  x += 0x9E3779B97F4A7C15ull * (counter.fetch_add(1) + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}
}  // namespace

int64_t DecorrelatedJitterStep(uint64_t* rng_state, int64_t prev_micros,
                               int64_t base_micros, int64_t cap_micros) {
  *rng_state += 0x9E3779B97F4A7C15ull;
  uint64_t z = *rng_state;
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  const int64_t base = std::max<int64_t>(base_micros, 1);
  const int64_t upper = std::max<int64_t>(prev_micros, base) * 3;
  const int64_t span = std::max<int64_t>(upper - base, 1);
  const int64_t drawn = base + static_cast<int64_t>(z % static_cast<uint64_t>(span));
  return std::min(drawn, std::max(cap_micros, base));
}

StreamClient::StreamClient(ClientOptions options)
    : options_(std::move(options)),
      backoff_micros_(options_.backoff_initial_micros),
      client_id_(options_.client_id != 0 ? options_.client_id
                                         : AutoClientId()) {
  rng_state_ = client_id_;
  if (options_.endpoints.empty()) {
    endpoints_.push_back({options_.host, options_.port});
  } else {
    endpoints_ = options_.endpoints;
  }
  if (options_.metrics != nullptr) {
    metric_stale_acks_ =
        options_.metrics->GetCounter("freeway_net_client_stale_acks_total");
    metric_resends_ =
        options_.metrics->GetCounter("freeway_net_client_resends_total");
  }
}

StreamClient::~StreamClient() { Disconnect(); }

Status StreamClient::Connect() {
  if (connected()) return Status::OK();
  const ClientEndpoint& endpoint = endpoints_[endpoint_index_];
  ASSIGN_OR_RETURN(fd_, net::ConnectSocket(endpoint.host, endpoint.port,
                                           options_.connect_timeout_millis));
  // Fresh connection, fresh framing: any partial frame from the previous
  // connection is unusable.
  decoder_ = FrameDecoder();
  return Status::OK();
}

void StreamClient::Disconnect() {
  if (fd_ >= 0) {
    net::CloseFd(fd_);
    fd_ = -1;
  }
}

Status StreamClient::SendFrame(const std::vector<char>& encoded) {
  Status injected = failpoint::Check("net.client.send");
  if (!injected.ok()) {
    // Injected torn write: half the frame leaves, then the connection
    // dies — the server sees a mid-frame disconnect.
    const size_t half = encoded.size() / 2;
    net::SendAll(fd_, encoded.data(), half);
    Disconnect();
    return injected;
  }
  Status sent = net::SendAll(fd_, encoded.data(), encoded.size());
  if (!sent.ok()) Disconnect();
  return sent;
}

Result<Frame> StreamClient::ReadFrame(int64_t timeout_millis) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_millis);
  while (true) {
    Result<Frame> frame = decoder_.Next();
    if (frame.ok()) return frame;
    if (frame.status().code() != StatusCode::kNotFound) {
      // Corrupt stream — unrecoverable framing loss.
      Disconnect();
      return frame.status();
    }
    const int64_t left = MillisLeft(deadline);
    if (left <= 0) return Status::Unavailable("reply timed out");
    RETURN_IF_ERROR(net::WaitReadable(fd_, left));
    char chunk[kReadChunk];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      Disconnect();
      return Status::IoError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      Disconnect();
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    decoder_.Feed(chunk, static_cast<size_t>(n));
  }
}

void StreamClient::AbsorbResult(const Frame& frame) {
  Result<StreamResult> result = DecodeResult(frame);
  if (!result.ok()) {
    FREEWAY_LOG(kWarning) << "dropping malformed RESULT frame: "
                      << result.status();
    return;
  }
  ++tallies_.results;
  results_.push_back(*std::move(result));
}

void StreamClient::Backoff(int64_t floor_micros) {
  // The floor comes off the wire (OVERLOAD retry_after): clamp before
  // trusting it, so a misbehaving server can neither park this thread for
  // minutes nor feed a negative duration to sleep_for.
  const int64_t ceiling = std::max<int64_t>(options_.max_retry_after_micros, 0);
  floor_micros = std::clamp<int64_t>(floor_micros, 0, ceiling);
  backoff_micros_ =
      DecorrelatedJitterStep(&rng_state_, backoff_micros_,
                             options_.backoff_initial_micros,
                             options_.backoff_max_micros);
  const int64_t wait = std::max(backoff_micros_, floor_micros);
  if (wait > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(wait));
  }
}

void StreamClient::RotateEndpoint() {
  if (endpoints_.size() <= 1) return;
  endpoint_index_ = (endpoint_index_ + 1) % endpoints_.size();
  ++tallies_.failovers;
}

void StreamClient::FollowLeaderHint(const NotLeaderMessage& hint) {
  if (endpoints_.size() <= 1) return;
  if (!hint.leader_host.empty() && hint.leader_port != 0) {
    for (size_t i = 0; i < endpoints_.size(); ++i) {
      if (endpoints_[i].host == hint.leader_host &&
          endpoints_[i].port == hint.leader_port) {
        if (i != endpoint_index_) {
          endpoint_index_ = i;
          ++tallies_.failovers;
        }
        return;
      }
    }
  }
  // No usable hint (election in flight, or the hint names an address this
  // client wasn't configured with): try the next endpoint.
  RotateEndpoint();
}

Status StreamClient::Submit(uint64_t stream_id, const Batch& batch) {
  SubmitMessage message;
  message.stream_id = stream_id;
  message.client_id = client_id_;
  // One sequence per *batch*, assigned here and reused by every resend
  // below — that identity is what lets the server dedup a resend whose
  // first copy was admitted.
  message.sequence = ++next_sequence_;
  message.tenant_id = options_.tenant_id;
  message.priority = static_cast<uint8_t>(options_.priority);
  message.batch = batch;
  const std::vector<char> encoded = EncodeSubmit(message);
  backoff_micros_ = options_.backoff_initial_micros;
  Status last_error = Status::Unavailable("no submit attempt made");
  size_t sends = 0;
  for (size_t attempt = 0; attempt < options_.max_submit_attempts;
       ++attempt) {
    if (!connected()) {
      Status connected_now = Connect();
      if (!connected_now.ok()) {
        last_error = connected_now;
        // A dead endpoint (a killed leader refuses connections instantly):
        // move on to the next cluster member before backing off.
        RotateEndpoint();
        Backoff(0);
        continue;
      }
      if (attempt > 0) ++tallies_.reconnects;
    }
    Status sent = SendFrame(encoded);
    if (!sent.ok()) {
      last_error = sent;
      // A failed send leaves the connection in an unknown state (part of
      // the frame may sit in the kernel buffer): force a clean reconnect
      // and back off first, so a half-dead socket cannot drive a tight
      // resend spin. In cluster mode the failure indicts this endpoint, so
      // move on.
      Disconnect();
      RotateEndpoint();
      Backoff(0);
      continue;
    }
    ++tallies_.submits_sent;
    if (sends++ > 0) {
      ++tallies_.resends;
      if (metric_resends_ != nullptr) metric_resends_->Inc();
    }
    // Read replies until ours arrives; results for earlier batches stream
    // past and are buffered.
    bool resend = false;
    while (!resend) {
      Result<Frame> frame = ReadFrame(options_.reply_timeout_millis);
      if (!frame.ok()) {
        last_error = frame.status();
        // Same spin hazard as a failed send: a peer that dies right after
        // accept would otherwise be hammered with reconnect + resend. A
        // reply timeout also rotates in cluster mode — a partitioned
        // leader still accepts connections and proposes, but can never
        // commit, and only trying the next endpoint escapes it.
        Disconnect();
        RotateEndpoint();
        Backoff(0);
        resend = true;
        break;
      }
      switch (frame->type) {
        case FrameType::kResult:
          AbsorbResult(*frame);
          break;
        case FrameType::kAck: {
          Result<AckMessage> ack = DecodeAck(*frame);
          if (ack.ok() && ack->stream_id == stream_id &&
              ack->batch_index == batch.index) {
            ++tallies_.acked;
            return Status::OK();
          }
          // An ACK for a superseded send of this batch. With server-side
          // dedup it answers the same admission, so it is safe to drop —
          // but it is *evidence* of a duplicate-delivery window, so count
          // it where tests and dashboards can see it.
          ++tallies_.stale_acks;
          if (metric_stale_acks_ != nullptr) metric_stale_acks_->Inc();
          break;
        }
        case FrameType::kOverload: {
          Result<OverloadMessage> overload = DecodeOverload(*frame);
          if (overload.ok() && overload->stream_id == stream_id &&
              overload->batch_index == batch.index) {
            ++tallies_.overloads;
            last_error = Status::Unavailable("server overloaded");
            Backoff(overload->retry_after_micros);
            resend = true;
          }
          break;
        }
        case FrameType::kError: {
          Result<ErrorMessage> error = DecodeError(*frame);
          if (error.ok() && error->stream_id == stream_id &&
              error->batch_index == batch.index) {
            ++tallies_.errors;
            return error->ToStatus();
          }
          break;
        }
        case FrameType::kNotLeader: {
          Result<NotLeaderMessage> redirect = DecodeNotLeader(*frame);
          if (redirect.ok() && redirect->stream_id == stream_id &&
              redirect->batch_index == batch.index) {
            // This node can't admit the batch; follow its leader hint (or
            // rotate) and resend there. The backoff gives an in-flight
            // election time to settle instead of spinning redirects.
            ++tallies_.not_leader;
            last_error = Status::Unavailable("submitted to a non-leader node");
            FollowLeaderHint(*redirect);
            Disconnect();
            Backoff(0);
            resend = true;
          }
          break;
        }
        default:
          // STATS or other out-of-band frames: not ours, drop.
          break;
      }
    }
  }
  return Status::Unavailable("submit failed after " +
                             std::to_string(options_.max_submit_attempts) +
                             " attempts: " + last_error.ToString());
}

Result<std::vector<StreamResult>> StreamClient::PollResults(
    int64_t timeout_millis) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_millis);
  while (results_.empty()) {
    if (!connected()) RETURN_IF_ERROR(Connect());
    const int64_t left = MillisLeft(deadline);
    if (left <= 0) break;
    Result<Frame> frame = ReadFrame(left);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kUnavailable) break;  // Timeout.
      return frame.status();
    }
    if (frame->type == FrameType::kResult) AbsorbResult(*frame);
  }
  return TakeResults();
}

std::vector<StreamResult> StreamClient::TakeResults() {
  std::vector<StreamResult> taken;
  taken.swap(results_);
  return taken;
}

size_t StreamClient::PumpResults() {
  if (!connected()) return results_.size();
  while (true) {
    Result<Frame> frame = decoder_.Next();
    if (frame.ok()) {
      if (frame->type == FrameType::kResult) AbsorbResult(*frame);
      continue;
    }
    if (frame.status().code() != StatusCode::kNotFound) {
      // Corrupt stream — same unrecoverable-framing policy as ReadFrame.
      Disconnect();
      break;
    }
    if (!net::WaitReadable(fd_, 0).ok()) break;  // Nothing pending.
    char chunk[kReadChunk];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      Disconnect();
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      Disconnect();
      break;
    }
    decoder_.Feed(chunk, static_cast<size_t>(n));
  }
  return results_.size();
}

Result<std::string> StreamClient::Stats() {
  RETURN_IF_ERROR(Connect());
  RETURN_IF_ERROR(SendFrame(EncodeFrame(FrameType::kStatsRequest)));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.reply_timeout_millis);
  while (true) {
    const int64_t left = MillisLeft(deadline);
    if (left <= 0) return Status::Unavailable("stats reply timed out");
    ASSIGN_OR_RETURN(Frame frame, ReadFrame(left));
    if (frame.type == FrameType::kStats) return DecodeStats(frame);
    if (frame.type == FrameType::kResult) AbsorbResult(frame);
  }
}

Status StreamClient::RequestShutdown() {
  RETURN_IF_ERROR(Connect());
  RETURN_IF_ERROR(SendFrame(EncodeFrame(FrameType::kShutdown)));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.reply_timeout_millis);
  while (true) {
    const int64_t left = MillisLeft(deadline);
    if (left <= 0) return Status::Unavailable("shutdown ack timed out");
    ASSIGN_OR_RETURN(Frame frame, ReadFrame(left));
    if (frame.type == FrameType::kAck) return Status::OK();
    if (frame.type == FrameType::kResult) AbsorbResult(frame);
  }
}

Result<std::string> HttpGet(const std::string& host, uint16_t port,
                            const std::string& path, int64_t timeout_millis) {
  ASSIGN_OR_RETURN(int fd, net::ConnectSocket(host, port, timeout_millis));
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  Status sent = net::SendAll(fd, request.data(), request.size());
  if (!sent.ok()) {
    net::CloseFd(fd);
    return sent;
  }
  // The server closes after the response, so read to EOF.
  std::string response;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_millis);
  while (true) {
    const int64_t left = MillisLeft(deadline);
    if (left <= 0) {
      net::CloseFd(fd);
      return Status::Unavailable("http response timed out");
    }
    Status readable = net::WaitReadable(fd, left);
    if (!readable.ok()) {
      net::CloseFd(fd);
      return readable;
    }
    char chunk[kReadChunk];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      net::CloseFd(fd);
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  net::CloseFd(fd);
  const size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) {
    return Status::InvalidArgument("malformed http response");
  }
  if (response.rfind("HTTP/1.1 200", 0) != 0) {
    return Status::NotFound(
        "http status: " + response.substr(0, response.find("\r\n")));
  }
  return response.substr(body_at + 4);
}

}  // namespace freeway
