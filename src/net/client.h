#ifndef FREEWAYML_NET_CLIENT_H_
#define FREEWAYML_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"
#include "obs/metrics.h"

namespace freeway {

/// One server address a client may submit to.
struct ClientEndpoint {
  std::string host;
  uint16_t port = 0;
};

/// Configuration of the blocking client.
struct ClientOptions {
  /// Numeric IPv4 server address.
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Cluster mode: the full endpoint list of a replicated server group.
  /// Non-empty, it replaces {host, port} entirely. The client submits to
  /// one endpoint at a time and fails over on NOT_LEADER replies (following
  /// the leader hint when it names a listed endpoint, else rotating) and on
  /// connect failures.
  std::vector<ClientEndpoint> endpoints;
  int64_t connect_timeout_millis = 2000;
  /// How long one Submit waits for its ACK/OVERLOAD/ERROR reply before
  /// treating the connection as dead and reconnecting.
  int64_t reply_timeout_millis = 5000;
  /// Total tries per batch: overload rejections, reconnects, and resends
  /// all consume attempts. Exhaustion returns Unavailable.
  size_t max_submit_attempts = 16;
  /// Backoff after an OVERLOAD reply, a NOT_LEADER redirect, or a failed
  /// connect: decorrelated jitter — each wait is drawn uniformly from
  /// [initial, 3 × previous wait], capped at the max — floored by the
  /// server's retry_after advice. Jitter keeps a fleet of clients that a
  /// dying server knocked loose together from stampeding back in lockstep.
  int64_t backoff_initial_micros = 500;
  int64_t backoff_max_micros = 100000;
  /// Ceiling on the server-advised retry_after the client will honour. A
  /// remote peer must not be able to park this thread arbitrarily long (a
  /// buggy — or hostile — server once sent retry_after in minutes);
  /// anything above the cap is clamped, and a negative retry_after is
  /// treated as 0 rather than fed to the sleep.
  int64_t max_retry_after_micros = 1'000'000;
  /// Tenant identity + priority band stamped on every SUBMIT this client
  /// sends (wire v2); defaults reproduce single-tenant behaviour.
  uint32_t tenant_id = 0;
  TenantPriority priority = TenantPriority::kStandard;
  /// Exactly-once identity stamped on every SUBMIT (wire v3). 0 — the
  /// default — generates a process-unique id at construction. A client
  /// that restarts with a *persisted* id and sequence continues its
  /// watermark on the server; a fresh id starts a fresh watermark.
  uint64_t client_id = 0;
  /// Observability sink for the `freeway_net_client_*` family (e.g. the
  /// stale-ACK duplicate-evidence counter). Null disables.
  MetricsRegistry* metrics = nullptr;
};

/// Client-side tallies, for overload studies and for reconciling against
/// the server's `freeway_net_*` counters in tests. Plain integers: a
/// StreamClient is single-threaded by contract.
struct ClientTallies {
  uint64_t submits_sent = 0;  ///< SUBMIT frames written (includes resends).
  uint64_t acked = 0;
  uint64_t overloads = 0;
  uint64_t errors = 0;
  uint64_t results = 0;
  uint64_t reconnects = 0;  ///< Successful re-connects after a drop.
  uint64_t resends = 0;     ///< SUBMIT frames re-sent for the same batch.
  uint64_t not_leader = 0;  ///< NOT_LEADER redirects received.
  uint64_t failovers = 0;   ///< Endpoint switches (hint-directed or rotated).
  /// ACKs that answered a superseded send of the current batch — before
  /// wire v3 this was the evidence of a duplicate delivery; with server
  /// dedup it must stay zero (asserted by the exactly-once chaos tests).
  uint64_t stale_acks = 0;
};

/// Blocking client for the FreewayML wire protocol.
///
/// Submit() is exactly-once end to end: every SUBMIT carries this client's
/// `(client_id, sequence)` pair, it retries on OVERLOAD with exponential
/// backoff (honouring the server's retry_after floor), and it transparently
/// reconnects and re-sends when the connection drops before the ACK
/// arrives. A resend whose first copy was already admitted is recognized by
/// the server's per-client watermark table and re-ACKed without being
/// re-enqueued, so a drop after admission no longer duplicates the batch
/// into the learner (the historical at-least-once caveat of wire v2).
///
/// RESULT frames arriving while Submit waits for its reply are buffered;
/// collect them with PollResults()/TakeResults(). One StreamClient must be
/// driven by a single thread; run one client per producer thread instead
/// of sharing.
class StreamClient {
 public:
  explicit StreamClient(ClientOptions options);
  /// Disconnects.
  ~StreamClient();

  StreamClient(const StreamClient&) = delete;
  StreamClient& operator=(const StreamClient&) = delete;

  /// Explicit connect. Submit() connects lazily, so this is only needed to
  /// fail fast on a bad address.
  Status Connect();
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  /// Sends one batch and blocks until the server accepts it (ACK), turns
  /// it away permanently (ERROR → that status), or the attempt budget is
  /// exhausted across overloads/drops (Unavailable).
  Status Submit(uint64_t stream_id, const Batch& batch);

  /// Blocks until at least one result is buffered or `timeout_millis`
  /// elapses, then returns everything buffered (possibly empty on
  /// timeout). Fails on connection errors.
  Result<std::vector<StreamResult>> PollResults(int64_t timeout_millis);

  /// Takes the already-buffered results without touching the socket.
  std::vector<StreamResult> TakeResults();

  /// Non-blocking drain: absorbs every RESULT frame that is already
  /// decodable or readable right now, without waiting for more. Returns
  /// the number of results buffered afterwards (collect with
  /// TakeResults). The loadgen calls this between paced submits so
  /// latency samples are taken close to result arrival instead of at the
  /// next blocking poll.
  size_t PumpResults();

  /// Fetches the server's runtime stats snapshot (JSON).
  Result<std::string> Stats();

  /// Asks the server to stop gracefully; returns once the ACK arrives.
  Status RequestShutdown();

  const ClientTallies& tallies() const { return tallies_; }

  /// The exactly-once identity this client stamps on SUBMITs (from the
  /// options, or auto-generated when they left it 0).
  uint64_t client_id() const { return client_id_; }

  /// The endpoint the next Connect() dials (moves on failover).
  const ClientEndpoint& current_endpoint() const {
    return endpoints_[endpoint_index_];
  }

 private:
  /// Writes one encoded frame. FailPoint site "net.client.send" makes the
  /// write tear: half the frame goes out, then the socket dies — how chaos
  /// tests manufacture torn frames on the server.
  Status SendFrame(const std::vector<char>& encoded);
  /// Reads the next frame within the deadline, feeding the decoder.
  Result<Frame> ReadFrame(int64_t timeout_millis);
  /// Buffers a RESULT frame; ignores stale replies from superseded sends.
  void AbsorbResult(const Frame& frame);
  void Backoff(int64_t floor_micros);
  /// Moves to the endpoint a NOT_LEADER hint names (when listed), else the
  /// next one in rotation.
  void FollowLeaderHint(const NotLeaderMessage& hint);
  /// Moves to the next endpoint in rotation (no-op with one endpoint).
  void RotateEndpoint();

  ClientOptions options_;
  /// Resolved endpoint list (options_.endpoints, or the single
  /// {host, port}) and the index Connect() currently dials.
  std::vector<ClientEndpoint> endpoints_;
  size_t endpoint_index_ = 0;
  int fd_ = -1;
  FrameDecoder decoder_;
  std::vector<StreamResult> results_;
  ClientTallies tallies_;
  int64_t backoff_micros_ = 0;
  /// Decorrelated-jitter RNG state (splitmix64), seeded from client_id so
  /// runs are reproducible per client and different across clients.
  uint64_t rng_state_ = 0;
  uint64_t client_id_ = 0;
  /// Sequence of the most recent batch; the next Submit sends +1, and all
  /// resends of one batch reuse its sequence.
  uint64_t next_sequence_ = 0;
  /// freeway_net_client_* handles; null while options_.metrics is null.
  Counter* metric_stale_acks_ = nullptr;
  Counter* metric_resends_ = nullptr;
};

/// One decorrelated-jitter step (the AWS "decorrelated jitter" policy):
/// draws the next wait uniformly from [base, 3 × prev] using the
/// splitmix64 state at `rng_state` (advanced in place), capping at `cap`.
/// Exposed so the backoff-spread regression test can drive it directly.
int64_t DecorrelatedJitterStep(uint64_t* rng_state, int64_t prev_micros,
                               int64_t base_micros, int64_t cap_micros);

/// Minimal HTTP/1.1 GET against the server's metrics endpoint (the
/// curl-equivalent used by tests and examples). Returns the response body
/// on 200 and an error Status for anything else.
Result<std::string> HttpGet(const std::string& host, uint16_t port,
                            const std::string& path,
                            int64_t timeout_millis = 2000);

}  // namespace freeway

#endif  // FREEWAYML_NET_CLIENT_H_
