#ifndef FREEWAYML_OBS_METRICS_H_
#define FREEWAYML_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace freeway {

/// Observability primitives for the streaming runtime. Design goals, in
/// order:
///
///  1. Hot-path updates are wait-free relaxed atomics with no shared cache
///     line between threads (counters and histograms shard their state
///     across per-thread slots), so instrumented code stays TSan-clean and
///     contention-free at any producer/drain concurrency.
///  2. Instrumentation is compile-always but near-zero-cost when detached:
///     instrumented layers hold plain `Counter*`/`Histogram*` handles that
///     are null until a `MetricsRegistry` is attached, and every update
///     site is a single null check when it is not.
///  3. Handles are stable: the registry owns every metric and never removes
///     or reallocates one, so a handle obtained once is valid for the
///     registry's lifetime and is safe to use from any thread.
///
/// Metric names follow the Prometheus convention
/// `freeway_<layer>_<noun>[_<unit>][_total]` and may carry a label set in
/// braces, e.g. `freeway_runtime_batches_total{event="shed"}`. The label
/// text is part of the name string (the registry does not interpret it);
/// the Prometheus renderer splices `le` buckets into an existing label set
/// and groups TYPE comments by the name's family (the part before `{`).

namespace obs_internal {

/// Number of update slots counters/histograms shard across. Threads map to
/// slots round-robin at first use; 16 slots keep slot collisions rare for
/// the pool sizes this library runs (collisions only cost cache-line
/// sharing, never correctness).
inline constexpr size_t kMetricSlots = 16;

/// Stable per-thread slot index in [0, kMetricSlots).
size_t ThisThreadSlot();

/// Relaxed add for pre-C++20-style atomic doubles (portable CAS loop).
inline void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace obs_internal

/// Monotonically increasing counter. Inc is a relaxed fetch_add on the
/// calling thread's slot; Value sums the slots (approximate while updates
/// are in flight, exact once the writers are quiescent).
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    slots_[obs_internal::ThisThreadSlot()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Slot& slot : slots_) {
      total += slot.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  /// One cache line per slot so concurrent writers never share one.
  struct alignas(64) Slot {
    std::atomic<uint64_t> value{0};
  };

  std::string name_;
  Slot slots_[obs_internal::kMetricSlots];
};

/// Point-in-time signed value (queue depths, fill levels). A single atomic:
/// gauges are updated far less often than counters and readers want the
/// latest value, not a per-thread sum.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }
  void Dec() { Add(-1); }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram (Prometheus semantics: per-bucket counts plus
/// total sum and count; buckets render cumulatively). Bucket bounds are
/// fixed at creation; Observe is a linear scan over the bounds (latency
/// histograms have ~10) plus two relaxed atomic updates on the thread's
/// slot.
class Histogram {
 public:
  /// Exponential latency grid in seconds: 1 µs .. 10 s, one decade apart,
  /// with extra resolution in the 0.1–100 ms band where batch pushes land.
  static std::vector<double> DefaultLatencyBounds();

  /// Exponential byte-size grid: 256 B .. 1 GiB in powers of 4 — used by
  /// size-valued series such as `freeway_fault_checkpoint_bytes`.
  static std::vector<double> DefaultSizeBounds();

  void Observe(double value) {
    Slot& slot = slots_[obs_internal::ThisThreadSlot()];
    size_t bucket = bounds_.size();
    for (size_t i = 0; i < bounds_.size(); ++i) {
      if (value <= bounds_[i]) {
        bucket = i;
        break;
      }
    }
    slot.counts[bucket].fetch_add(1, std::memory_order_relaxed);
    obs_internal::AtomicAddDouble(&slot.sum, value);
  }

  uint64_t TotalCount() const;
  double Sum() const;
  /// Per-bucket (non-cumulative) count; index bounds_.size() is +Inf.
  uint64_t BucketCount(size_t bucket) const;

  const std::vector<double>& bounds() const { return bounds_; }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);

  struct alignas(64) Slot {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<double> sum{0.0};
  };

  std::string name_;
  std::vector<double> bounds_;  ///< Ascending upper bounds; +Inf implicit.
  Slot slots_[obs_internal::kMetricSlots];
};

/// Owner and namespace of all metrics of one process/component. Get* calls
/// are idempotent — the first call for a name creates the metric, later
/// calls return the same handle — and thread-safe (a mutex guards only
/// creation/lookup; updates through the returned handles are lock-free).
/// Requesting an existing name as a different kind returns nullptr.
///
/// Threading contract: the registry must outlive every object holding one
/// of its handles. ToJson/ToPrometheusText may run concurrently with
/// updates; they render a relaxed point-in-time view (exact when writers
/// are quiescent).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` must be ascending; empty means DefaultLatencyBounds(). The
  /// bounds of the first creation win.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// Flat JSON object, metric name -> value (histograms expand to
  /// {count, sum, buckets}). Keys are sorted (map order) for stable diffs.
  std::string ToJson() const;

  /// Prometheus text exposition format, with `# TYPE` comments per family
  /// and cumulative `_bucket{le=...}` lines for histograms.
  std::string ToPrometheusText() const;

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> metrics_;
};

}  // namespace freeway

#endif  // FREEWAYML_OBS_METRICS_H_
