#include "obs/reporter.h"

namespace freeway {

PeriodicReporter::PeriodicReporter(const MetricsRegistry* registry,
                                   std::chrono::milliseconds interval,
                                   Sink sink, Format format)
    : registry_(registry),
      interval_(interval.count() >= 1 ? interval
                                      : std::chrono::milliseconds(1)),
      sink_(std::move(sink)),
      format_(format) {
  thread_ = std::thread([this] { Loop(); });
}

PeriodicReporter::~PeriodicReporter() { Stop(); }

std::string PeriodicReporter::Render() const {
  return format_ == Format::kJson ? registry_->ToJson()
                                  : registry_->ToPrometheusText();
}

void PeriodicReporter::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (wake_.wait_for(lock, interval_, [this] { return stop_; })) break;
    // Render/deliver outside the lock so a slow sink never blocks Stop.
    lock.unlock();
    const std::string snapshot = Render();
    sink_(snapshot);
    lock.lock();
    ++reports_emitted_;
  }
}

void PeriodicReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (joined_) return;
    joined_ = true;
    stop_ = true;
  }
  wake_.notify_all();
  thread_.join();
  // Final flush: the loop is down, so this cannot interleave with a
  // periodic emission.
  sink_(Render());
  std::lock_guard<std::mutex> lock(mutex_);
  ++reports_emitted_;
}

size_t PeriodicReporter::reports_emitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reports_emitted_;
}

}  // namespace freeway
