#include "obs/metrics.h"

#include <cstdio>
#include <sstream>

namespace freeway {
namespace obs_internal {

size_t ThisThreadSlot() {
  static std::atomic<size_t> next_slot{0};
  thread_local const size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kMetricSlots;
  return slot;
}

}  // namespace obs_internal

namespace {

/// Shortest round-trippable rendering of a double for exposition output
/// ("0.001" rather than "1e-03" for the common bucket bounds).
std::string RenderDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

/// Splits `name` into (family, labels): "a_total{x=\"1\"}" -> ("a_total",
/// "x=\"1\""). Labels come back without braces; empty when absent.
void SplitName(const std::string& name, std::string* family,
               std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *family = name;
    labels->clear();
    return;
  }
  *family = name.substr(0, brace);
  const size_t close = name.rfind('}');
  *labels = close != std::string::npos && close > brace
                ? name.substr(brace + 1, close - brace - 1)
                : name.substr(brace + 1);
}

/// `family` with `extra` merged into the (possibly absent) label set of the
/// original name.
std::string WithLabels(const std::string& family, const std::string& labels,
                       const std::string& extra) {
  std::string merged = labels;
  if (!merged.empty() && !extra.empty()) merged += ",";
  merged += extra;
  if (merged.empty()) return family;
  return family + "{" + merged + "}";
}

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::vector<double> Histogram::DefaultLatencyBounds() {
  return {1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 1.0, 10.0};
}

std::vector<double> Histogram::DefaultSizeBounds() {
  return {256.0,   1024.0,   4096.0,    16384.0,   65536.0,   262144.0,
          1048576.0, 4194304.0, 16777216.0, 67108864.0, 268435456.0,
          1073741824.0};
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = DefaultLatencyBounds();
  for (Slot& slot : slots_) {
    slot.counts =
        std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      slot.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) total += BucketCount(i);
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Slot& slot : slots_) {
    total += slot.sum.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::BucketCount(size_t bucket) const {
  uint64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.counts[bucket].load(std::memory_order_relaxed);
  }
  return total;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = metrics_[name];
  if (entry.gauge || entry.histogram) return nullptr;
  if (!entry.counter) entry.counter.reset(new Counter(name));
  return entry.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = metrics_[name];
  if (entry.counter || entry.histogram) return nullptr;
  if (!entry.gauge) entry.gauge.reset(new Gauge(name));
  return entry.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = metrics_[name];
  if (entry.counter || entry.gauge) return nullptr;
  if (!entry.histogram) {
    entry.histogram.reset(new Histogram(name, std::move(bounds)));
  }
  return entry.histogram.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [name, entry] : metrics_) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << EscapeJson(name) << "\": ";
    if (entry.counter) {
      out << entry.counter->Value();
    } else if (entry.gauge) {
      out << entry.gauge->Value();
    } else if (entry.histogram) {
      const Histogram& h = *entry.histogram;
      out << "{\"count\": " << h.TotalCount()
          << ", \"sum\": " << RenderDouble(h.Sum()) << ", \"buckets\": {";
      for (size_t i = 0; i < h.bounds().size(); ++i) {
        out << "\"" << RenderDouble(h.bounds()[i])
            << "\": " << h.BucketCount(i) << ", ";
      }
      out << "\"+Inf\": " << h.BucketCount(h.bounds().size()) << "}}";
    }
  }
  out << "}";
  return out.str();
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  std::string last_family;  // Map order groups families; emit TYPE once.
  for (const auto& [name, entry] : metrics_) {
    std::string family;
    std::string labels;
    SplitName(name, &family, &labels);
    if (family != last_family) {
      const char* type = entry.counter ? "counter"
                         : entry.gauge ? "gauge"
                                       : "histogram";
      out << "# TYPE " << family << " " << type << "\n";
      last_family = family;
    }
    if (entry.counter) {
      out << name << " " << entry.counter->Value() << "\n";
    } else if (entry.gauge) {
      out << name << " " << entry.gauge->Value() << "\n";
    } else if (entry.histogram) {
      const Histogram& h = *entry.histogram;
      uint64_t cumulative = 0;
      for (size_t i = 0; i < h.bounds().size(); ++i) {
        cumulative += h.BucketCount(i);
        out << WithLabels(family + "_bucket", labels,
                          "le=\"" + RenderDouble(h.bounds()[i]) + "\"")
            << " " << cumulative << "\n";
      }
      cumulative += h.BucketCount(h.bounds().size());
      out << WithLabels(family + "_bucket", labels, "le=\"+Inf\"") << " "
          << cumulative << "\n";
      out << WithLabels(family + "_sum", labels, "") << " "
          << RenderDouble(h.Sum()) << "\n";
      out << WithLabels(family + "_count", labels, "") << " " << cumulative
          << "\n";
    }
  }
  return out.str();
}

}  // namespace freeway
