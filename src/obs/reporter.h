#ifndef FREEWAYML_OBS_REPORTER_H_
#define FREEWAYML_OBS_REPORTER_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace freeway {

/// Periodically renders a MetricsRegistry snapshot and hands it to a sink —
/// the scrape loop of a deployment that has no HTTP endpoint (file append,
/// stderr, a test buffer). Owns one background thread; the sink runs on it
/// and must be thread-safe with respect to the caller's world.
///
/// Stop() (and destruction) emits one final snapshot after the loop exits,
/// so short-lived runs still record their end-state even when they never
/// spanned a full interval.
class PeriodicReporter {
 public:
  using Sink = std::function<void(const std::string&)>;

  enum class Format { kJson, kPrometheusText };

  /// `registry` must outlive the reporter. `interval` is clamped to >= 1ms.
  PeriodicReporter(const MetricsRegistry* registry,
                   std::chrono::milliseconds interval, Sink sink,
                   Format format = Format::kJson);

  /// Calls Stop().
  ~PeriodicReporter();

  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  /// Stops the loop, joins the thread, and emits the final snapshot.
  /// Idempotent.
  void Stop();

  /// Snapshots delivered so far (including the final one after Stop).
  size_t reports_emitted() const;

 private:
  std::string Render() const;
  void Loop();

  const MetricsRegistry* registry_;
  std::chrono::milliseconds interval_;
  Sink sink_;
  Format format_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
  bool joined_ = false;
  size_t reports_emitted_ = 0;
  std::thread thread_;
};

}  // namespace freeway

#endif  // FREEWAYML_OBS_REPORTER_H_
