#ifndef FREEWAYML_DIRECTORY_PLACEMENT_H_
#define FREEWAYML_DIRECTORY_PLACEMENT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace freeway {

/// Consistent-hash stream → shard placement for the stream directory.
///
/// Each shard owns `vnodes_per_shard` pseudo-random points on a 64-bit
/// ring; a stream lands on the first point clockwise of its own hash. Two
/// properties matter to the directory:
///
///  1. *Stability*: placement depends only on (stream_id, shard count,
///     vnode count) — never on arrival order or process lifetime — so a
///     stream's parked checkpoint is found again by any successor runtime
///     built with the same topology, and growing the shard set from N to
///     N+1 moves only ~1/(N+1) of the streams (the modulo mapping would
///     reshuffle nearly all of them, orphaning their parked state).
///  2. *Spread*: with enough vnodes the ring splits the key space evenly,
///     so a million streams load the fixed shard set uniformly.
///
/// Immutable after construction and therefore freely shared across
/// submitting threads.
class ConsistentHashRing {
 public:
  ConsistentHashRing(size_t num_shards, size_t vnodes_per_shard = 64);

  /// The shard owning `stream_id`. O(log(num_shards * vnodes)).
  size_t ShardOf(uint64_t stream_id) const;

  size_t num_shards() const { return num_shards_; }
  size_t vnodes_per_shard() const { return vnodes_per_shard_; }

  /// The stable 64-bit mixer the ring hashes ids and vnode points with
  /// (SplitMix64 finalizer). Exposed so tests can pin the placement.
  static uint64_t Mix(uint64_t x);

 private:
  size_t num_shards_;
  size_t vnodes_per_shard_;
  /// (point, shard) sorted by point for binary search.
  std::vector<std::pair<uint64_t, size_t>> ring_;
};

}  // namespace freeway

#endif  // FREEWAYML_DIRECTORY_PLACEMENT_H_
