#include "directory/directory.h"

#include <cstdlib>
#include <string>

#include "common/logging.h"

namespace freeway {

void DirectoryOptions::ApplyEnv() {
  if (const char* env = std::getenv("FREEWAY_DIRECTORY_WORKING_SET")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      working_set_capacity = static_cast<size_t>(parsed);
    } else {
      FREEWAY_LOG(kWarning) << "FREEWAY_DIRECTORY_WORKING_SET=\"" << env
                        << "\" is not a positive integer; keeping "
                        << working_set_capacity;
    }
  }
  if (const char* env = std::getenv("FREEWAY_TENANT_WEIGHTS")) {
    Result<std::vector<TenantQuota>> parsed = ParseTenantWeights(env);
    if (parsed.ok()) {
      admission.tenants = std::move(parsed).value();
      admission.enabled = !admission.tenants.empty();
    } else {
      FREEWAY_LOG(kWarning) << "FREEWAY_TENANT_WEIGHTS ignored: "
                        << parsed.status().message();
    }
  }
}

}  // namespace freeway
