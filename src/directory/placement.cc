#include "directory/placement.h"

#include <algorithm>

namespace freeway {

uint64_t ConsistentHashRing::Mix(uint64_t x) {
  // SplitMix64 finalizer: full-avalanche, stable across platforms.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

ConsistentHashRing::ConsistentHashRing(size_t num_shards,
                                       size_t vnodes_per_shard)
    : num_shards_(num_shards > 0 ? num_shards : 1),
      vnodes_per_shard_(vnodes_per_shard > 0 ? vnodes_per_shard : 1) {
  ring_.reserve(num_shards_ * vnodes_per_shard_);
  for (size_t shard = 0; shard < num_shards_; ++shard) {
    for (size_t vnode = 0; vnode < vnodes_per_shard_; ++vnode) {
      // Distinct namespaces for shard and vnode: the point stream of shard
      // s is independent of every other shard's, which is what makes
      // adding a shard leave existing points untouched.
      const uint64_t point =
          Mix((static_cast<uint64_t>(shard) << 32) | (vnode + 1));
      ring_.emplace_back(point, shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

size_t ConsistentHashRing::ShardOf(uint64_t stream_id) const {
  const uint64_t point = Mix(stream_id);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const std::pair<uint64_t, size_t>& entry, uint64_t value) {
        return entry.first < value;
      });
  if (it == ring_.end()) it = ring_.begin();  // Wrap around the ring.
  return it->second;
}

}  // namespace freeway
