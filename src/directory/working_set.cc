#include "directory/working_set.h"

#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "fault/failpoint.h"

namespace freeway {

PipelineWorkingSet::PipelineWorkingSet(WorkingSetOptions options)
    : options_(std::move(options)) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.metrics != nullptr) {
    MetricsRegistry* m = options_.metrics;
    hydrations_fresh_metric_ =
        m->GetCounter("freeway_directory_hydrations_total{result=\"fresh\"}");
    hydrations_restored_metric_ = m->GetCounter(
        "freeway_directory_hydrations_total{result=\"restored\"}");
    evictions_metric_ = m->GetCounter("freeway_directory_evictions_total");
    hydrate_errors_metric_ = m->GetCounter(
        "freeway_directory_errors_total{op=\"hydrate\"}");
    evict_errors_metric_ =
        m->GetCounter("freeway_directory_errors_total{op=\"evict\"}");
    resident_metric_ = m->GetGauge("freeway_directory_resident_streams");
    activation_seconds_metric_ =
        m->GetHistogram("freeway_directory_activation_seconds");
    park_bytes_metric_ = m->GetHistogram(
        "freeway_directory_park_bytes",
        {256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304});
  }
}

PipelineWorkingSet::~PipelineWorkingSet() {
  if (resident_metric_ != nullptr) {
    resident_metric_->Add(-static_cast<double>(entries_.size()));
  }
}

StreamPipeline* PipelineWorkingSet::Acquire(uint64_t stream_id) {
  auto it = entries_.find(stream_id);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.pipeline.get();
  }

  Stopwatch activation;
  // Make room *before* hydrating so the peak is capacity, not capacity + 1.
  EvictToCapacity();

  auto pipeline = std::make_unique<StreamPipeline>(*options_.prototype,
                                                   options_.pipeline);
  bool restored = false;
  Status read_status = failpoint::Check("directory.hydrate");
  Result<std::vector<char>> snapshot = Status::NotFound("failpoint armed");
  if (read_status.ok() && options_.store != nullptr) {
    snapshot = options_.store->ReadLatest(CheckpointName(stream_id));
  } else if (!read_status.ok()) {
    snapshot = read_status;
  }
  if (snapshot.ok()) {
    Status restore = pipeline->Restore(*snapshot);
    if (restore.ok()) {
      restored = true;
    } else {
      FREEWAY_LOG(kWarning) << "directory: restore of stream " << stream_id
                        << " failed (" << restore.message()
                        << "); starting fresh";
      ++stats_.hydrate_errors;
      if (hydrate_errors_metric_ != nullptr) hydrate_errors_metric_->Inc();
      // The pipeline may be half-restored; rebuild from the prototype.
      pipeline = std::make_unique<StreamPipeline>(*options_.prototype,
                                                  options_.pipeline);
    }
  } else if (snapshot.status().code() != StatusCode::kNotFound) {
    FREEWAY_LOG(kWarning) << "directory: hydrate read of stream " << stream_id
                      << " failed (" << snapshot.status().message()
                      << "); starting fresh";
    ++stats_.hydrate_errors;
    if (hydrate_errors_metric_ != nullptr) hydrate_errors_metric_->Inc();
  }
  pipeline->AttachMetrics(options_.metrics);

  lru_.push_front(stream_id);
  Entry entry;
  entry.stream_id = stream_id;
  entry.pipeline = std::move(pipeline);
  entry.lru_pos = lru_.begin();
  StreamPipeline* raw = entry.pipeline.get();
  entries_.emplace(stream_id, std::move(entry));

  if (restored) {
    ++stats_.hydrations_restored;
    if (hydrations_restored_metric_ != nullptr) {
      hydrations_restored_metric_->Inc();
    }
  } else {
    ++stats_.hydrations_fresh;
    if (hydrations_fresh_metric_ != nullptr) hydrations_fresh_metric_->Inc();
  }
  if (resident_metric_ != nullptr) resident_metric_->Inc();
  const double micros = static_cast<double>(activation.ElapsedMicros());
  if (activation_seconds_metric_ != nullptr) {
    activation_seconds_metric_->Observe(micros * 1e-6);
  }
  if (options_.record_activation_latency) {
    stats_.activation_micros.push_back(micros);
  }
  return raw;
}

StreamPipeline* PipelineWorkingSet::Resident(uint64_t stream_id) {
  auto it = entries_.find(stream_id);
  return it != entries_.end() ? it->second.pipeline.get() : nullptr;
}

Status PipelineWorkingSet::ParkEntry(Entry* entry) {
  if (options_.store == nullptr) {
    return Status::FailedPrecondition("directory: no checkpoint store");
  }
  RETURN_IF_ERROR(failpoint::Check("directory.evict"));
  std::vector<char> snapshot;
  RETURN_IF_ERROR(entry->pipeline->Snapshot(&snapshot));
  const size_t bytes = snapshot.size();
  RETURN_IF_ERROR(
      options_.store->Write(CheckpointName(entry->stream_id), snapshot));
  ++stats_.parks;
  entry->pushes_since_park = 0;
  if (park_bytes_metric_ != nullptr) {
    park_bytes_metric_->Observe(static_cast<double>(bytes));
  }
  return Status::OK();
}

void PipelineWorkingSet::EvictToCapacity() {
  if (entries_.size() < options_.capacity) return;
  // Walk victims from least-recently-used; a victim whose park fails stays
  // resident (its state has nowhere safe to go) and the next-older one is
  // tried. All candidates failing means the set soft-overflows its cap.
  size_t to_evict = entries_.size() - options_.capacity + 1;
  auto victim = lru_.end();
  while (to_evict > 0 && victim != lru_.begin()) {
    --victim;
    auto it = entries_.find(*victim);
    Status parked = ParkEntry(&it->second);
    if (!parked.ok()) {
      ++stats_.evict_errors;
      if (evict_errors_metric_ != nullptr) evict_errors_metric_->Inc();
      FREEWAY_LOG(kWarning) << "directory: eviction park of stream "
                        << it->first << " failed (" << parked.message()
                        << "); keeping it resident";
      continue;
    }
    victim = lru_.erase(victim);
    entries_.erase(it);
    ++stats_.evictions;
    if (evictions_metric_ != nullptr) evictions_metric_->Inc();
    if (resident_metric_ != nullptr) resident_metric_->Dec();
    --to_evict;
  }
}

Status PipelineWorkingSet::Park(uint64_t stream_id) {
  auto it = entries_.find(stream_id);
  if (it == entries_.end()) {
    return Status::NotFound("directory: stream " + std::to_string(stream_id) +
                            " is not resident");
  }
  return ParkEntry(&it->second);
}

Status PipelineWorkingSet::ParkAll() {
  Status first;
  for (auto& [id, entry] : entries_) {
    Status parked = ParkEntry(&entry);
    if (!parked.ok() && first.ok()) first = parked;
  }
  return first;
}

void PipelineWorkingSet::Discard(uint64_t stream_id) {
  auto it = entries_.find(stream_id);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  ++stats_.discards;
  if (resident_metric_ != nullptr) resident_metric_->Dec();
}

Status PipelineWorkingSet::NotePush(uint64_t stream_id, size_t interval) {
  if (interval == 0) return Status::OK();
  auto it = entries_.find(stream_id);
  if (it == entries_.end()) return Status::OK();
  if (++it->second.pushes_since_park < interval) return Status::OK();
  return ParkEntry(&it->second);
}

}  // namespace freeway
