#ifndef FREEWAYML_DIRECTORY_DIRECTORY_H_
#define FREEWAYML_DIRECTORY_DIRECTORY_H_

#include <cstddef>
#include <string>

#include "directory/admission.h"

namespace freeway {

/// Stream-directory configuration, carried by RuntimeOptions. Disabled (the
/// default) the runtime behaves exactly as before the directory existed:
/// modulo placement, one permanent pipeline per shard.
///
/// Enabled, the runtime becomes a directory over millions of *logical*
/// streams: consistent-hash placement onto the fixed shard set, one
/// independent pipeline per logical stream hydrated on demand into a
/// bounded per-shard LRU working set, evicted-to-checkpoint when the set is
/// full, with optional per-tenant weighted admission on the non-blocking
/// submit path.
struct DirectoryOptions {
  bool enabled = false;

  /// Directory parked-stream checkpoints live in. Empty is clamped (with a
  /// warning) to "freeway_directory_park".
  std::string park_dir;

  /// Total hydrated pipelines across the runtime; each shard gets
  /// max(1, working_set_capacity / num_shards). Zero is clamped to
  /// num_shards (one resident stream per shard).
  size_t working_set_capacity = 8192;

  /// Ring points per shard; more vnodes spread streams more evenly at
  /// O(vnodes * num_shards) ring memory. Changing this re-places streams,
  /// so treat it like num_shards: fixed for the lifetime of a park_dir.
  size_t vnodes_per_shard = 64;

  /// Parked-checkpoint versions retained per stream. 1 is safe here
  /// because the store writes are atomic (tmp + rename) and pruning only
  /// follows a successful write; bump it to survive on-disk corruption of
  /// the newest version at double the park footprint.
  size_t keep_versions = 1;

  /// fsync parked checkpoints. Off by default: an eviction park is a cache
  /// spill, not a durability event — crash-consistency for labeled data is
  /// the fault layer's interval checkpointing, which fsyncs through its
  /// own store options.
  bool fsync = false;

  /// Per-tenant weighted admission (see AdmissionOptions). Only consulted
  /// when the directory is enabled.
  AdmissionOptions admission;

  /// Record every hydration latency exactly (WorkingSetStats::
  /// activation_micros) instead of only the histogram — for benchmarks
  /// that report precise activation percentiles. Unbounded memory per
  /// hydration; leave off in production.
  bool record_activation_latency = false;

  /// Overrides fields from the environment:
  ///   FREEWAY_DIRECTORY_WORKING_SET  total hydrated-pipeline cap
  ///   FREEWAY_TENANT_WEIGHTS         "<id>:<weight>[:<priority>]," list;
  ///                                  parse errors are logged and skipped,
  ///                                  a valid list enables admission
  /// Malformed numbers are ignored with a warning (clamp-and-warn policy).
  void ApplyEnv();
};

}  // namespace freeway

#endif  // FREEWAYML_DIRECTORY_DIRECTORY_H_
