#include "directory/admission.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace freeway {

const char* TenantPriorityName(TenantPriority priority) {
  switch (priority) {
    case TenantPriority::kBestEffort:
      return "best_effort";
    case TenantPriority::kStandard:
      return "standard";
    case TenantPriority::kCritical:
      return "critical";
  }
  return "unknown";
}

TenantAdmission::TenantAdmission(const AdmissionOptions& options,
                                 size_t num_shards, size_t queue_capacity,
                                 MetricsRegistry* metrics)
    : options_(options) {
  slots_.reserve(options_.tenants.size() + 1);
  double total_weight = 0.0;
  for (const TenantQuota& quota : options_.tenants) {
    total_weight += std::max(quota.weight, 0.0);
  }
  total_weight += std::max(options_.default_weight, 0.0);
  if (total_weight <= 0.0) total_weight = 1.0;

  auto make_slot = [&](uint32_t tenant_id, double weight,
                       TenantPriority priority, bool is_other) {
    Slot slot;
    slot.tenant_id = tenant_id;
    slot.weight = std::max(weight, 0.0);
    slot.priority = priority;
    slot.is_other = is_other;
    slot.share = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::floor(
               static_cast<double>(queue_capacity) * slot.weight /
               total_weight)));
    if (metrics != nullptr) {
      const std::string label =
          is_other ? "other" : std::to_string(tenant_id);
      slot.admitted_metric = metrics->GetCounter(
          "freeway_directory_admission_total{tenant=\"" + label +
          "\",decision=\"admitted\"}");
      slot.rejected_metric = metrics->GetCounter(
          "freeway_directory_admission_total{tenant=\"" + label +
          "\",decision=\"rejected\"}");
    }
    return slot;
  };

  for (const TenantQuota& quota : options_.tenants) {
    if (slot_of_.count(quota.tenant_id) > 0) {
      FREEWAY_LOG(kWarning) << "duplicate tenant " << quota.tenant_id
                        << " in admission options; first entry wins";
      continue;
    }
    slot_of_[quota.tenant_id] = slots_.size();
    slots_.push_back(
        make_slot(quota.tenant_id, quota.weight, quota.priority, false));
  }
  // The shared bucket every unconfigured tenant lands in.
  slots_.push_back(make_slot(0, options_.default_weight,
                             options_.default_priority, true));

  in_flight_ = std::vector<InFlightCell>(num_shards * slots_.size());
  admitted_.reserve(slots_.size());
  rejected_.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    admitted_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    rejected_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
}

size_t TenantAdmission::SlotOf(uint32_t tenant_id) const {
  auto it = slot_of_.find(tenant_id);
  return it != slot_of_.end() ? it->second : slots_.size() - 1;
}

bool TenantAdmission::Admit(size_t shard, size_t slot, bool labeled,
                            double fill) {
  const Slot& s = slots_[slot];
  bool admit = true;
  if (!labeled && s.priority != TenantPriority::kCritical) {
    if (fill >= options_.hard_threshold &&
        s.priority == TenantPriority::kBestEffort) {
      // Hard band: the queue is nearly full, so the lowest band is turned
      // away before its share is even consulted.
      admit = false;
    } else if (fill >= options_.pressure_threshold) {
      admit = InFlight(shard, slot).load(std::memory_order_relaxed) < s.share;
    }
  }
  if (!admit) {
    rejected_[slot]->fetch_add(1, std::memory_order_relaxed);
    if (s.rejected_metric != nullptr) s.rejected_metric->Inc();
  }
  return admit;
}

void TenantAdmission::OnAdmitted(size_t shard, size_t slot) {
  InFlight(shard, slot).fetch_add(1, std::memory_order_relaxed);
  admitted_[slot]->fetch_add(1, std::memory_order_relaxed);
  if (slots_[slot].admitted_metric != nullptr) {
    slots_[slot].admitted_metric->Inc();
  }
}

void TenantAdmission::OnRetired(size_t shard, size_t slot) {
  InFlight(shard, slot).fetch_sub(1, std::memory_order_relaxed);
}

std::vector<TenantStatsSnapshot> TenantAdmission::Snapshot() const {
  std::vector<TenantStatsSnapshot> rows;
  rows.reserve(slots_.size());
  const size_t num_shards = in_flight_.size() / slots_.size();
  for (size_t slot = 0; slot < slots_.size(); ++slot) {
    TenantStatsSnapshot row;
    row.tenant_id = slots_[slot].tenant_id;
    row.weight = slots_[slot].weight;
    row.priority = static_cast<uint8_t>(slots_[slot].priority);
    row.is_other = slots_[slot].is_other;
    row.admitted = admitted_[slot]->load(std::memory_order_relaxed);
    row.rejected = rejected_[slot]->load(std::memory_order_relaxed);
    for (size_t shard = 0; shard < num_shards; ++shard) {
      row.in_flight += InFlight(shard, slot).load(std::memory_order_relaxed);
    }
    rows.push_back(row);
  }
  return rows;
}

Result<std::vector<TenantQuota>> ParseTenantWeights(const std::string& spec) {
  std::vector<TenantQuota> quotas;
  for (const std::string& entry : Split(spec, ',')) {
    if (entry.empty()) continue;
    const std::vector<std::string> fields = Split(entry, ':');
    if (fields.size() < 2 || fields.size() > 3) {
      return Status::InvalidArgument(
          "tenant weight entry '" + entry +
          "' is not <tenant>:<weight>[:<priority>]");
    }
    TenantQuota quota;
    try {
      quota.tenant_id = static_cast<uint32_t>(std::stoul(fields[0]));
      quota.weight = std::stod(fields[1]);
    } catch (const std::exception&) {
      return Status::InvalidArgument("tenant weight entry '" + entry +
                                     "' has a non-numeric field");
    }
    if (!(quota.weight > 0.0)) {
      return Status::InvalidArgument("tenant weight entry '" + entry +
                                     "' needs a positive weight");
    }
    if (fields.size() == 3) {
      if (fields[2] == "best_effort") {
        quota.priority = TenantPriority::kBestEffort;
      } else if (fields[2] == "standard") {
        quota.priority = TenantPriority::kStandard;
      } else if (fields[2] == "critical") {
        quota.priority = TenantPriority::kCritical;
      } else {
        return Status::InvalidArgument("unknown tenant priority '" +
                                       fields[2] + "' in '" + entry + "'");
      }
    }
    quotas.push_back(quota);
  }
  return quotas;
}

}  // namespace freeway
