#ifndef FREEWAYML_DIRECTORY_WORKING_SET_H_
#define FREEWAYML_DIRECTORY_WORKING_SET_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pipeline.h"
#include "fault/checkpoint.h"
#include "obs/metrics.h"

namespace freeway {

/// Configuration of one shard's hydrated-pipeline working set.
struct WorkingSetOptions {
  /// Maximum resident pipelines before eviction kicks in. This is a *soft*
  /// cap: when every eviction candidate fails to park (checkpoint store
  /// down), the set grows past it rather than destroy un-parked state —
  /// bounded memory yields to zero labeled-batch loss.
  size_t capacity = 1024;
  /// Parked-stream checkpoint store; shared with the caller, not owned.
  /// Required.
  CheckpointStore* store = nullptr;
  /// Prototype every fresh pipeline is built from; not owned, must outlive
  /// the working set.
  const Model* prototype = nullptr;
  PipelineOptions pipeline;
  /// Checkpoint name of stream `id` is `name_prefix + id` — shard-agnostic
  /// on purpose, so re-sharding (a different ring) still finds every
  /// parked stream.
  std::string name_prefix = "stream-";
  /// Observability sink. Registers the `freeway_directory_*` family
  /// (hydrations by result, evictions, resident gauge, activation-latency
  /// histogram, park bytes) and attaches hydrated pipelines. Null disables.
  MetricsRegistry* metrics = nullptr;
  /// Record every hydrate latency (micros) in stats().activation_micros —
  /// for benches that need exact percentiles rather than histogram buckets.
  bool record_activation_latency = false;
};

/// Single-shard working-set accounting. Plain integers: a working set is
/// driven only by its shard's drain thread (see class comment).
struct WorkingSetStats {
  /// Streams activated with no restorable checkpoint (brand-new streams,
  /// or fallback after a failed hydrate read).
  uint64_t hydrations_fresh = 0;
  /// Streams activated by restoring their parked snapshot.
  uint64_t hydrations_restored = 0;
  /// Residents parked-and-destroyed to make room.
  uint64_t evictions = 0;
  /// Residents dropped *without* parking (supervised recovery rolls a
  /// misbehaving stream back to its last checkpoint this way).
  uint64_t discards = 0;
  /// Snapshots written to the store (evictions + interval parks + park-all).
  uint64_t parks = 0;
  /// Hydrate reads/restores that fell back to a fresh pipeline.
  uint64_t hydrate_errors = 0;
  /// Failed evictions (park error; the stream stayed resident).
  uint64_t evict_errors = 0;
  /// Hydrate latencies in microseconds, recorded only when
  /// WorkingSetOptions::record_activation_latency is set.
  std::vector<double> activation_micros;
};

/// LRU working set of hydrated `StreamPipeline`s for one runtime shard —
/// the mechanism that lets millions of logical streams share a fixed shard
/// set on bounded memory. A stream is either *resident* (live pipeline,
/// costs ~memory) or *parked* (its checkpoint in the store, costs ~nothing);
/// Acquire moves it to resident on demand, evicting the least-recently-used
/// resident through the store to stay under capacity.
///
/// Invariant (exact whenever the owning drain thread is between batches):
///   hydrations_fresh + hydrations_restored == evictions + discards +
///   resident()
///
/// Threading contract: NOT thread-safe. Exactly one thread — the owning
/// shard's single active drain task — may call any non-const method, which
/// is the same externally-synchronized contract as StreamPipeline itself.
///
/// FailPoint sites: "directory.hydrate" (checkpoint read path; an injected
/// failure falls back to a fresh pipeline) and "directory.evict" (park
/// write path; an injected failure keeps the victim resident).
class PipelineWorkingSet {
 public:
  explicit PipelineWorkingSet(WorkingSetOptions options);

  PipelineWorkingSet(const PipelineWorkingSet&) = delete;
  PipelineWorkingSet& operator=(const PipelineWorkingSet&) = delete;

  ~PipelineWorkingSet();

  /// The stream's resident pipeline, hydrating (and evicting) as needed.
  /// Infallible by design: a failed checkpoint read falls back to a fresh
  /// pipeline (counted `hydrate_errors`), and a failed eviction overflows
  /// the soft cap (counted `evict_errors`). Touches the LRU.
  StreamPipeline* Acquire(uint64_t stream_id);

  /// The stream's resident pipeline without hydrating or touching the LRU;
  /// null while parked.
  StreamPipeline* Resident(uint64_t stream_id);

  /// Snapshots one resident stream to the store without evicting it (the
  /// interval-checkpoint path of the fault supervisor).
  Status Park(uint64_t stream_id);

  /// Parks every resident stream (shutdown: a successor working set must
  /// be able to hydrate each one). Returns the first error but attempts
  /// every stream.
  Status ParkAll();

  /// Drops a resident stream without parking: its state rolls back to the
  /// last checkpoint on the next Acquire. The supervised-recovery hook.
  void Discard(uint64_t stream_id);

  /// Successful pushes since the stream's last park, incremented by the
  /// caller via NotePush; parks and resets when `interval` is reached.
  Status NotePush(uint64_t stream_id, size_t interval);

  size_t resident() const { return entries_.size(); }
  size_t capacity() const { return options_.capacity; }
  const WorkingSetStats& stats() const { return stats_; }

  /// The store name of a stream's parked checkpoint.
  std::string CheckpointName(uint64_t stream_id) const {
    return options_.name_prefix + std::to_string(stream_id);
  }

 private:
  struct Entry {
    uint64_t stream_id = 0;
    std::unique_ptr<StreamPipeline> pipeline;
    size_t pushes_since_park = 0;
    /// Position in lru_ (front = most recent).
    std::list<uint64_t>::iterator lru_pos;
  };

  /// Snapshot + store write for one entry.
  Status ParkEntry(Entry* entry);
  /// Evicts LRU victims until under capacity; tolerates park failures by
  /// skipping the victim (soft cap).
  void EvictToCapacity();
  void DestroyEntry(uint64_t stream_id);

  WorkingSetOptions options_;
  std::unordered_map<uint64_t, Entry> entries_;
  /// LRU order, most-recently-used first.
  std::list<uint64_t> lru_;
  WorkingSetStats stats_;

  /// freeway_directory_* handles, null while metrics are detached.
  Counter* hydrations_fresh_metric_ = nullptr;
  Counter* hydrations_restored_metric_ = nullptr;
  Counter* evictions_metric_ = nullptr;
  Counter* hydrate_errors_metric_ = nullptr;
  Counter* evict_errors_metric_ = nullptr;
  Gauge* resident_metric_ = nullptr;
  Histogram* activation_seconds_metric_ = nullptr;
  Histogram* park_bytes_metric_ = nullptr;
};

}  // namespace freeway

#endif  // FREEWAYML_DIRECTORY_WORKING_SET_H_
