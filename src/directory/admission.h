#ifndef FREEWAYML_DIRECTORY_ADMISSION_H_
#define FREEWAYML_DIRECTORY_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace freeway {

/// Envoy overload-manager style priority bands. Under queue pressure the
/// runtime sheds work from the lowest band first; kCritical traffic is
/// exempt from tenant quotas entirely (it competes only against physical
/// queue capacity).
enum class TenantPriority : uint8_t {
  kBestEffort = 0,
  kStandard = 1,
  kCritical = 2,
};

const char* TenantPriorityName(TenantPriority priority);

/// One tenant's admission contract. `weight` is its proportional share of
/// contended queue capacity (shares only matter once a shard queue crosses
/// the pressure threshold); `priority` picks the shedding band.
struct TenantQuota {
  uint32_t tenant_id = 0;
  double weight = 1.0;
  TenantPriority priority = TenantPriority::kStandard;
};

/// Weighted-admission configuration. Disabled (the default) admits every
/// submit exactly as before the directory existed.
struct AdmissionOptions {
  bool enabled = false;
  /// Configured tenants. Tenants not listed here share one "other" bucket
  /// with `default_weight` / `default_priority`.
  std::vector<TenantQuota> tenants;
  double default_weight = 1.0;
  TenantPriority default_priority = TenantPriority::kStandard;
  /// Queue fill fraction at which weighted shares engage. Below it every
  /// tenant is admitted (no reason to throttle an uncontended queue).
  double pressure_threshold = 0.5;
  /// Queue fill fraction at which best-effort *unlabeled* traffic is
  /// turned away outright (the Envoy "shed the lowest band first" step).
  /// Labeled batches are training data and are never quota-rejected.
  double hard_threshold = 0.9;
};

/// Point-in-time per-tenant admission accounting, summed over shards.
struct TenantStatsSnapshot {
  uint32_t tenant_id = 0;
  double weight = 1.0;
  uint8_t priority = 1;
  /// True for the aggregate bucket of unconfigured tenants.
  bool is_other = false;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t in_flight = 0;
};

/// Thread-safe per-tenant weighted admission controller, shared by every
/// shard of one runtime.
///
/// The mechanism is in-flight accounting: each admitted batch counts
/// against its tenant's (shard, tenant) in-flight slot until the batch is
/// processed, shed, quarantined, or abandoned. Under pressure a tenant may
/// only hold its weight-proportional share of the shard queue:
///
///   share = max(1, floor(queue_capacity * weight / total_weight))
///
/// The floor of 1 is the starvation guarantee — a low-weight tenant is
/// throttled to a trickle, never to zero. Decisions use relaxed atomics and
/// are deliberately approximate under concurrency (two producers may both
/// observe the last free slot); the bounded queue itself remains the hard
/// capacity guarantee.
class TenantAdmission {
 public:
  TenantAdmission(const AdmissionOptions& options, size_t num_shards,
                  size_t queue_capacity, MetricsRegistry* metrics);

  TenantAdmission(const TenantAdmission&) = delete;
  TenantAdmission& operator=(const TenantAdmission&) = delete;

  /// Tenant slot index (configured tenants first, then the shared "other"
  /// bucket). Resolving once per submit keeps the hot path to one hash
  /// lookup on an immutable map.
  size_t SlotOf(uint32_t tenant_id) const;

  /// Admission decision for one non-blocking submit against a shard whose
  /// queue is `fill` full. Labeled batches are always admitted — they are
  /// training data and backpressure for them is the queue itself.
  /// Rejections are counted; admissions are not booked until OnAdmitted.
  bool Admit(size_t shard, size_t slot, bool labeled, double fill);

  /// Books an accepted batch against its tenant's share.
  void OnAdmitted(size_t shard, size_t slot);
  /// Releases a batch previously booked by OnAdmitted (processed, shed,
  /// quarantined, or abandoned by shutdown).
  void OnRetired(size_t shard, size_t slot);

  size_t num_slots() const { return slots_.size(); }
  uint64_t share(size_t slot) const { return slots_[slot].share; }

  std::vector<TenantStatsSnapshot> Snapshot() const;

 private:
  struct Slot {
    uint32_t tenant_id = 0;
    double weight = 1.0;
    TenantPriority priority = TenantPriority::kStandard;
    bool is_other = false;
    /// Per-shard queue-slot entitlement under pressure.
    uint64_t share = 1;
    Counter* admitted_metric = nullptr;
    Counter* rejected_metric = nullptr;
  };

  /// Cache-line padded (shard, slot) in-flight cell: producers of
  /// different shards never share a line.
  struct alignas(64) InFlightCell {
    std::atomic<uint64_t> value{0};
  };

  std::atomic<uint64_t>& InFlight(size_t shard, size_t slot) {
    return in_flight_[shard * slots_.size() + slot].value;
  }
  const std::atomic<uint64_t>& InFlight(size_t shard, size_t slot) const {
    return in_flight_[shard * slots_.size() + slot].value;
  }

  AdmissionOptions options_;
  std::vector<Slot> slots_;
  std::unordered_map<uint32_t, size_t> slot_of_;
  std::vector<InFlightCell> in_flight_;
  /// Totals per slot (all shards), for stats and the fairness bench.
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> admitted_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> rejected_;
};

/// Parses the FREEWAY_TENANT_WEIGHTS grammar:
///   "<tenant_id>:<weight>[:<priority>]" joined by commas,
/// where priority is one of best_effort|standard|critical (default
/// standard), e.g. "1:8:critical,2:4,7:1:best_effort".
Result<std::vector<TenantQuota>> ParseTenantWeights(const std::string& spec);

}  // namespace freeway

#endif  // FREEWAYML_DIRECTORY_ADMISSION_H_
