#ifndef FREEWAYML_DETECTORS_DRIFT_DETECTORS_H_
#define FREEWAYML_DETECTORS_DRIFT_DETECTORS_H_

#include <cstddef>
#include <deque>
#include <memory>
#include <string>

namespace freeway {

/// Detector verdict after each observation.
enum class DriftState {
  kStable,
  kWarning,  ///< Change suspected: start preparing (e.g. background model).
  kDrift,    ///< Change confirmed: react (the detector has self-reset).
};

const char* DriftStateName(DriftState state);

/// Classical accuracy/error-based concept-drift detectors, as provided by
/// streaming-ML toolkits like River/MOA — the "drift detector" substrate the
/// paper's related work contrasts FreewayML's distribution-based detection
/// against. Observations are error indicators or error rates in [0, 1]
/// (0 = correct); lower is better.
class DriftDetector {
 public:
  virtual ~DriftDetector() = default;
  virtual std::string name() const = 0;

  /// Feeds one observation and returns the verdict. Detectors reset
  /// themselves upon returning kDrift.
  virtual DriftState Add(double error) = 0;

  /// Returns to the freshly-constructed state.
  virtual void Reset() = 0;
};

/// DDM (Gama et al. 2004): tracks the running error rate p_i and its
/// binomial deviation s_i; warns when p + s exceeds the historical minimum
/// by 2 sigma, signals drift at 3 sigma.
class DdmDetector : public DriftDetector {
 public:
  /// `min_observations`: samples before the thresholds arm.
  explicit DdmDetector(size_t min_observations = 30);

  std::string name() const override { return "DDM"; }
  DriftState Add(double error) override;
  void Reset() override;

 private:
  size_t min_observations_;
  size_t count_ = 0;
  double error_sum_ = 0.0;
  double min_p_plus_s_ = 1e18;
  double min_p_ = 0.0;
  double min_s_ = 0.0;
};

/// EDDM (Baena-García et al. 2006): monitors the *distance between errors*
/// rather than the error rate, which reacts faster to gradual drift. Warns
/// when (mu + 2 sigma) of the distance falls below `warning_ratio` of its
/// historical maximum; drifts below `drift_ratio`.
class EddmDetector : public DriftDetector {
 public:
  EddmDetector(double warning_ratio = 0.95, double drift_ratio = 0.90,
               size_t min_errors = 30);

  std::string name() const override { return "EDDM"; }
  DriftState Add(double error) override;
  void Reset() override;

 private:
  double warning_ratio_;
  double drift_ratio_;
  size_t min_errors_;

  size_t position_ = 0;
  size_t last_error_position_ = 0;
  size_t error_count_ = 0;
  double dist_mean_ = 0.0;
  double dist_m2_ = 0.0;  ///< Welford accumulator.
  double max_mean_plus_2sd_ = 0.0;
};

/// Page–Hinkley test: accumulates deviations of the observed error from its
/// running mean; drift when the accumulated deviation exceeds `lambda` above
/// its historical minimum. `delta` is the tolerated magnitude of change.
class PageHinkleyDetector : public DriftDetector {
 public:
  PageHinkleyDetector(double delta = 0.005, double lambda = 50.0,
                      size_t min_observations = 30);

  std::string name() const override { return "PageHinkley"; }
  DriftState Add(double error) override;
  void Reset() override;

 private:
  double delta_;
  double lambda_;
  size_t min_observations_;

  size_t count_ = 0;
  double mean_ = 0.0;
  double cumulative_ = 0.0;
  double min_cumulative_ = 0.0;
};

/// ADWIN-style adaptive windowing (Bifet & Gavaldà 2007), simplified: keeps
/// a bounded window of recent observations and, on a fixed cadence, tests
/// every split for a mean difference exceeding the Hoeffding-style cut
/// epsilon(delta); when a split fails, the older side is dropped and drift
/// is signaled. O(window) per check, bounded memory.
class AdwinDetector : public DriftDetector {
 public:
  /// `delta`: confidence parameter (smaller = more conservative).
  explicit AdwinDetector(double delta = 0.002, size_t max_window = 4096,
                         size_t check_every = 32);

  std::string name() const override { return "ADWIN"; }
  DriftState Add(double error) override;
  void Reset() override;

  size_t window_size() const { return window_.size(); }

 private:
  bool CheckAndShrink();

  double delta_;
  size_t max_window_;
  size_t check_every_;
  size_t since_check_ = 0;
  std::deque<double> window_;
  double window_sum_ = 0.0;
};

/// Builds a detector by name: "DDM", "EDDM", "PageHinkley", "ADWIN".
/// Returns nullptr for unknown names.
std::unique_ptr<DriftDetector> MakeDriftDetector(const std::string& name);

}  // namespace freeway

#endif  // FREEWAYML_DETECTORS_DRIFT_DETECTORS_H_
