#include "detectors/drift_detectors.h"

#include <cmath>

namespace freeway {

const char* DriftStateName(DriftState state) {
  switch (state) {
    case DriftState::kStable:
      return "stable";
    case DriftState::kWarning:
      return "warning";
    case DriftState::kDrift:
      return "drift";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// DDM
// ---------------------------------------------------------------------------

DdmDetector::DdmDetector(size_t min_observations)
    : min_observations_(min_observations) {}

void DdmDetector::Reset() {
  count_ = 0;
  error_sum_ = 0.0;
  min_p_plus_s_ = 1e18;
  min_p_ = 0.0;
  min_s_ = 0.0;
}

DriftState DdmDetector::Add(double error) {
  ++count_;
  error_sum_ += error;
  // Arm only once both the sample count and the error count are meaningful:
  // with zero observed errors p-hat = 0 locks min_p + min_s at 0 and the
  // first error would falsely signal drift (the classic DDM cold-start
  // artifact).
  if (count_ < min_observations_ || error_sum_ < 5.0) {
    return DriftState::kStable;
  }

  const double p = error_sum_ / static_cast<double>(count_);
  const double s = std::sqrt(p * (1.0 - p) / static_cast<double>(count_));
  if (p + s < min_p_plus_s_) {
    min_p_plus_s_ = p + s;
    min_p_ = p;
    min_s_ = s;
  }

  if (p + s > min_p_ + 3.0 * min_s_) {
    Reset();
    return DriftState::kDrift;
  }
  if (p + s > min_p_ + 2.0 * min_s_) return DriftState::kWarning;
  return DriftState::kStable;
}

// ---------------------------------------------------------------------------
// EDDM
// ---------------------------------------------------------------------------

EddmDetector::EddmDetector(double warning_ratio, double drift_ratio,
                           size_t min_errors)
    : warning_ratio_(warning_ratio),
      drift_ratio_(drift_ratio),
      min_errors_(min_errors) {}

void EddmDetector::Reset() {
  position_ = 0;
  last_error_position_ = 0;
  error_count_ = 0;
  dist_mean_ = 0.0;
  dist_m2_ = 0.0;
  max_mean_plus_2sd_ = 0.0;
}

DriftState EddmDetector::Add(double error) {
  ++position_;
  // Treat any error level above 0.5 as "an error occurred" when fed
  // indicator-style inputs; fractional error rates trigger proportionally.
  if (error < 0.5) return DriftState::kStable;

  const double distance =
      static_cast<double>(position_ - last_error_position_);
  last_error_position_ = position_;
  ++error_count_;

  // Welford update of the error-distance statistics.
  const double delta = distance - dist_mean_;
  dist_mean_ += delta / static_cast<double>(error_count_);
  dist_m2_ += delta * (distance - dist_mean_);
  if (error_count_ < 2) return DriftState::kStable;
  const double sd =
      std::sqrt(dist_m2_ / static_cast<double>(error_count_ - 1));
  const double mean_plus_2sd = dist_mean_ + 2.0 * sd;

  // The distance statistics are noisy until enough errors accumulated;
  // recording a lucky early maximum would bias every later ratio low, so
  // both the maximum and the test arm together.
  if (error_count_ < min_errors_) return DriftState::kStable;
  if (mean_plus_2sd > max_mean_plus_2sd_) {
    max_mean_plus_2sd_ = mean_plus_2sd;
    return DriftState::kStable;
  }
  if (max_mean_plus_2sd_ <= 0.0) return DriftState::kStable;

  const double ratio = mean_plus_2sd / max_mean_plus_2sd_;
  if (ratio < drift_ratio_) {
    Reset();
    return DriftState::kDrift;
  }
  if (ratio < warning_ratio_) return DriftState::kWarning;
  return DriftState::kStable;
}

// ---------------------------------------------------------------------------
// Page-Hinkley
// ---------------------------------------------------------------------------

PageHinkleyDetector::PageHinkleyDetector(double delta, double lambda,
                                         size_t min_observations)
    : delta_(delta), lambda_(lambda), min_observations_(min_observations) {}

void PageHinkleyDetector::Reset() {
  count_ = 0;
  mean_ = 0.0;
  cumulative_ = 0.0;
  min_cumulative_ = 0.0;
}

DriftState PageHinkleyDetector::Add(double error) {
  ++count_;
  mean_ += (error - mean_) / static_cast<double>(count_);
  cumulative_ += error - mean_ - delta_;
  if (cumulative_ < min_cumulative_) min_cumulative_ = cumulative_;
  if (count_ < min_observations_) return DriftState::kStable;

  const double test = cumulative_ - min_cumulative_;
  if (test > lambda_) {
    Reset();
    return DriftState::kDrift;
  }
  if (test > 0.5 * lambda_) return DriftState::kWarning;
  return DriftState::kStable;
}

// ---------------------------------------------------------------------------
// ADWIN (simplified)
// ---------------------------------------------------------------------------

AdwinDetector::AdwinDetector(double delta, size_t max_window,
                             size_t check_every)
    : delta_(delta), max_window_(max_window), check_every_(check_every) {}

void AdwinDetector::Reset() {
  since_check_ = 0;
  window_.clear();
  window_sum_ = 0.0;
}

bool AdwinDetector::CheckAndShrink() {
  const size_t n = window_.size();
  if (n < 10) return false;

  // Scan splits; prefix sums keep the pass O(n).
  double head_sum = 0.0;
  bool shrunk = false;
  size_t cut = 0;
  for (size_t i = 1; i < n; ++i) {
    head_sum += window_[i - 1];
    const double n0 = static_cast<double>(i);
    const double n1 = static_cast<double>(n - i);
    if (n0 < 5 || n1 < 5) continue;
    const double mean0 = head_sum / n0;
    const double mean1 = (window_sum_ - head_sum) / n1;
    // Hoeffding-style cut for values in [0, 1].
    const double m = 1.0 / (1.0 / n0 + 1.0 / n1);
    const double eps = std::sqrt(
        (1.0 / (2.0 * m)) *
        std::log(4.0 * static_cast<double>(n) / delta_));
    if (std::fabs(mean0 - mean1) > eps) {
      shrunk = true;
      cut = i;  // Keep scanning: the LAST failing split trims the most.
    }
  }
  if (shrunk) {
    for (size_t i = 0; i < cut; ++i) {
      window_sum_ -= window_.front();
      window_.pop_front();
    }
  }
  return shrunk;
}

DriftState AdwinDetector::Add(double error) {
  window_.push_back(error);
  window_sum_ += error;
  while (window_.size() > max_window_) {
    window_sum_ -= window_.front();
    window_.pop_front();
  }
  if (++since_check_ < check_every_) return DriftState::kStable;
  since_check_ = 0;
  return CheckAndShrink() ? DriftState::kDrift : DriftState::kStable;
}

std::unique_ptr<DriftDetector> MakeDriftDetector(const std::string& name) {
  if (name == "DDM") return std::make_unique<DdmDetector>();
  if (name == "EDDM") return std::make_unique<EddmDetector>();
  if (name == "PageHinkley") return std::make_unique<PageHinkleyDetector>();
  if (name == "ADWIN") return std::make_unique<AdwinDetector>();
  return nullptr;
}

}  // namespace freeway
